"""k-wise independent hash families (Wegman–Carter construction).

Algorithm A2 of the paper (Figure 1) has every node ``i`` draw a hash
function ``h_i : V -> {0, .., ⌊n^{ε/2}⌋ - 1}`` from a *3-wise independent*
family, send a description of ``h_i`` to all its neighbours in ``O(1)``
rounds (the description is ``O(log n)`` bits, Section 2), and have each
neighbour evaluate ``h_i`` locally.

This module implements the classical Wegman–Carter construction: pick a
prime ``p >= |X|``, draw ``k`` uniform coefficients ``a_0 .. a_{k-1}`` in
GF(p), and map ``x`` to ``(a_{k-1} x^{k-1} + ... + a_0 mod p) mod |Y|``.
Restricted to inputs in ``[0, p)`` the polynomial step is exactly k-wise
independent over GF(p); the final range reduction introduces the usual
(at most ``|Y|/p``) bias, which is negligible for the parameters used here
and standard practice for this construction.  The family description is
``k`` field elements, i.e. ``k * ceil(log2 p)`` bits — this is the message
size the simulator charges when a node ships its hash function.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import HashingError
from .field import eval_polynomial_mod, next_prime


@dataclass(frozen=True)
class HashFunction:
    """A single member of a k-wise independent family.

    Instances are immutable value objects: two functions with the same
    coefficients, prime and range are equal and interchangeable.  They can be
    serialised to / reconstructed from a compact tuple (see :meth:`encode`
    and :meth:`decode`) — this is what nodes actually transmit in
    Algorithm A2.
    """

    coefficients: Tuple[int, ...]
    prime: int
    range_size: int

    def __post_init__(self) -> None:
        if self.range_size < 1:
            raise HashingError(f"range_size must be positive, got {self.range_size}")
        if self.prime < 2:
            raise HashingError(f"prime must be at least 2, got {self.prime}")
        if not self.coefficients:
            raise HashingError("a hash function needs at least one coefficient")
        if any(not 0 <= c < self.prime for c in self.coefficients):
            raise HashingError("all coefficients must lie in [0, prime)")

    @property
    def independence(self) -> int:
        """The independence parameter k (the number of coefficients)."""
        return len(self.coefficients)

    def __call__(self, value: int) -> int:
        """Return ``h(value)`` in ``{0, .., range_size - 1}``."""
        return eval_polynomial_mod(self.coefficients, value % self.prime, self.prime) % self.range_size

    def preimage(self, target: int, domain: Sequence[int]) -> list[int]:
        """Return all elements of ``domain`` that hash to ``target``.

        This is the set ``H(y)`` from Lemma 1 of the paper, restricted to an
        explicit domain.
        """
        return [value for value in domain if self(value) == target]

    def encoded_bits(self) -> int:
        """Return the length in bits of the on-wire description.

        The description is the ``k`` coefficients, each ``ceil(log2 p)``
        bits, matching the ``O(k log |Y|)`` encoding cost quoted in
        Section 2 of the paper (the prime and range are public parameters
        known to every node, so they are not retransmitted).
        """
        bits_per_coefficient = max(1, math.ceil(math.log2(self.prime)))
        return self.independence * bits_per_coefficient

    def encode(self) -> Tuple[int, ...]:
        """Return the transmissible description (the coefficient tuple)."""
        return self.coefficients

    @classmethod
    def decode(
        cls, coefficients: Sequence[int], prime: int, range_size: int
    ) -> "HashFunction":
        """Reconstruct a function from its description and public parameters."""
        return cls(tuple(int(c) for c in coefficients), prime, range_size)


class KWiseIndependentFamily:
    """A k-wise independent family of hash functions from ``[0, domain_size)``.

    Parameters
    ----------
    domain_size:
        Size of the input domain ``|X|`` (the paper uses ``|X| = n``, the
        vertex set).
    range_size:
        Size of the output range ``|Y|`` (the paper uses ``⌊n^{ε/2}⌋``).
    independence:
        The independence parameter ``k`` (the paper needs ``k = 3``).
    """

    def __init__(self, domain_size: int, range_size: int, independence: int = 3) -> None:
        if domain_size < 1:
            raise HashingError(f"domain_size must be positive, got {domain_size}")
        if range_size < 1:
            raise HashingError(f"range_size must be positive, got {range_size}")
        if independence < 1:
            raise HashingError(f"independence must be positive, got {independence}")
        self._domain_size = domain_size
        self._range_size = range_size
        self._independence = independence
        # The field must be at least as large as the domain for distinct
        # domain points to remain distinct field elements.
        self._prime = next_prime(max(domain_size, range_size, 2))
        # Decoded functions memoized per coefficient tuple: in A2 every
        # receiver decodes each neighbour's descriptor, so the same
        # coefficients arrive up to deg(sender) times per run.
        self._decode_cache: dict[Tuple[int, ...], HashFunction] = {}

    @property
    def domain_size(self) -> int:
        """Size of the input domain ``|X|``."""
        return self._domain_size

    @property
    def range_size(self) -> int:
        """Size of the output range ``|Y|``."""
        return self._range_size

    @property
    def independence(self) -> int:
        """The independence parameter ``k``."""
        return self._independence

    @property
    def prime(self) -> int:
        """The field size ``p`` used by the construction."""
        return self._prime

    def sample(self, rng: Optional[np.random.Generator] = None) -> HashFunction:
        """Draw a uniformly random member of the family."""
        generator = rng if rng is not None else np.random.default_rng()
        coefficients = tuple(
            int(generator.integers(0, self._prime)) for _ in range(self._independence)
        )
        return HashFunction(coefficients, self._prime, self._range_size)

    def zero_block(
        self, coefficient_rows: np.ndarray, points: np.ndarray
    ) -> np.ndarray:
        """Vectorized bucket-zero test: ``Z[i, j] = (h_i(points[j]) == 0)``.

        ``coefficient_rows`` holds one transmitted descriptor per row (shape
        ``(functions, independence)``).  The Horner evaluation over GF(p)
        dispatches to the active kernel backend
        (:func:`repro.congest.backends.active_backend`), so the same call
        runs the numpy reference or the numba twin — byte-identical results
        either way.  This is the batch form of ``h(x) == 0`` that A2's
        fused receivers consume.
        """
        from ..congest.backends import active_backend

        rows = np.ascontiguousarray(coefficient_rows, dtype=np.int64)
        if rows.ndim != 2 or rows.shape[1] != self._independence:
            raise HashingError(
                f"expected descriptor rows of {self._independence} "
                f"coefficients, got shape {rows.shape}"
            )
        return active_backend().hash_zero_block(
            rows,
            np.ascontiguousarray(points, dtype=np.int64),
            self._prime,
            self._range_size,
        )

    def decode(self, coefficients: Sequence[int]) -> HashFunction:
        """Reconstruct a member of this family from its transmitted description.

        Memoized per coefficient tuple: hash functions are immutable value
        objects, so every receiver of the same descriptor shares one
        instance instead of re-validating and re-building it per message.
        """
        if len(coefficients) != self._independence:
            raise HashingError(
                f"expected {self._independence} coefficients, got {len(coefficients)}"
            )
        key = tuple(int(c) for c in coefficients)
        cached = self._decode_cache.get(key)
        if cached is None:
            cached = HashFunction.decode(key, self._prime, self._range_size)
            self._decode_cache[key] = cached
        return cached

    def description_bits(self) -> int:
        """Return the bit length of any member's on-wire description."""
        bits_per_coefficient = max(1, math.ceil(math.log2(self._prime)))
        return self._independence * bits_per_coefficient

    def expected_bucket_load(self) -> float:
        """Return ``|X| / |Y|``, the expected number of domain points per bucket.

        Lemma 1 of the paper bounds bucket sizes at ``4 (2 + (|X|-2)/|Y|)``
        with probability at least ``3 / (4 |Y|^2)`` conditioned on a
        collision; this helper exposes the unconditional mean so callers and
        tests can reason about the same quantity.
        """
        return self._domain_size / self._range_size

    def lemma1_bucket_bound(self) -> float:
        """Return the bucket-size bound ``4 (2 + (|X| - 2)/|Y|)`` from Lemma 1."""
        return 4.0 * (2.0 + max(0, self._domain_size - 2) / self._range_size)

    def __repr__(self) -> str:
        return (
            f"KWiseIndependentFamily(domain_size={self._domain_size}, "
            f"range_size={self._range_size}, independence={self._independence}, "
            f"prime={self._prime})"
        )
