"""Hashing substrate: k-wise independent families (Wegman–Carter).

Algorithm A2 (Figure 1 of the paper) requires every node to sample a 3-wise
independent hash function whose description fits in ``O(log n)`` bits.  This
package provides that construction from scratch.
"""

from .field import eval_polynomial_mod, is_prime, next_prime
from .kwise import HashFunction, KWiseIndependentFamily

__all__ = [
    "eval_polynomial_mod",
    "is_prime",
    "next_prime",
    "HashFunction",
    "KWiseIndependentFamily",
]
