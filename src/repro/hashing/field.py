"""Prime-field arithmetic helpers for the hash-family construction.

The Wegman–Carter construction of a k-wise independent hash family evaluates
a random degree-(k-1) polynomial over a prime field GF(p) with ``p >= |X|``
(the domain size).  This module provides the two primitives that
construction needs:

* deterministic primality testing (Miller–Rabin with a base set that is
  exact for 64-bit integers, plus a fallback for larger inputs),
* :func:`next_prime`, the smallest prime greater than or equal to a bound,
* :func:`eval_polynomial_mod`, Horner evaluation of a polynomial mod p.

Everything is implemented from scratch — the construction is part of the
paper's machinery (Section 2, "Hash functions"), so we do not outsource it.
"""

from __future__ import annotations

from typing import Sequence

# Deterministic Miller-Rabin witnesses for n < 3,317,044,064,679,887,385,961,981.
_DETERMINISTIC_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
_DETERMINISTIC_LIMIT = 3_317_044_064_679_887_385_961_981


def is_prime(candidate: int) -> bool:
    """Return ``True`` when ``candidate`` is prime.

    Uses trial division for tiny inputs and deterministic Miller–Rabin for
    everything up to ``~3.3e24`` (which covers every domain size this library
    can realistically use).  Larger inputs fall back to Miller–Rabin with the
    same witness set, which is still correct with overwhelming probability
    but no longer formally deterministic.
    """
    if candidate < 2:
        return False
    for small in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if candidate == small:
            return True
        if candidate % small == 0:
            return False
    # Write candidate - 1 = d * 2^r with d odd.
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for witness in _DETERMINISTIC_WITNESSES:
        x = pow(witness, d, candidate)
        if x in (1, candidate - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % candidate
            if x == candidate - 1:
                break
        else:
            return False
    return True


def next_prime(lower_bound: int) -> int:
    """Return the smallest prime ``p`` with ``p >= lower_bound``.

    Raises
    ------
    ValueError
        If ``lower_bound`` is not a positive integer.
    """
    if lower_bound < 1:
        raise ValueError(f"lower_bound must be positive, got {lower_bound}")
    candidate = max(2, lower_bound)
    if candidate > 2 and candidate % 2 == 0:
        if candidate == lower_bound and is_prime(candidate):
            return candidate
        candidate += 1
    while not is_prime(candidate):
        candidate += 1 if candidate == 2 else 2
    return candidate


def eval_polynomial_mod(coefficients: Sequence[int], point: int, modulus: int) -> int:
    """Evaluate ``sum_i coefficients[i] * point^i`` modulo ``modulus``.

    Coefficients are given from the constant term upwards; evaluation uses
    Horner's rule so the cost is one multiplication and one addition per
    coefficient.

    Raises
    ------
    ValueError
        If ``modulus`` is not positive or ``coefficients`` is empty.
    """
    if modulus <= 0:
        raise ValueError(f"modulus must be positive, got {modulus}")
    if not coefficients:
        raise ValueError("coefficients must be non-empty")
    accumulator = 0
    for coefficient in reversed(coefficients):
        accumulator = (accumulator * point + coefficient) % modulus
    return accumulator
