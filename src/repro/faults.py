"""Deterministic, seed-driven fault injection for the experiment service.

The service stack (:mod:`repro.service`, :mod:`repro.api.store`,
:mod:`repro.graphs.shm`) exposes **named injection points** — places a
real deployment fails: a frame torn mid-send, a worker dying between
executing a cell and reporting it, a full disk under the JSONL store.
Each point calls :func:`fault_point` with a context describing the
event; when no plane is installed that call is a dictionary lookup and a
``None`` return, so production traffic pays nothing.

A chaos run installs a :class:`FaultPlane` built from a
:class:`FaultSchedule` — a canonical-JSON document of ``seed`` plus
:class:`FaultRule` entries (``{point, match, action, after_n, times,
params}``) — so the *specification* of every chaos run is replayable:
the same schedule always arms the same rules with the same thresholds,
and any randomness an action needs (which bytes to corrupt) comes from
an RNG seeded by the schedule.  What cannot be pinned is OS scheduling
— which worker draws which cell — which is why the contract chaos runs
enforce is invariance of the *output* (the JSONL store, byte for byte),
not of the fault timeline.

Rules may pin a ``scope``: the dispatcher runs under scope
``"dispatcher"``, each managed worker under its spawn ordinal (``"1"``,
``"2"``, … — respawns get fresh ordinals), so a crash rule scoped to
``"1"`` kills exactly one process once instead of crash-looping every
replacement worker through the same first-record fault.

Activation travels by environment (worker processes are ``Popen``
children): ``REPRO_FAULTS`` names a schedule JSON file,
``REPRO_FAULTS_SCOPE`` the process's scope, and ``REPRO_FAULTS_EVENTS``
an append-only JSONL file every fired fault is logged to (the service
root's ``events.jsonl``).
"""

from __future__ import annotations

import errno
import json
import os
import random
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from .errors import FaultError

__all__ = [
    "FAULT_POINTS",
    "FAULTS_ENV",
    "FAULTS_SCOPE_ENV",
    "FAULTS_EVENTS_ENV",
    "FaultRule",
    "FaultSchedule",
    "FaultAction",
    "FaultPlane",
    "fault_point",
    "install_plane",
    "uninstall_plane",
    "active_plane",
    "install_from_env",
    "fault_environment",
]

#: Environment variable naming the schedule JSON file to arm at startup.
FAULTS_ENV = "REPRO_FAULTS"
#: Environment variable naming this process's fault scope.
FAULTS_SCOPE_ENV = "REPRO_FAULTS_SCOPE"
#: Environment variable naming the JSONL file fired faults are logged to.
FAULTS_EVENTS_ENV = "REPRO_FAULTS_EVENTS"

#: Every named injection point and the actions it understands.  The
#: registry is the schedule validator: a rule naming an unknown point or
#: an action its point cannot perform is rejected at construction, not
#: discovered mid-chaos-run.
FAULT_POINTS: Dict[str, Tuple[str, ...]] = {
    # protocol.py send_frame: mangle the wire.
    "protocol.send": ("truncate", "corrupt", "delay"),
    # worker.py: the cell execution path.
    "worker.execute": ("crash", "stall", "fail"),
    "worker.record.before": ("crash",),
    "worker.record.after": ("crash",),
    # graphs/shm.py attach_shared_graph: segment-attach failure.
    "worker.attach": ("fail",),
    # dispatcher.py: lease assignment, handshakes, heartbeat intake.
    "dispatcher.lease": ("expire", "delay"),
    "dispatcher.accept": ("drop",),
    "dispatcher.heartbeat": ("drop",),
    # api/store.py RecordStore.append / fsync.
    "store.append": ("enospc", "torn"),
    "store.fsync": ("fail",),
}


def _canonical(payload: Any) -> str:
    """Canonical JSON (sorted keys, compact) without importing api.records.

    :mod:`repro.faults` sits below the API layer — :mod:`repro.graphs.shm`
    imports it — so it cannot import the canonical encoder from
    :mod:`repro.api.records` without a cycle.  The encoding is pinned
    identical by a test.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _check_match(match: Mapping[str, Any]) -> Dict[str, Any]:
    checked: Dict[str, Any] = {}
    for key, value in match.items():
        if not isinstance(key, str):
            raise FaultError(f"match keys must be strings, got {key!r}")
        if not isinstance(value, (str, int, float, bool)) and value is not None:
            raise FaultError(
                f"match values must be JSON scalars, got {key}={value!r}"
            )
        checked[key] = value
    return checked


@dataclass(frozen=True)
class FaultRule:
    """One armed fault: fire ``action`` at ``point`` on matching events.

    ``match`` narrows which events at the point trigger the rule (every
    key must equal the event context's value; the reserved key
    ``"scope"`` is compared against the *process's* scope instead).
    ``after_n`` skips that many matching events first; ``times`` caps how
    often the rule fires in one process (``None`` = every match).
    ``params`` feeds the action (``{"seconds": 0.5}`` for delays/stalls).
    """

    point: str
    action: str
    match: Tuple[Tuple[str, Any], ...] = ()
    after_n: int = 0
    times: Optional[int] = 1
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.point not in FAULT_POINTS:
            raise FaultError(
                f"unknown fault point {self.point!r} (known: "
                f"{', '.join(sorted(FAULT_POINTS))})"
            )
        if self.action not in FAULT_POINTS[self.point]:
            raise FaultError(
                f"point {self.point!r} cannot perform {self.action!r} "
                f"(supported: {', '.join(FAULT_POINTS[self.point])})"
            )
        if self.after_n < 0:
            raise FaultError(f"after_n must be >= 0, got {self.after_n}")
        if self.times is not None and self.times < 1:
            raise FaultError(f"times must be >= 1 or null, got {self.times}")
        object.__setattr__(
            self, "match", tuple(sorted(_check_match(dict(self.match)).items()))
        )
        object.__setattr__(
            self, "params", tuple(sorted(_check_match(dict(self.params)).items()))
        )

    @classmethod
    def build(
        cls,
        point: str,
        action: str,
        match: Optional[Mapping[str, Any]] = None,
        after_n: int = 0,
        times: Optional[int] = 1,
        params: Optional[Mapping[str, Any]] = None,
    ) -> "FaultRule":
        """Construct a rule from plain mappings (the ergonomic door)."""
        return cls(
            point=point,
            action=action,
            match=tuple(sorted((match or {}).items())),
            after_n=after_n,
            times=times,
            params=tuple(sorted((params or {}).items())),
        )

    def to_dict(self) -> Dict[str, Any]:
        """Return the JSON-ready rule document."""
        return {
            "point": self.point,
            "action": self.action,
            "match": dict(self.match),
            "after_n": self.after_n,
            "times": self.times,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultRule":
        """Rebuild a rule from :meth:`to_dict` output."""
        if not isinstance(payload, Mapping):
            raise FaultError(f"fault rules must be JSON objects, got {payload!r}")
        unknown = set(payload) - {
            "point", "action", "match", "after_n", "times", "params"
        }
        if unknown:
            raise FaultError(f"unknown fault-rule fields: {sorted(unknown)}")
        return cls.build(
            point=str(payload.get("point", "")),
            action=str(payload.get("action", "")),
            match=payload.get("match") or {},
            after_n=int(payload.get("after_n", 0)),
            times=(None if payload.get("times", 1) is None else int(payload["times"])),
            params=payload.get("params") or {},
        )


@dataclass(frozen=True)
class FaultSchedule:
    """A replayable chaos specification: a seed plus armed rules."""

    seed: int
    rules: Tuple[FaultRule, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise FaultError(f"schedule seed must be an integer, got {self.seed!r}")
        object.__setattr__(self, "rules", tuple(self.rules))

    def to_dict(self) -> Dict[str, Any]:
        """Return the JSON-ready schedule document."""
        return {
            "kind": "fault-schedule",
            "schema": 1,
            "seed": self.seed,
            "rules": [rule.to_dict() for rule in self.rules],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultSchedule":
        """Rebuild a schedule from :meth:`to_dict` output."""
        if not isinstance(payload, Mapping):
            raise FaultError(f"fault schedules must be JSON objects, got {payload!r}")
        if payload.get("kind") != "fault-schedule":
            raise FaultError(
                f"not a fault-schedule document (kind={payload.get('kind')!r})"
            )
        rules = payload.get("rules", [])
        if not isinstance(rules, (list, tuple)):
            raise FaultError(f"schedule rules must be a list, got {rules!r}")
        return cls(
            seed=int(payload.get("seed", 0)),
            rules=tuple(FaultRule.from_dict(rule) for rule in rules),
        )

    def to_json(self) -> str:
        """Return the canonical JSON encoding (what travels in files)."""
        return _canonical(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        """Parse a schedule from JSON text."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultError(f"invalid fault-schedule JSON: {exc}") from exc
        return cls.from_dict(payload)

    @classmethod
    def load(cls, path: "str | Path") -> "FaultSchedule":
        """Load a schedule from a JSON file."""
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError as exc:
            raise FaultError(f"cannot read fault schedule {path}: {exc}") from exc
        return cls.from_json(text)

    def dump(self, path: "str | Path") -> Path:
        """Write the canonical schedule document to ``path``."""
        target = Path(path)
        target.write_text(self.to_json() + "\n", encoding="utf-8")
        return target

    @classmethod
    def chaos(
        cls,
        seed: int,
        workers: int = 2,
        stall_seconds: float = 1.0,
        delay_seconds: float = 0.05,
    ) -> "FaultSchedule":
        """Derive the standard randomized chaos mix from ``seed``.

        The mix always arms one rule per *kind* of recoverable fault —
        worker crash before and after the record, an execution stall long
        enough to expire its lease, a truncated and a corrupted record
        frame, a delayed lease frame, a failed segment attach, a
        dispatcher-forced lease expiry, and a dropped worker handshake —
        and the seed randomizes the thresholds: which ordinal worker
        hosts each fault and how many clean events precede it.  Every
        action is one the service recovers from, so a chaos session's
        stores must still come out byte-identical to serial.
        """
        if workers < 1:
            raise FaultError(f"chaos schedules need >= 1 worker, got {workers}")
        rng = random.Random(seed)

        def scope() -> str:
            return str(rng.randrange(1, workers + 1))

        def early() -> int:
            return rng.randrange(0, 3)

        rules = [
            FaultRule.build(
                "worker.record.before", "crash",
                match={"scope": scope()}, after_n=early(),
            ),
            FaultRule.build(
                "worker.record.after", "crash",
                match={"scope": scope()}, after_n=early(),
            ),
            FaultRule.build(
                "worker.execute", "stall",
                match={"scope": scope()}, after_n=early(),
                params={"seconds": stall_seconds},
            ),
            FaultRule.build(
                "worker.execute", "fail",
                match={"scope": scope()}, after_n=early(),
            ),
            FaultRule.build(
                "protocol.send", "truncate",
                match={"frame": "record", "scope": scope()}, after_n=early(),
            ),
            FaultRule.build(
                "protocol.send", "corrupt",
                match={"frame": "record", "scope": scope()}, after_n=early(),
            ),
            FaultRule.build(
                "protocol.send", "delay",
                match={"frame": "lease"}, after_n=early(),
                times=2, params={"seconds": delay_seconds},
            ),
            FaultRule.build(
                "worker.attach", "fail", match={"scope": scope()}, after_n=0,
            ),
            FaultRule.build("dispatcher.lease", "expire", after_n=rng.randrange(2, 5)),
            FaultRule.build("dispatcher.accept", "drop", after_n=workers, times=1),
        ]
        return cls(seed=seed, rules=tuple(rules))


class FaultAction:
    """What a matched rule asks the injection point to do.

    Carries the action name, its parameters, and the plane's seeded RNG
    (byte corruption draws from it).  ``crash()`` is the one helper with
    side effects — it logs the impending death, then ``os._exit``\\ s so
    no ``finally`` can soften the simulated kill.
    """

    def __init__(self, rule: FaultRule, plane: "FaultPlane") -> None:
        self.rule = rule
        self.action = rule.action
        self.params: Dict[str, Any] = dict(rule.params)
        self.rng = plane.rng
        self._plane = plane

    def seconds(self, default: float = 0.1) -> float:
        """The action's duration parameter (delays and stalls)."""
        return float(self.params.get("seconds", default))

    def crash(self) -> "None":
        """Die the way a SIGKILL would: immediately, skipping cleanup."""
        os._exit(70)

    def corrupt_bytes(self, data: bytes) -> bytes:
        """Flip a few seeded-random payload bytes (never the length prefix)."""
        if not data:
            return data
        mangled = bytearray(data)
        for _ in range(min(4, len(mangled))):
            index = self.rng.randrange(len(mangled))
            mangled[index] ^= 0xFF
        return bytes(mangled)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultAction({self.rule.point}:{self.action})"


class FaultPlane:
    """Armed per-process fault state: counters, RNG, event sink.

    One plane serves one process (dispatcher or worker).  ``hit`` is the
    single entry: it finds the first armed rule matching the event,
    advances its counters, logs the firing, and returns a
    :class:`FaultAction` — or ``None``, the overwhelmingly common case.
    Thread-safe: the dispatcher consults it from many worker threads.
    """

    def __init__(
        self,
        schedule: FaultSchedule,
        scope: str = "",
        sink: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> None:
        self.schedule = schedule
        self.scope = scope
        self.sink = sink
        self.rng = random.Random(schedule.seed)
        self._lock = threading.Lock()
        #: Matching events seen / fires performed, per rule index.
        self._seen: List[int] = [0] * len(schedule.rules)
        self._fired: List[int] = [0] * len(schedule.rules)

    def _matches(self, rule: FaultRule, point: str, context: Mapping[str, Any]) -> bool:
        if rule.point != point:
            return False
        for key, expected in rule.match:
            actual = self.scope if key == "scope" else context.get(key)
            if actual != expected:
                return False
        return True

    def hit(self, point: str, context: Mapping[str, Any]) -> Optional[FaultAction]:
        """Consult the plane for one event; return the action to perform."""
        chosen: Optional[FaultRule] = None
        chosen_index = -1
        with self._lock:
            for index, rule in enumerate(self.schedule.rules):
                if not self._matches(rule, point, context):
                    continue
                self._seen[index] += 1
                if chosen is not None:
                    continue  # counters still advance on shadowed rules
                if self._seen[index] <= rule.after_n:
                    continue
                if rule.times is not None and self._fired[index] >= rule.times:
                    continue
                self._fired[index] += 1
                chosen = rule
                chosen_index = index
        if chosen is None:
            return None
        self._log_fire(chosen_index, chosen, point, context)
        return FaultAction(chosen, self)

    def _log_fire(
        self, index: int, rule: FaultRule, point: str, context: Mapping[str, Any]
    ) -> None:
        if self.sink is None:
            return
        payload = {
            "event": "fault-fired",
            "point": point,
            "action": rule.action,
            "rule": index,
            "scope": self.scope,
            "pid": os.getpid(),
        }
        for key, value in context.items():
            if isinstance(value, (str, int, float, bool)) or value is None:
                payload.setdefault(key, value)
        try:
            self.sink(payload)
        except Exception:
            pass  # a broken event log must never change fault behaviour

    def counts(self) -> Dict[str, int]:
        """Return fires per ``point:action`` (this process only)."""
        with self._lock:
            totals: Dict[str, int] = {}
            for rule, fired in zip(self.schedule.rules, self._fired):
                if fired:
                    key = f"{rule.point}:{rule.action}"
                    totals[key] = totals.get(key, 0) + fired
            return totals

    def fired_total(self) -> int:
        """Total fires across all rules (this process only)."""
        with self._lock:
            return sum(self._fired)


# ---------------------------------------------------------------------------
# process-global installation
# ---------------------------------------------------------------------------

_PLANE: Optional[FaultPlane] = None


def install_plane(plane: Optional[FaultPlane]) -> Optional[FaultPlane]:
    """Install ``plane`` process-wide; returns the previous plane."""
    global _PLANE
    previous = _PLANE
    _PLANE = plane
    return previous


def uninstall_plane() -> None:
    """Remove any installed plane (idempotent)."""
    install_plane(None)


def active_plane() -> Optional[FaultPlane]:
    """Return the installed plane, if any."""
    return _PLANE


def fault_point(point: str, **context: Any) -> Optional[FaultAction]:
    """The hook every injection point calls; ``None`` when nothing is armed."""
    plane = _PLANE
    if plane is None:
        return None
    return plane.hit(point, context)


def _jsonl_sink(path: str) -> Callable[[Dict[str, Any]], None]:
    """An append-only JSONL event sink (O_APPEND: one line, one write)."""

    def sink(payload: Dict[str, Any]) -> None:
        line = _canonical({"ts": round(time.time(), 3), **payload}) + "\n"
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(line)
            handle.flush()

    return sink


def install_from_env(environ: Optional[Mapping[str, str]] = None) -> Optional[FaultPlane]:
    """Arm the plane described by the environment, if any.

    Reads ``REPRO_FAULTS`` (schedule file; unset/empty = no plane),
    ``REPRO_FAULTS_SCOPE`` and ``REPRO_FAULTS_EVENTS``, installs the
    resulting plane process-wide and returns it.  Worker processes call
    this first thing; the CLI calls it for every verb so even plain
    ``repro sweep`` runs can be chaos-tested.
    """
    env = os.environ if environ is None else environ
    path = env.get(FAULTS_ENV, "")
    if not path:
        return None
    schedule = FaultSchedule.load(path)
    events = env.get(FAULTS_EVENTS_ENV, "")
    plane = FaultPlane(
        schedule,
        scope=env.get(FAULTS_SCOPE_ENV, ""),
        sink=_jsonl_sink(events) if events else None,
    )
    install_plane(plane)
    return plane


def fault_environment(
    schedule_path: "str | Path",
    scope: str,
    events_path: "str | Path | None" = None,
) -> Dict[str, str]:
    """Return the env-var triple that arms a child process."""
    env = {FAULTS_ENV: str(schedule_path), FAULTS_SCOPE_ENV: scope}
    if events_path is not None:
        env[FAULTS_EVENTS_ENV] = str(events_path)
    return env


def injected_os_error(code: int, message: str) -> OSError:
    """Build the OSError a disk/socket fault raises (marked as injected)."""
    return OSError(code, f"injected fault: {message}")


def is_injected(error: BaseException) -> bool:
    """True when ``error`` came from this module's injections."""
    return "injected fault" in str(error)
