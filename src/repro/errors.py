"""Exception hierarchy shared across the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError` so that
callers embedding the simulator can catch library failures with a single
``except`` clause while still distinguishing the specific failure modes below.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class GraphError(ReproError):
    """Raised for invalid graph constructions or queries.

    Examples include adding a self-loop, querying the neighbourhood of a
    vertex that does not exist, or constructing a generator with parameters
    outside its documented domain.
    """


class HashingError(ReproError):
    """Raised for invalid hash-family parameters.

    Examples include requesting 0-wise independence or a hash range that is
    not a positive integer.
    """


class SimulationError(ReproError):
    """Base class for errors raised by the CONGEST simulator."""


class BandwidthExceededError(SimulationError):
    """Raised when a single message does not fit into one round's bandwidth.

    The strict round-level engine refuses oversized messages instead of
    silently splitting them, because silent splitting would make round
    accounting unfaithful to the CONGEST model.  Multi-round transfers must
    go through the phase-based transfer layer, which performs the splitting
    explicitly and charges the correct number of rounds.
    """


class TopologyError(SimulationError):
    """Raised when a node attempts to use a communication link that does not
    exist in the current communication topology (e.g. sending to a
    non-neighbour in the standard CONGEST model)."""


class ProtocolError(SimulationError):
    """Raised when a node program violates the simulator's execution
    contract (e.g. sending twice on the same link within one round in the
    strict engine, or accessing messages before the first round)."""


class RoundLimitExceededError(SimulationError):
    """Raised when an execution exceeds its configured round budget.

    Algorithm A3 in the paper explicitly stops once its round budget is
    exhausted; the simulator surfaces budget exhaustion through this error so
    the algorithm wrapper can convert it into the paper's "stop early"
    behaviour.
    """


class VerificationError(ReproError):
    """Raised when an algorithm output fails a soundness check.

    Soundness (every reported triple is a real triangle) is an unconditional
    requirement of the paper's output model; completeness failures are
    reported as data (miss rates), not exceptions.
    """


class AnalysisError(ReproError):
    """Raised for invalid analysis or experiment-harness configurations."""


class StoreError(AnalysisError):
    """Raised when a result store or cache cannot be written durably.

    Examples include a full disk during a cache put (the partially
    written temporary entry is unlinked before this is raised) or a
    store file whose directory vanished mid-run.  Subclasses
    :class:`AnalysisError` so existing ``except ReproError`` /
    ``except AnalysisError`` harness code keeps catching it.
    """


class FaultError(ReproError):
    """Raised for invalid fault-injection schedules or rules.

    Examples include a rule naming an unknown injection point, an action
    the point does not support, or a schedule file that is not a
    canonical fault-schedule document.
    """


class ServiceError(ReproError):
    """Raised for experiment-service failures (dispatcher, workers, protocol).

    Examples include connecting to a directory with no running service,
    malformed or oversized protocol frames, submitting a spec the
    dispatcher rejects, or waiting on a job whose cells failed.
    """
