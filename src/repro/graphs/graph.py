"""Undirected simple graph substrate.

The paper's input is an undirected simple graph ``G = (V, E)`` on
``n = |V|`` vertices identified with ``0 .. n-1``.  This module provides a
small, dependency-free adjacency-set representation with exactly the queries
the algorithms and the simulator need:

* neighbourhood queries (``N(i)`` in the paper's notation),
* degree and maximum degree (``d_max``),
* edge membership,
* induced subgraphs (used by the recursive step of Algorithm ``A(X, r)``
  during verification),
* deterministic iteration orders so experiments are reproducible.

The class is intentionally *not* a re-implementation of :mod:`networkx`:
node programs in the CONGEST simulator are only ever handed their local view
(:class:`repro.congest.node.NodeContext`), never the global ``Graph``.  The
global object exists for graph generation, ground-truth computation and
verification.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..errors import GraphError
from ..types import Edge, NodeId, make_edge
from .csr import CSRGraph
from .shm import SharedGraphHandle, SharedGraphOwner, attach_shared_graph, share_csr


class Graph:
    """An undirected simple graph on vertices ``0 .. n-1``.

    Parameters
    ----------
    num_nodes:
        Number of vertices.  Vertices are always the integers
        ``0 .. num_nodes - 1``; isolated vertices are allowed.
    edges:
        Optional iterable of vertex pairs.  Pairs may be given in any order;
        duplicates are ignored; self-loops raise :class:`GraphError`.
    """

    __slots__ = (
        "_num_nodes",
        "_adjacency",
        "_num_edges",
        "_csr_cache",
        "_shared_owner",
        "_lock",
        "__weakref__",
    )

    def __init__(self, num_nodes: int, edges: Iterable[Tuple[int, int]] = ()) -> None:
        if num_nodes < 0:
            raise GraphError(f"num_nodes must be non-negative, got {num_nodes}")
        self._num_nodes = num_nodes
        self._adjacency: List[Set[NodeId]] = [set() for _ in range(num_nodes)]
        self._num_edges = 0
        self._csr_cache: Optional[CSRGraph] = None
        self._shared_owner: Optional[SharedGraphOwner] = None
        # Serializes mutation against the lazy CSR build, so a reader
        # thread never snapshots a half-applied edge update (the
        # concurrent reader/ingest pattern of repro.dynamic).
        self._lock = threading.Lock()
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of vertices ``n``."""
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        """Number of edges ``m``."""
        return self._num_edges

    def nodes(self) -> range:
        """Return the vertex set as a :class:`range` (always ``0 .. n-1``)."""
        return range(self._num_nodes)

    def has_node(self, node: NodeId) -> bool:
        """Return ``True`` when ``node`` is a valid vertex of this graph."""
        return 0 <= node < self._num_nodes

    def _check_node(self, node: NodeId) -> None:
        if not self.has_node(node):
            raise GraphError(
                f"vertex {node} is not in the graph (valid range: 0..{self._num_nodes - 1})"
            )

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        """Return ``True`` when ``{u, v}`` is an edge of the graph."""
        self._check_node(u)
        self._check_node(v)
        if u == v:
            return False
        return v in self._adjacency[u]

    def neighbors(self, node: NodeId) -> frozenset[NodeId]:
        """Return ``N(node)``, the neighbourhood of ``node``, as a frozenset."""
        self._check_node(node)
        return frozenset(self._adjacency[node])

    def sorted_neighbors(self, node: NodeId) -> List[NodeId]:
        """Return the neighbourhood of ``node`` in increasing vertex order."""
        self._check_node(node)
        return sorted(self._adjacency[node])

    def degree(self, node: NodeId) -> int:
        """Return the degree of ``node``."""
        self._check_node(node)
        return len(self._adjacency[node])

    def max_degree(self) -> int:
        """Return ``d_max``, the maximum degree over all vertices (0 if empty)."""
        if self._num_nodes == 0:
            return 0
        return max(len(adj) for adj in self._adjacency)

    def average_degree(self) -> float:
        """Return the average degree ``2m / n`` (0.0 for the empty graph)."""
        if self._num_nodes == 0:
            return 0.0
        return 2.0 * self._num_edges / self._num_nodes

    def density(self) -> float:
        """Return the edge density ``m / C(n, 2)`` (0.0 when ``n < 2``)."""
        if self._num_nodes < 2:
            return 0.0
        possible = self._num_nodes * (self._num_nodes - 1) / 2.0
        return self._num_edges / possible

    def csr(self) -> CSRGraph:
        """Return an immutable CSR view of the current adjacency structure.

        The view is built lazily on first access and cached; any mutation
        (:meth:`add_edge`, :meth:`remove_edge`) invalidates the cache, so a
        returned :class:`~repro.graphs.csr.CSRGraph` is always a consistent
        snapshot and never aliases a graph that has since changed.  All
        read-heavy consumers (the triangle oracle, simulator context
        construction, parameter selection) run on this view.

        Safe under concurrent readers and mutators: the build happens
        under the graph's lock, mutating calls take the same lock, and a
        reader racing a mutation gets either the pre- or post-mutation
        snapshot — never a torn one.
        """
        view = self._csr_cache
        if view is not None:
            return view
        with self._lock:
            if self._csr_cache is None:
                self._csr_cache = CSRGraph.from_graph(self)
            return self._csr_cache

    # ------------------------------------------------------------------
    # shared-memory plane
    # ------------------------------------------------------------------
    def to_shared(self, *, oracle: str = "keep") -> SharedGraphHandle:
        """Materialise this graph into shared memory and return the handle.

        The handle is picklable in O(manifest bytes) and another process —
        or this one — rebuilds the graph zero-copy with
        :meth:`from_shared`.  The backing segment is cached like
        :meth:`csr`: repeated calls return the same handle, and any
        mutation (:meth:`add_edge`, :meth:`remove_edge`) invalidates it by
        *unlinking* the segment — already-attached views stay valid (POSIX
        unlink-while-mapped), but the stale handle can no longer be
        attached, so a mutated graph is never observed through an old
        name.  ``oracle`` is forwarded to
        :func:`repro.graphs.shm.share_csr` (``"keep"`` shares the triangle
        oracle caches that happen to exist; ``"materialize"`` computes
        them first; ``"omit"`` shares the bare CSR arrays).

        Release the segment deterministically with :meth:`release_shared`;
        a dropped graph releases it at garbage collection.
        """
        if self._shared_owner is None or self._shared_owner.closed:
            self._shared_owner = share_csr(self.csr(), oracle=oracle)
        return self._shared_owner.handle

    def release_shared(self) -> None:
        """Unlink this graph's shared segment, if any (idempotent)."""
        if self._shared_owner is not None:
            self._shared_owner.close()
            self._shared_owner = None

    @classmethod
    def from_shared(cls, handle: SharedGraphHandle) -> "Graph":
        """Rebuild a graph from a :meth:`to_shared` handle, zero-copy.

        The CSR view (and any oracle caches the sharer included) are
        attached as read-only views over the shared segment — no graph
        bytes are copied; only the adjacency sets, which the CSR snapshot
        does not encode, are rebuilt locally.
        """
        return cls._from_csr(attach_shared_graph(handle))

    @classmethod
    def _from_csr(cls, csr: CSRGraph) -> "Graph":
        """Adopt an existing CSR snapshot as a full graph (internal)."""
        graph = cls(csr.num_nodes)
        indptr, indices = csr.indptr, csr.indices
        graph._adjacency = [
            set(indices[indptr[node] : indptr[node + 1]].tolist())
            for node in range(csr.num_nodes)
        ]
        graph._num_edges = csr.num_edges
        graph._csr_cache = csr
        return graph

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges in canonical ``(min, max)`` order.

        The iteration order is deterministic: edges are emitted grouped by
        their smaller endpoint, each group sorted by the larger endpoint.
        """
        for u in range(self._num_nodes):
            for v in sorted(self._adjacency[u]):
                if u < v:
                    yield (u, v)

    def edge_list(self) -> List[Edge]:
        """Return all edges as a list (canonical order, see :meth:`edges`)."""
        return list(self.edges())

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_edge(self, u: NodeId, v: NodeId) -> bool:
        """Add the edge ``{u, v}``.

        Returns
        -------
        bool
            ``True`` when the edge was newly added, ``False`` when it was
            already present.

        Raises
        ------
        GraphError
            If either endpoint is not a vertex of the graph or ``u == v``.
        """
        self._check_node(u)
        self._check_node(v)
        if u == v:
            raise GraphError(f"self-loops are not allowed (vertex {u})")
        with self._lock:
            if v in self._adjacency[u]:
                return False
            self._adjacency[u].add(v)
            self._adjacency[v].add(u)
            self._num_edges += 1
            self._csr_cache = None
            self.release_shared()
            return True

    def remove_edge(self, u: NodeId, v: NodeId) -> bool:
        """Remove the edge ``{u, v}`` if present.

        Returns
        -------
        bool
            ``True`` when an edge was removed, ``False`` when it was absent.
        """
        self._check_node(u)
        self._check_node(v)
        with self._lock:
            if u == v or v not in self._adjacency[u]:
                return False
            self._adjacency[u].discard(v)
            self._adjacency[v].discard(u)
            self._num_edges -= 1
            self._csr_cache = None
            self.release_shared()
            return True

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        """Return an independent copy of this graph."""
        clone = Graph(self._num_nodes)
        clone._adjacency = [set(adj) for adj in self._adjacency]
        clone._num_edges = self._num_edges
        # The CSR view is immutable, so sharing the snapshot is safe: the
        # clone drops it on its first mutation like any other cache.
        clone._csr_cache = self._csr_cache
        return clone

    def induced_subgraph(self, nodes: Iterable[NodeId]) -> "InducedSubgraph":
        """Return the subgraph induced by ``nodes``.

        The returned object keeps the *original* vertex identifiers (it does
        not relabel), which matches how the recursive step of Algorithm
        ``A(X, r)`` restricts attention to the current node set ``U`` while
        nodes keep their global identifiers.
        """
        return InducedSubgraph(self, nodes)

    def common_neighbors(self, u: NodeId, v: NodeId) -> frozenset[NodeId]:
        """Return the set of vertices adjacent to both ``u`` and ``v``."""
        self._check_node(u)
        self._check_node(v)
        return frozenset(self._adjacency[u] & self._adjacency[v])

    # ------------------------------------------------------------------
    # dunder protocol
    # ------------------------------------------------------------------
    def __contains__(self, item: object) -> bool:
        if isinstance(item, int):
            return self.has_node(item)
        if isinstance(item, tuple) and len(item) == 2:
            u, v = item
            if isinstance(u, int) and isinstance(v, int):
                if not (self.has_node(u) and self.has_node(v)):
                    return False
                return self.has_edge(u, v)
        return False

    def __len__(self) -> int:
        return self._num_nodes

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self._num_nodes == other._num_nodes
            and self._adjacency == other._adjacency
        )

    def __hash__(self) -> int:  # pragma: no cover - graphs are mutable
        raise TypeError("Graph objects are mutable and therefore unhashable")

    def __getstate__(self):
        # Segment ownership is a process-local resource: a pickled copy
        # must not carry (let alone later unlink) the original's segment.
        return {
            "_num_nodes": self._num_nodes,
            "_adjacency": self._adjacency,
            "_num_edges": self._num_edges,
            "_csr_cache": self._csr_cache,
        }

    def __setstate__(self, state) -> None:
        for slot in ("_num_nodes", "_adjacency", "_num_edges", "_csr_cache"):
            setattr(self, slot, state[slot])
        self._shared_owner = None
        self._lock = threading.Lock()

    def __repr__(self) -> str:
        return f"Graph(num_nodes={self._num_nodes}, num_edges={self._num_edges})"

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edge_list(cls, num_nodes: int, edges: Sequence[Tuple[int, int]]) -> "Graph":
        """Build a graph from an explicit edge list."""
        return cls(num_nodes, edges)

    @classmethod
    def from_edge_arrays(
        cls,
        num_nodes: int,
        u: np.ndarray | Sequence[int],
        v: np.ndarray | Sequence[int],
        *,
        deduplicate: bool = True,
    ) -> "Graph":
        """Bulk-build a graph from parallel endpoint arrays (the fast path).

        The vectorized generators funnel through here: endpoints are
        canonicalised, optionally deduplicated, and both the adjacency sets
        and the CSR view are constructed in one pass — O(n + m) Python
        operations instead of one :meth:`add_edge` call per edge.

        Parameters
        ----------
        num_nodes:
            Number of vertices.
        u, v:
            Parallel endpoint arrays.  Pairs may be in any order.
        deduplicate:
            Set to ``False`` only when the caller guarantees the canonical
            pairs are distinct (saves the unique pass).

        Raises
        ------
        GraphError
            On self-loops or endpoints outside ``0 .. num_nodes - 1``.
        """
        if num_nodes < 0:
            raise GraphError(f"num_nodes must be non-negative, got {num_nodes}")
        src = np.asarray(u, dtype=np.int64).ravel()
        dst = np.asarray(v, dtype=np.int64).ravel()
        if src.shape[0] != dst.shape[0]:
            raise GraphError(
                f"endpoint arrays disagree in length: {src.shape[0]} vs {dst.shape[0]}"
            )
        graph = cls(num_nodes)
        if src.shape[0] == 0:
            return graph
        if src.min() < 0 or dst.min() < 0 or max(int(src.max()), int(dst.max())) >= num_nodes:
            raise GraphError(
                f"endpoints must lie in 0..{num_nodes - 1}"
            )
        if (src == dst).any():
            loop = int(src[np.flatnonzero(src == dst)[0]])
            raise GraphError(f"self-loops are not allowed (vertex {loop})")
        lo = np.minimum(src, dst)
        hi = np.maximum(src, dst)
        keys = lo * np.int64(num_nodes) + hi
        if deduplicate:
            keys = np.unique(keys)
        else:
            keys = np.sort(keys)
        edge_u = keys // num_nodes
        edge_v = keys % num_nodes
        csr = CSRGraph.from_edge_arrays(num_nodes, edge_u, edge_v)
        indptr, indices = csr.indptr, csr.indices
        graph._adjacency = [
            set(indices[indptr[node] : indptr[node + 1]].tolist())
            for node in range(num_nodes)
        ]
        graph._num_edges = int(edge_u.shape[0])
        graph._csr_cache = csr
        return graph

    @classmethod
    def from_adjacency(cls, adjacency: Dict[int, Iterable[int]], num_nodes: int | None = None) -> "Graph":
        """Build a graph from an adjacency mapping ``{vertex: neighbours}``.

        The mapping does not need to be symmetric; each listed pair is added
        as an undirected edge.
        """
        if num_nodes is None:
            highest = -1
            for u, nbrs in adjacency.items():
                highest = max(highest, u, *list(nbrs) or [-1])
            num_nodes = highest + 1
        graph = cls(num_nodes)
        for u, nbrs in adjacency.items():
            for v in nbrs:
                graph.add_edge(u, v)
        return graph


class InducedSubgraph:
    """A read-only view of the subgraph induced by a vertex subset.

    Vertex identifiers are preserved (not relabelled).  Only the queries
    needed by the verification code are provided.
    """

    __slots__ = ("_parent", "_nodes")

    def __init__(self, parent: Graph, nodes: Iterable[NodeId]) -> None:
        node_set = set(nodes)
        for node in node_set:
            if not parent.has_node(node):
                raise GraphError(f"vertex {node} is not in the parent graph")
        self._parent = parent
        self._nodes = frozenset(node_set)

    @property
    def nodes(self) -> frozenset[NodeId]:
        """The vertex subset defining this view."""
        return self._nodes

    @property
    def num_nodes(self) -> int:
        """Number of vertices in the view."""
        return len(self._nodes)

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        """Return ``True`` when both endpoints are in the view and adjacent."""
        return u in self._nodes and v in self._nodes and self._parent.has_edge(u, v)

    def neighbors(self, node: NodeId) -> frozenset[NodeId]:
        """Return the neighbours of ``node`` restricted to the view."""
        if node not in self._nodes:
            raise GraphError(f"vertex {node} is not in the induced subgraph")
        return frozenset(self._parent.neighbors(node) & self._nodes)

    def edges(self) -> Iterator[Edge]:
        """Iterate over the edges with both endpoints in the view."""
        for u, v in self._parent.edges():
            if u in self._nodes and v in self._nodes:
                yield (u, v)

    def num_edges(self) -> int:
        """Return the number of edges with both endpoints in the view."""
        return sum(1 for _ in self.edges())

    def __repr__(self) -> str:
        return (
            f"InducedSubgraph(num_nodes={len(self._nodes)}, "
            f"parent={self._parent!r})"
        )


def degree_histogram(graph: Graph) -> Dict[int, int]:
    """Return a mapping ``degree -> number of vertices with that degree``."""
    histogram: Dict[int, int] = {}
    for node in graph.nodes():
        d = graph.degree(node)
        histogram[d] = histogram.get(d, 0) + 1
    return histogram


def is_connected(graph: Graph) -> bool:
    """Return ``True`` when ``graph`` is connected (vacuously true if empty).

    The CONGEST algorithms themselves do not require connectivity, but the
    experiment harness uses this check to report on the generated workloads.
    """
    n = graph.num_nodes
    if n <= 1:
        return True
    seen = {0}
    frontier = [0]
    while frontier:
        node = frontier.pop()
        for nbr in graph.neighbors(node):
            if nbr not in seen:
                seen.add(nbr)
                frontier.append(nbr)
    return len(seen) == n
