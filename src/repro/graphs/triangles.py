"""Centralized (ground-truth) triangle computations.

The distributed algorithms in the paper are verified against a centralized
oracle.  This module provides that oracle:

* :func:`list_triangles` / :func:`count_triangles` — enumerate ``T(G)``,
* :func:`edge_support` — the quantity ``#(e)`` from Section 2 (the number of
  triangles containing edge ``e``),
* :func:`heavy_triangles` / :func:`light_triangles` — the ε-heavy / non-heavy
  partition of ``T(G)`` that drives the paper's algorithmic decomposition,
* :func:`is_triangle_free` — the predicate motivating the problem in the
  paper's introduction,
* :func:`delta_set_membership` — the ``∆(X)`` filter from Section 3.2.

All functions run on the global :class:`~repro.graphs.graph.Graph`; they are
never used by node programs, only by generators, verification and analysis.

Since the CSR-substrate refactor the heavy lifting happens on the graph's
immutable :meth:`~repro.graphs.graph.Graph.csr` view
(:mod:`repro.graphs.csr`): triangle enumeration, per-edge supports, the
heavy/light partition and the ``∆(X)`` filter are all array reductions.  The
original pure-Python set-intersection loop survives as
:func:`iter_triangles_reference`, the independent implementation the
vectorized oracle is differentially tested against.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, List, Set

from ..types import Edge, NodeId, Triangle, make_edge
from .graph import Graph


def iter_triangles_reference(graph: Graph) -> Iterator[Triangle]:
    """Pure-Python reference enumeration (the oracle's differential witness).

    The standard "forward" strategy: each triangle ``{u, v, w}`` with
    ``u < v < w`` is reported exactly once, by scanning the neighbours of
    ``u`` greater than ``u`` and intersecting adjacency sets.  ``w`` is
    drawn from the higher-neighbour list itself, so (unlike an earlier
    revision of this loop) no redundant membership test against that list
    is needed — only adjacency of ``v`` and ``w`` has to be checked.

    Kept deliberately independent of :mod:`repro.graphs.csr`: the test
    suite asserts the vectorized oracle agrees with this loop on every
    workload family.
    """
    for u in graph.nodes():
        higher = [v for v in graph.sorted_neighbors(u) if v > u]
        for index, v in enumerate(higher):
            v_neighbors = graph.neighbors(v)
            for w in higher[index + 1:]:
                if w in v_neighbors:
                    yield (u, v, w)


def iter_triangles(graph: Graph) -> Iterator[Triangle]:
    """Iterate over all triangles of ``graph`` in canonical sorted order.

    Enumeration runs on the CSR view's vectorized forward strategy,
    streamed chunk by chunk, so early-exit consumers never pay for the full
    enumeration; the order (``u < v < w``, lexicographically ascending)
    matches :func:`iter_triangles_reference` exactly.
    """
    for chunk in graph.csr().iter_triangle_chunks():
        for row in chunk.tolist():
            yield tuple(row)  # type: ignore[misc]


def list_triangles(graph: Graph) -> List[Triangle]:
    """Return all triangles of ``graph`` (the set ``T(G)``) as a sorted list."""
    return [tuple(row) for row in graph.csr().triangles().tolist()]  # type: ignore[misc]


def count_triangles(graph: Graph) -> int:
    """Return ``|T(G)|``, the number of triangles of ``graph``.

    Counting runs on per-edge supports (one array reduction), never by
    materialising the triangle list.
    """
    return graph.csr().count_triangles()


def is_triangle_free(graph: Graph) -> bool:
    """Return ``True`` when ``graph`` contains no triangle (early-exit)."""
    return not graph.csr().has_triangle()


def triangles_through_node(graph: Graph, node: NodeId) -> List[Triangle]:
    """Return all triangles containing ``node``.

    This is the per-node output required from a *local* listing algorithm
    (Proposition 5 setting).
    """
    return [
        tuple(row)  # type: ignore[misc]
        for row in graph.csr().triangles_through(node).tolist()
    ]


def edge_support(graph: Graph, edge: Edge | None = None) -> Dict[Edge, int] | int:
    """Return ``#(e)`` for one edge, or for every edge when ``edge`` is None.

    ``#(e)`` is the number of triangles containing ``e`` (Section 2),
    equivalently the number of common neighbours of its endpoints.

    Parameters
    ----------
    graph:
        The input graph.
    edge:
        When given, return the support of that single edge as an ``int``.
        When omitted, return a dict mapping every edge of the graph to its
        support (computed as one vectorized reduction on the CSR view).
    """
    if edge is not None:
        u, v = make_edge(*edge)
        return len(graph.common_neighbors(u, v))
    csr = graph.csr()
    supports = csr.edge_support()
    return {
        (u, v): s
        for u, v, s in zip(
            csr.edge_u.tolist(), csr.edge_v.tolist(), supports.tolist()
        )
    }


def heaviness_threshold(num_nodes: int, epsilon: float) -> float:
    """Return the ε-heaviness threshold ``n^ε`` used throughout Section 3."""
    if not 0.0 <= epsilon <= 1.0:
        raise ValueError(f"epsilon must lie in [0, 1], got {epsilon}")
    if num_nodes <= 0:
        return 0.0
    return float(num_nodes) ** epsilon


def is_heavy_triangle(graph: Graph, triangle: Triangle, epsilon: float) -> bool:
    """Return ``True`` when ``triangle`` is ε-heavy in ``graph``.

    A triangle is ε-heavy when at least one of its edges ``e`` satisfies
    ``#(e) >= n^ε`` (Section 3).
    """
    threshold = heaviness_threshold(graph.num_nodes, epsilon)
    a, b, c = triangle
    for u, v in ((a, b), (a, c), (b, c)):
        if len(graph.common_neighbors(u, v)) >= threshold:
            return True
    return False


def heavy_triangles(graph: Graph, epsilon: float) -> List[Triangle]:
    """Return ``T_ε(G)``: all ε-heavy triangles of ``graph``."""
    threshold = heaviness_threshold(graph.num_nodes, epsilon)
    triangles, mask = graph.csr().heavy_triangle_mask(threshold)
    return [tuple(row) for row in triangles[mask].tolist()]  # type: ignore[misc]


def light_triangles(graph: Graph, epsilon: float) -> List[Triangle]:
    """Return ``T(G) \\ T_ε(G)``: all triangles of ``graph`` that are not ε-heavy."""
    threshold = heaviness_threshold(graph.num_nodes, epsilon)
    triangles, mask = graph.csr().heavy_triangle_mask(threshold)
    return [tuple(row) for row in triangles[~mask].tolist()]  # type: ignore[misc]


def heavy_edges(graph: Graph, epsilon: float) -> List[Edge]:
    """Return all edges ``e`` with ``#(e) >= n^ε``."""
    threshold = heaviness_threshold(graph.num_nodes, epsilon)
    csr = graph.csr()
    mask = csr.heavy_edge_mask(threshold)
    return [
        (u, v)
        for u, v in zip(csr.edge_u[mask].tolist(), csr.edge_v[mask].tolist())
    ]


def delta_set_membership(graph: Graph, landmarks: Iterable[NodeId]) -> Set[Edge]:
    """Return the pairs of the graph's edge set that belong to ``∆(X)``.

    ``∆(X)`` (Section 3.2) is defined over *all* vertex pairs: the pairs with
    no common neighbour in ``X``.  The algorithms only ever query membership
    for pairs that are edges of the graph, so this helper restricts the
    enumeration to ``E`` which keeps it quadratic-free.  Use
    :func:`pair_in_delta` for arbitrary pairs.
    """
    csr = graph.csr()
    mask = csr.delta_edge_mask(landmarks)
    return {
        (u, v)
        for u, v in zip(csr.edge_u[mask].tolist(), csr.edge_v[mask].tolist())
    }


def pair_in_delta(graph: Graph, u: NodeId, v: NodeId, landmarks: Iterable[NodeId]) -> bool:
    """Return ``True`` when the pair ``{u, v}`` belongs to ``∆(X)``.

    The pair does not need to be an edge of the graph; ``∆(X)`` is defined on
    ``E(V)``, all unordered vertex pairs.
    """
    landmark_set = set(landmarks)
    return not (graph.common_neighbors(u, v) & landmark_set)


def local_triangle_count(graph: Graph) -> Dict[NodeId, int]:
    """Return, for every node, the number of triangles containing it.

    Computed from per-edge supports (every triangle through a node
    contributes to exactly two of its incident edges), without listing.
    """
    counts = graph.csr().local_triangle_counts()
    return {node: count for node, count in enumerate(counts.tolist())}


def clustering_coefficient(graph: Graph, node: NodeId) -> float:
    """Return the local clustering coefficient of ``node``.

    Used by the example applications to characterise the synthetic social
    networks; not needed by the paper's algorithms.
    """
    degree = graph.degree(node)
    if degree < 2:
        return 0.0
    possible = degree * (degree - 1) / 2
    closed = len(triangles_through_node(graph, node))
    return closed / possible


def rivin_edge_lower_bound(num_triangles: int) -> float:
    """Return Rivin's lower bound on the number of edges covering ``t`` triangles.

    Lemma 4 of the paper (due to Rivin): a graph containing ``t`` triangles
    has at least ``(sqrt(2)/3) * t^(2/3)`` edges.  The lower-bound experiments
    check measured outputs against this bound.
    """
    if num_triangles < 0:
        raise ValueError(f"num_triangles must be non-negative, got {num_triangles}")
    if num_triangles == 0:
        return 0.0
    return (math.sqrt(2.0) / 3.0) * float(num_triangles) ** (2.0 / 3.0)
