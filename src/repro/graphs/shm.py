"""Zero-copy shared-memory plane for graph workloads.

A sweep over one workload runs many (algorithm × seed) cells against the
same graph.  Shipping that graph to worker processes by pickle costs
serialisation per cell, and — much worse on this repository's workloads —
every worker re-derives the triangle oracle (``edge_support`` /
``triangles``) that verification needs, paying the dominant setup cost
once per workload *per worker*.  This module materialises a
:class:`~repro.graphs.csr.CSRGraph`'s arrays into one
:mod:`multiprocessing.shared_memory` segment instead:

* :func:`share_csr` (parent side) copies the CSR arrays — and, optionally,
  the already-computed oracle caches — into a fresh segment and returns a
  :class:`SharedGraphOwner` whose :class:`SharedGraphHandle` is picklable
  in O(bytes of the manifest), not O(bytes of the graph);
* :func:`attach_shared_graph` (worker side) maps the segment and rebuilds
  the ``CSRGraph`` as read-only zero-copy views over the mapping, with the
  oracle caches pre-populated — a worker never recomputes what the parent
  already knows.

Lifecycle is refcounted on both sides so segments cannot leak:

* the **owner** unlinks the segment when closed; a ``weakref.finalize``
  ties unlink to garbage collection, so even a dropped owner releases the
  name (and the POSIX unlink-while-mapped semantics keep attached workers
  valid until they unmap);
* each **attachment** registers a finalizer on the attached ``CSRGraph``;
  when the last graph viewing a segment is collected the mapping is
  closed.  NumPy views can outlive the finalizer call by a few
  deallocations (``BufferError`` from ``memoryview.release``), so closes
  that cannot complete yet are parked and re-tried on the next attach or
  release — and, at the latest, at interpreter exit when the mapping dies
  with the process.

CPython 3.8–3.12 register *attached* segments with the resource tracker
as if the attaching process owned them (bpo-39959).  Because the tracker
daemon (and its name set) is shared across a process tree, that
re-registration is an idempotent no-op here — the attach path simply
leaves it alone (see :func:`_open_untracked`), and passes ``track=False``
where the real fix landed (3.13+).

Platforms without ``multiprocessing.shared_memory`` (or without a usable
``/dev/shm``) degrade cleanly: :func:`shm_available` probes once and the
sweep scheduler falls back to the pickle plane.
"""

from __future__ import annotations

import inspect
import weakref
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import GraphError
from .csr import CSRGraph

try:  # pragma: no cover - import failure only on exotic platforms
    from multiprocessing import resource_tracker, shared_memory

    SHM_AVAILABLE = True
except ImportError:  # pragma: no cover
    resource_tracker = None  # type: ignore[assignment]
    shared_memory = None  # type: ignore[assignment]
    SHM_AVAILABLE = False

__all__ = [
    "SHM_AVAILABLE",
    "SharedArraySpec",
    "SharedGraphHandle",
    "SharedGraphOwner",
    "active_attachments",
    "attach_shared_graph",
    "disown_tracker",
    "reap_pending",
    "segment_exists",
    "share_csr",
    "shm_available",
]

#: Segment offsets are rounded up to this many bytes so every attached
#: array view is safely aligned for its dtype.
_ALIGNMENT = 64

#: The CSR arrays every handle must carry, in manifest order.
_REQUIRED_FIELDS = ("indptr", "indices", "edge_u", "edge_v")

#: Optional oracle caches: manifest field -> CSRGraph slot.
_ORACLE_FIELDS = {"support": "_support", "triangles": "_triangles"}

_HAS_TRACK_PARAM = SHM_AVAILABLE and "track" in inspect.signature(
    shared_memory.SharedMemory.__init__
).parameters


@dataclass(frozen=True)
class SharedArraySpec:
    """Manifest entry for one array inside a shared segment."""

    field: str
    dtype: str
    shape: Tuple[int, ...]
    offset: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "shape", tuple(int(size) for size in self.shape))

    @property
    def nbytes(self) -> int:
        """Size of the described array in bytes."""
        count = 1
        for size in self.shape:
            count *= size
        return count * np.dtype(self.dtype).itemsize

    def to_dict(self) -> dict:
        """Return the JSON-ready manifest entry (inverse of :meth:`from_dict`)."""
        return {
            "field": self.field,
            "dtype": self.dtype,
            "shape": list(self.shape),
            "offset": self.offset,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SharedArraySpec":
        """Rebuild a manifest entry from :meth:`to_dict` output."""
        missing = {"field", "dtype", "shape", "offset"} - set(payload)
        if missing:
            raise GraphError(
                f"shared array spec is missing {sorted(missing)}"
            )
        return cls(
            field=str(payload["field"]),
            dtype=str(payload["dtype"]),
            shape=tuple(payload["shape"]),
            offset=int(payload["offset"]),
        )


@dataclass(frozen=True)
class SharedGraphHandle:
    """A picklable name-plus-manifest reference to a shared graph.

    The handle carries no graph data: pickling one costs O(manifest
    bytes) regardless of graph size, which is what lets the sweep
    scheduler ship a 10k-node workload to every worker for a few hundred
    bytes.  :meth:`attach` (or :func:`attach_shared_graph`) rebuilds the
    :class:`~repro.graphs.csr.CSRGraph` as zero-copy read-only views.
    """

    segment: str
    num_nodes: int
    num_edges: int
    arrays: Tuple[SharedArraySpec, ...]
    total_bytes: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "arrays", tuple(self.arrays))
        fields = [spec.field for spec in self.arrays]
        missing = set(_REQUIRED_FIELDS) - set(fields)
        if missing:
            raise GraphError(
                f"shared graph handle is missing required arrays {sorted(missing)}"
            )
        unknown = set(fields) - set(_REQUIRED_FIELDS) - set(_ORACLE_FIELDS)
        if unknown:
            raise GraphError(
                f"shared graph handle carries unknown arrays {sorted(unknown)}"
            )
        if len(set(fields)) != len(fields):
            raise GraphError(f"shared graph handle repeats arrays: {fields}")

    def attach(self) -> CSRGraph:
        """Attach and return the shared :class:`CSRGraph` (zero-copy)."""
        return attach_shared_graph(self)

    def to_dict(self) -> dict:
        """Return the JSON-ready manifest document (inverse of :meth:`from_dict`).

        Handles travel between processes either by pickle (the sweep
        scheduler's pool) or as canonical-JSON protocol frames (the
        experiment service's lease messages); both carry exactly the
        manifest, never graph bytes.
        """
        return {
            "segment": self.segment,
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "arrays": [spec.to_dict() for spec in self.arrays],
            "total_bytes": self.total_bytes,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SharedGraphHandle":
        """Rebuild a handle from :meth:`to_dict` output (validated as usual)."""
        missing = {"segment", "num_nodes", "num_edges", "arrays", "total_bytes"} - set(
            payload
        )
        if missing:
            raise GraphError(
                f"shared graph handle document is missing {sorted(missing)}"
            )
        return cls(
            segment=str(payload["segment"]),
            num_nodes=int(payload["num_nodes"]),
            num_edges=int(payload["num_edges"]),
            arrays=tuple(
                SharedArraySpec.from_dict(spec) for spec in payload["arrays"]
            ),
            total_bytes=int(payload["total_bytes"]),
        )


# ---------------------------------------------------------------------------
# availability probing
# ---------------------------------------------------------------------------

_PROBE_RESULT: Optional[bool] = None


def shm_available() -> bool:
    """``True`` when shared-memory segments can actually be created.

    Import success is not enough — a sandboxed or misconfigured platform
    can expose the module but fail at ``shm_open`` time — so the first
    call creates and unlinks a tiny probe segment and the verdict is
    cached for the process lifetime.
    """
    global _PROBE_RESULT
    if not SHM_AVAILABLE:
        return False
    if _PROBE_RESULT is None:
        try:
            probe = shared_memory.SharedMemory(create=True, size=16)
            probe.close()
            probe.unlink()
        except Exception:
            _PROBE_RESULT = False
        else:
            _PROBE_RESULT = True
    return _PROBE_RESULT


def _require_shm() -> None:
    if not SHM_AVAILABLE:
        raise GraphError(
            "multiprocessing.shared_memory is not available on this platform"
        )


def _open_untracked(name: str):
    """Attach to an existing segment without adopting ownership of it.

    On 3.8–3.12 ``SharedMemory(name=...)`` registers the segment with the
    resource tracker as if the attaching process created it (bpo-39959).
    Within one process tree the tracker daemon — and its name *set* — is
    shared by fork/spawn children, so the re-registration is an idempotent
    no-op and needs no correction; calling ``unregister`` here would
    instead erase the owner's entry, losing the crash-cleanup safety net
    and provoking a tracker ``KeyError`` when the owner later unlinks.
    3.13+ has the real fix (``track=False``), which this uses when
    available.
    """
    if _HAS_TRACK_PARAM:  # pragma: no cover - exercised on 3.13+ only
        return shared_memory.SharedMemory(name=name, track=False)
    return shared_memory.SharedMemory(name=name)


def disown_tracker(segment: str) -> None:
    """Drop *this process's* resource-tracker entry for ``segment``.

    The no-correction rule in :func:`_open_untracked` holds only inside
    one process tree.  A worker launched with ``subprocess.Popen`` (the
    service fleet) starts its **own** tracker daemon: on 3.8–3.12 the
    attach-side re-registration (bpo-39959) lands there, and at worker
    exit that private tracker would *unlink the owner's still-live
    segment*.  Such workers must call this after attaching.  Safe to
    call even when the tracker entry does not exist; no-op on 3.13+
    (attachments are untracked) and where shm is unavailable.
    """
    if not SHM_AVAILABLE or _HAS_TRACK_PARAM:
        return
    # The tracker stores the raw POSIX name (leading slash) as
    # registered by ``SharedMemory.__init__``, not the public ``.name``.
    raw = segment if segment.startswith("/") else "/" + segment
    try:
        resource_tracker.unregister(raw, "shared_memory")
    except Exception:  # pragma: no cover - tracker already gone
        pass


def segment_exists(name: str) -> bool:
    """``True`` when a segment of this name currently exists (test probe)."""
    if not SHM_AVAILABLE:
        return False
    try:
        probe = _open_untracked(name)
    except FileNotFoundError:
        return False
    probe.close()
    return True


# ---------------------------------------------------------------------------
# parent side: share
# ---------------------------------------------------------------------------


def _close_segment(shm) -> bool:
    """Close a mapping; ``False`` when live array views still pin it."""
    try:
        shm.close()
    except BufferError:
        return False
    return True


def _unlink_segment(shm) -> None:
    try:
        shm.unlink()
    except FileNotFoundError:
        # ``SharedMemory.unlink`` unregisters from the resource tracker
        # only *after* a successful ``shm_unlink``; when the name is
        # already gone (another process raced the unlink) the entry
        # would linger and the tracker would warn — and re-raise the
        # ENOENT — at process exit.  Drop it by hand.
        if resource_tracker is not None:
            try:
                resource_tracker.unregister(
                    getattr(shm, "_name", shm.name), "shared_memory"
                )
            except Exception:  # pragma: no cover - tracker already gone
                pass


def _owner_cleanup(shm) -> None:
    """Finalizer target: unlink the segment and drop the owner's mapping.

    Unlink happens first and unconditionally — releasing the *name* is
    the leak that matters (attached processes keep their mappings valid
    under POSIX unlink-while-mapped semantics).  The owner's own mapping
    close is best-effort: a still-exported buffer only delays the unmap
    until process exit, it cannot resurrect the name.
    """
    _unlink_segment(shm)
    _close_segment(shm)


class SharedGraphOwner:
    """Parent-side ownership of one shared graph segment.

    Closing the owner unlinks the segment (idempotently); a
    ``weakref.finalize`` guarantees the same cleanup when an owner is
    dropped without an explicit :meth:`close` — including interpreter
    exit, where all pending finalizers run.
    """

    __slots__ = ("handle", "_shm", "_finalizer", "__weakref__")

    def __init__(self, handle: SharedGraphHandle, shm) -> None:
        self.handle = handle
        self._shm = shm
        self._finalizer = weakref.finalize(self, _owner_cleanup, shm)

    @property
    def closed(self) -> bool:
        """``True`` once the segment has been unlinked."""
        return not self._finalizer.alive

    def close(self) -> None:
        """Unlink the segment (idempotent; attached workers stay valid)."""
        self._finalizer()

    def __enter__(self) -> "SharedGraphOwner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"SharedGraphOwner(segment={self.handle.segment!r}, {state})"


def share_csr(csr: CSRGraph, *, oracle: str = "keep") -> SharedGraphOwner:
    """Materialise ``csr`` into one shared segment and return its owner.

    Parameters
    ----------
    csr:
        The immutable CSR snapshot to share.
    oracle:
        What to do with the triangle-oracle caches (``edge_support`` /
        ``triangles``): ``"keep"`` shares whatever is already computed,
        ``"materialize"`` computes both here so no worker ever will, and
        ``"omit"`` shares the bare CSR arrays only.  The sweep scheduler
        uses ``"materialize"`` — verification needs the oracle for every
        cell, so paying it once in the parent is always a net win.
    """
    _require_shm()
    if oracle not in ("keep", "materialize", "omit"):
        raise GraphError(
            f"oracle must be 'keep', 'materialize' or 'omit', got {oracle!r}"
        )
    if oracle == "materialize":
        csr.edge_support()
        csr.triangles()

    payload: List[Tuple[str, np.ndarray]] = [
        (field, getattr(csr, field)) for field in _REQUIRED_FIELDS
    ]
    if oracle != "omit":
        for field, slot in _ORACLE_FIELDS.items():
            cached = getattr(csr, slot)
            if cached is not None:
                payload.append((field, cached))

    specs: List[SharedArraySpec] = []
    offset = 0
    for field, array in payload:
        offset = -(-offset // _ALIGNMENT) * _ALIGNMENT
        specs.append(
            SharedArraySpec(
                field=field,
                dtype=np.dtype(array.dtype).str,
                shape=tuple(array.shape),
                offset=offset,
            )
        )
        offset += array.nbytes
    total_bytes = max(offset, 1)

    shm = shared_memory.SharedMemory(create=True, size=total_bytes)
    try:
        for spec, (_, array) in zip(specs, payload):
            view = np.ndarray(
                spec.shape, dtype=spec.dtype, buffer=shm.buf, offset=spec.offset
            )
            view[...] = array
            del view  # release the buffer export before close() can run
        handle = SharedGraphHandle(
            segment=shm.name,
            num_nodes=csr.num_nodes,
            num_edges=csr.num_edges,
            arrays=tuple(specs),
            total_bytes=total_bytes,
        )
    except BaseException:
        _owner_cleanup(shm)
        raise
    return SharedGraphOwner(handle, shm)


# ---------------------------------------------------------------------------
# worker side: attach
# ---------------------------------------------------------------------------


class _Attachment:
    __slots__ = ("shm", "refcount")

    def __init__(self, shm) -> None:
        self.shm = shm
        self.refcount = 0


#: This process's open attachments: segment name -> refcounted mapping.
_ATTACHMENTS: Dict[str, _Attachment] = {}

#: Mappings whose close raised ``BufferError`` (views still draining);
#: re-tried by :func:`reap_pending` on the next attach/release.
_PENDING_CLOSE: List = []


def reap_pending() -> int:
    """Retry deferred mapping closes; return how many are still pending."""
    still_pending = [shm for shm in _PENDING_CLOSE if not _close_segment(shm)]
    _PENDING_CLOSE[:] = still_pending
    return len(still_pending)


def active_attachments() -> Dict[str, int]:
    """Return this process's live attachments as ``{segment: refcount}``."""
    return {name: entry.refcount for name, entry in _ATTACHMENTS.items()}


def _release_attachment(segment: str) -> None:
    """Finalizer target: drop one reference to an attached segment.

    Runs while the dying ``CSRGraph``'s array views are still reachable
    (weakref callbacks fire before slot teardown), so an immediate close
    usually raises ``BufferError``; such mappings are parked on the
    pending list and reaped once the views are gone.
    """
    entry = _ATTACHMENTS.get(segment)
    if entry is not None:
        entry.refcount -= 1
        if entry.refcount <= 0:
            del _ATTACHMENTS[segment]
            if not _close_segment(entry.shm):
                _PENDING_CLOSE.append(entry.shm)
    reap_pending()


def attach_shared_graph(handle: SharedGraphHandle) -> CSRGraph:
    """Attach ``handle`` and return its graph as read-only zero-copy views.

    Attachments are refcounted per process: many graphs may view one
    segment through a single mapping, and the mapping is closed when the
    last of them is garbage collected.  The returned ``CSRGraph`` is
    indistinguishable from a locally built snapshot — same arrays, same
    immutability — except that any oracle caches the sharer included
    arrive pre-populated.
    """
    _require_shm()
    reap_pending()
    entry = _ATTACHMENTS.get(handle.segment)
    created = entry is None
    if created:
        try:
            shm = _open_untracked(handle.segment)
        except FileNotFoundError as exc:
            raise GraphError(
                f"shared graph segment {handle.segment!r} no longer exists "
                "(was its owner closed before the workers attached?)"
            ) from exc
        entry = _Attachment(shm)
    try:
        if entry.shm.size < handle.total_bytes:
            raise GraphError(
                f"shared graph segment {handle.segment!r} is smaller than "
                f"its manifest claims ({entry.shm.size} < "
                f"{handle.total_bytes} bytes)"
            )

        arrays: Dict[str, np.ndarray] = {}
        for spec in handle.arrays:
            view = np.ndarray(
                spec.shape, dtype=spec.dtype, buffer=entry.shm.buf, offset=spec.offset
            )
            view.setflags(write=False)
            arrays[spec.field] = view

        csr = CSRGraph(
            handle.num_nodes,
            arrays["indptr"],
            arrays["indices"],
            arrays["edge_u"],
            arrays["edge_v"],
        )
    except BaseException:
        # A mapping opened just for this failed attach must not linger at
        # refcount 0; views created above may still pin it, so the close
        # is parked if it cannot complete yet.
        if created and not _close_segment(entry.shm):
            _PENDING_CLOSE.append(entry.shm)
        raise
    for field, slot in _ORACLE_FIELDS.items():
        if field in arrays:
            setattr(csr, slot, arrays[field])
    _ATTACHMENTS[handle.segment] = entry
    entry.refcount += 1
    weakref.finalize(csr, _release_attachment, handle.segment)
    return csr
