"""Edge-list serialization for :class:`~repro.graphs.graph.Graph`.

Experiments frequently need to persist the exact workload graph next to the
measured results so a run can be audited or replayed.  The format is a plain
text edge list:

* a header line ``# nodes <n>``,
* optional comment lines starting with ``#``,
* one ``u v`` pair per line in canonical (sorted) order.

The format is deliberately trivial — it round-trips exactly and diffs
cleanly in version control.  Paths ending in ``.gz`` are transparently
gzip-compressed on write and decompressed on read, so large workload files
never need to live uncompressed on disk.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import Iterable, TextIO, Union

from ..errors import GraphError
from .graph import Graph

PathLike = Union[str, Path]


def _open_text(path: PathLike, mode: str) -> TextIO:
    """Open a path as text, transparently gzipping when it ends in ``.gz``."""
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def write_edge_list(graph: Graph, destination: Union[PathLike, TextIO], comments: Iterable[str] = ()) -> None:
    """Write ``graph`` as an edge list to a path or text stream.

    Parameters
    ----------
    graph:
        The graph to serialise.
    destination:
        A filesystem path (gzip-compressed when it ends in ``.gz``) or an
        open text stream.
    comments:
        Optional comment lines (without the leading ``#``) written after the
        header, e.g. generator parameters and seeds.
    """
    if isinstance(destination, (str, Path)):
        with _open_text(destination, "w") as handle:
            _write(graph, handle, comments)
    else:
        _write(graph, destination, comments)


def _write(graph: Graph, handle: TextIO, comments: Iterable[str]) -> None:
    handle.write(f"# nodes {graph.num_nodes}\n")
    for comment in comments:
        handle.write(f"# {comment}\n")
    for u, v in graph.edges():
        handle.write(f"{u} {v}\n")


def read_edge_list(source: Union[PathLike, TextIO]) -> Graph:
    """Read a graph previously written by :func:`write_edge_list`.

    Paths ending in ``.gz`` are decompressed transparently.

    Raises
    ------
    GraphError
        If the header is missing or a line cannot be parsed.
    """
    if isinstance(source, (str, Path)):
        with _open_text(source, "r") as handle:
            return _read(handle)
    return _read(source)


def _parse_edge_line(stripped: str, line_number: int) -> "tuple[int, int]":
    parts = stripped.split()
    if len(parts) != 2:
        raise GraphError(
            f"line {line_number}: expected 'u v', got {stripped!r}"
        )
    try:
        u, v = int(parts[0]), int(parts[1])
    except ValueError as exc:
        raise GraphError(
            f"line {line_number}: endpoints must be integers, got {stripped!r}"
        ) from exc
    return u, v


def _read(handle: TextIO) -> Graph:
    header = handle.readline()
    if not header.startswith("# nodes "):
        raise GraphError(
            "edge-list files must start with a '# nodes <n>' header line"
        )
    try:
        num_nodes = int(header[len("# nodes "):].strip())
    except ValueError as exc:
        raise GraphError(f"could not parse node count from header {header!r}") from exc
    graph = Graph(num_nodes)
    for line_number, line in enumerate(handle, start=2):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        graph.add_edge(*_parse_edge_line(stripped, line_number))
    return graph


def read_edge_stream(source: Union[PathLike, TextIO]):
    """Lazily yield canonical ``(u, v)`` pairs from an edge-list source.

    The ingest-channel counterpart of :func:`read_edge_list`: nothing is
    materialised — lines are read one at a time (gzip members included),
    so arbitrarily large ``.gz`` edge streams can be applied in bounded
    memory.  Differences from the graph reader:

    * no header is required; ``# ...`` comment lines (including a
      ``# nodes <n>`` header, if present) and blank lines are skipped,
    * duplicate edges are passed through unchanged — consumers such as
      :meth:`DeltaGraph.apply_batch` deduplicate per batch,
    * pairs are canonicalised to ``u < v``; self-loops raise
      :class:`~repro.errors.GraphError` with the offending line number,

    Node-range validation is the consumer's job (the stream does not know
    the graph it will be applied to).
    """
    if isinstance(source, (str, Path)):
        def _iter_path():
            with _open_text(source, "r") as handle:
                yield from _iter_edge_stream(handle)

        return _iter_path()
    return _iter_edge_stream(source)


def _iter_edge_stream(handle: TextIO):
    for line_number, line in enumerate(handle, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        u, v = _parse_edge_line(stripped, line_number)
        if u == v:
            raise GraphError(f"line {line_number}: self-loop {u} {v} is not an edge")
        yield (u, v) if u < v else (v, u)


def to_edge_list_string(graph: Graph, comments: Iterable[str] = ()) -> str:
    """Return the edge-list serialisation of ``graph`` as a string."""
    buffer = io.StringIO()
    _write(graph, buffer, comments)
    return buffer.getvalue()


def from_edge_list_string(text: str) -> Graph:
    """Parse a graph from an edge-list string produced by :func:`to_edge_list_string`."""
    return _read(io.StringIO(text))
