"""Immutable CSR adjacency core and the vectorized triangle oracle.

The mutable :class:`~repro.graphs.graph.Graph` stays the build-time API, but
every read-heavy consumer — the centralized ground-truth oracle, simulator
context construction, parameter selection, workload descriptors — now runs
on a compressed-sparse-row snapshot of the adjacency structure:

* ``indptr`` / ``indices`` — the standard CSR pair: the (sorted) neighbour
  list of vertex ``v`` is ``indices[indptr[v]:indptr[v+1]]``.
* ``edge_u`` / ``edge_v`` — the canonical edge list (``u < v``, sorted
  lexicographically), cached so per-edge reductions never re-enumerate.

Invariants (relied on throughout, asserted by the test suite):

* **immutability** — all arrays are created with ``writeable=False``; a
  :class:`CSRGraph` never changes after construction,
* **sorted neighbours** — every ``indices`` row is strictly increasing,
  which is what makes merge/intersection-based triangle enumeration and
  ``np.searchsorted`` membership correct,
* **mutation invalidation** — :meth:`Graph.csr` hands out a snapshot that
  is dropped on the next ``add_edge``/``remove_edge``, so a stale view can
  never alias a mutated graph.

The triangle oracle picks between two execution strategies:

* a **dense bitset path** for graphs whose ``n x n`` boolean adjacency
  matrix fits in :data:`DENSE_ADJACENCY_MAX_BYTES` — per-edge common
  neighbourhoods become packed-``uint8`` AND + popcount reductions, and
  triangle listing becomes chunked boolean-matrix row intersections,
* a **sorted-merge path** for everything larger — per-edge
  ``np.intersect1d`` / ``searchsorted`` over the sorted CSR slices.

Both produce identical results (differentially tested against the
pure-Python reference in :mod:`repro.graphs.triangles`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .graph import Graph

#: Largest boolean adjacency matrix (in bytes) the oracle will materialise
#: for the dense bitset strategy.  Above this the sorted-merge path is used.
DENSE_ADJACENCY_MAX_BYTES = 256 * 1024 * 1024

#: Minimum edge fill for the dense strategy: the bitset rows cost O(n) each
#: regardless of sparsity, so the dense path must also see at least
#: ``n² / DENSE_MIN_FILL_DIVISOR`` edges (average degree ``>= n/32``) before
#: its O(n²) build amortises.  A 10k-node sparse graph (m ~ n^{3/2}) stays
#: on the sorted-merge path instead of materialising a 100 MB matrix.
DENSE_MIN_FILL_DIVISOR = 64

#: Floor on rows per chunk for the chunked dense reductions (the
#: ``chunk_bytes`` knob in :mod:`repro.congest.backends` sets the ceiling).
_MIN_EDGE_CHUNK = 256

#: Popcount lookup table for packed-``uint8`` rows.
_POPCOUNT = np.array([bin(value).count("1") for value in range(256)], dtype=np.int64)


def _backend():
    """The active kernel backend (imported lazily: :mod:`repro.congest`
    imports this module at package-init time, so a module-level import of
    ``repro.congest.backends`` here would be circular)."""
    from ..congest.backends import active_backend

    return active_backend()


def _edge_chunk(row_bytes: int) -> int:
    """Edges per block so one ``(chunk, row_bytes)`` intermediate stays
    within the active ``chunk_bytes`` bound."""
    from ..congest.backends import chunk_rows

    return chunk_rows(row_bytes, minimum=_MIN_EDGE_CHUNK)

_EMPTY_INT64 = np.empty(0, dtype=np.int64)
_EMPTY_INT64.setflags(write=False)


def _frozen(array: np.ndarray) -> np.ndarray:
    array.setflags(write=False)
    return array


class CSRGraph:
    """An immutable CSR snapshot of an undirected simple graph.

    Instances are built through :meth:`from_graph` / :meth:`from_edge_arrays`
    (or, usually, obtained from :meth:`repro.graphs.graph.Graph.csr`); the
    constructor trusts its inputs and is not part of the public API.
    """

    __slots__ = (
        "num_nodes",
        "indptr",
        "indices",
        "edge_u",
        "edge_v",
        "_edge_keys",
        "_support",
        "_triangles",
        "_dense_bool",
        "_dense_packed",
        # Weak referenceability: the shared-memory plane (repro.graphs.shm)
        # ties segment-mapping lifetime to attached snapshots with
        # weakref.finalize.
        "__weakref__",
    )

    def __init__(
        self,
        num_nodes: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        edge_u: np.ndarray,
        edge_v: np.ndarray,
    ) -> None:
        self.num_nodes = int(num_nodes)
        self.indptr = _frozen(indptr)
        self.indices = _frozen(indices)
        self.edge_u = _frozen(edge_u)
        self.edge_v = _frozen(edge_v)
        self._edge_keys: Optional[np.ndarray] = None
        self._support: Optional[np.ndarray] = None
        self._triangles: Optional[np.ndarray] = None
        self._dense_bool: Optional[np.ndarray] = None
        self._dense_packed: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: "Graph") -> "CSRGraph":
        """Snapshot a mutable :class:`Graph` (neighbour rows sorted)."""
        adjacency = graph._adjacency
        num_nodes = graph.num_nodes
        degrees = np.fromiter(
            (len(adj) for adj in adjacency), dtype=np.int64, count=num_nodes
        )
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=np.int64)
        for node in range(num_nodes):
            indices[indptr[node] : indptr[node + 1]] = sorted(adjacency[node])
        return cls(num_nodes, indptr, indices, *_canonical_edges(indptr, indices))

    @classmethod
    def from_edge_arrays(
        cls, num_nodes: int, edge_u: np.ndarray, edge_v: np.ndarray
    ) -> "CSRGraph":
        """Build from canonical edge arrays (``u < v``, lexicographically sorted,
        deduplicated).  Callers are responsible for canonicalisation —
        :meth:`repro.graphs.graph.Graph.from_edge_arrays` is the public door.
        """
        sym_src = np.concatenate((edge_u, edge_v))
        sym_dst = np.concatenate((edge_v, edge_u))
        order = np.argsort(sym_src * np.int64(max(num_nodes, 1)) + sym_dst)
        indices = np.ascontiguousarray(sym_dst[order])
        counts = np.bincount(sym_src, minlength=num_nodes)
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(num_nodes, indptr, indices, edge_u.copy(), edge_v.copy())

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of edges ``m``."""
        return int(self.edge_u.shape[0])

    @property
    def degrees(self) -> np.ndarray:
        """Per-vertex degree array (a view-sized diff of ``indptr``)."""
        return self.indptr[1:] - self.indptr[:-1]

    def degree(self, node: int) -> int:
        """Return the degree of ``node``."""
        return int(self.indptr[node + 1] - self.indptr[node])

    def max_degree(self) -> int:
        """Return ``d_max`` (0 for the empty graph)."""
        if self.num_nodes == 0:
            return 0
        return int(self.degrees.max())

    def neighbor_slice(self, node: int) -> np.ndarray:
        """Return the sorted neighbour row of ``node`` as a zero-copy view."""
        return self.indices[self.indptr[node] : self.indptr[node + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Edge membership via binary search in the sorted neighbour row."""
        if u == v:
            return False
        row = self.neighbor_slice(u)
        position = int(np.searchsorted(row, v))
        return position < row.shape[0] and int(row[position]) == v

    def has_edges(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Vectorized edge-membership test for arbitrary vertex pairs.

        The whole-network membership oracle the fused phase kernels use in
        place of per-node ``np.isin`` row scans: on graphs whose boolean
        adjacency matrix is materialisable (the dense oracle strategy) the
        batch is one cache-resident fancy gather; otherwise one binary
        search of the sorted canonical edge keys answers it.  Pair order
        does not matter and ``u == v`` pairs are ``False`` (simple graphs
        carry no self-loops).
        """
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        if self._use_dense():
            return self._bool_matrix()[u, v]
        keys = np.minimum(u, v) * np.int64(max(self.num_nodes, 1)) + np.maximum(u, v)
        return _backend().sorted_membership(self._edge_key_array(), keys)

    def common_neighbors(self, u: int, v: int) -> np.ndarray:
        """Return ``N(u) ∩ N(v)`` as a sorted array."""
        return np.intersect1d(
            self.neighbor_slice(u), self.neighbor_slice(v), assume_unique=True
        )

    def edges_array(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return the canonical ``(edge_u, edge_v)`` pair (read-only views)."""
        return self.edge_u, self.edge_v

    # ------------------------------------------------------------------
    # dense-strategy internals
    # ------------------------------------------------------------------
    def _use_dense(self) -> bool:
        if self.num_nodes <= 0 or self.num_edges == 0:
            return False
        matrix_bytes = self.num_nodes * self.num_nodes
        if matrix_bytes > DENSE_ADJACENCY_MAX_BYTES:
            return False
        # Each bitset row is O(n) regardless of how many of its bits are
        # set: demand a minimum edge fill so sparse large-n graphs use the
        # sorted-merge path instead of an O(n²) matrix build.
        return self.num_edges * DENSE_MIN_FILL_DIVISOR >= matrix_bytes

    def _bool_matrix(self) -> np.ndarray:
        """The full boolean adjacency matrix (dense strategy only)."""
        if self._dense_bool is None:
            matrix = np.zeros((self.num_nodes, self.num_nodes), dtype=bool)
            matrix[self.edge_u, self.edge_v] = True
            matrix[self.edge_v, self.edge_u] = True
            self._dense_bool = _frozen(matrix)
        return self._dense_bool

    def _packed_matrix(self) -> np.ndarray:
        """Row-wise bit-packed adjacency (``uint8``), for popcount reductions."""
        if self._dense_packed is None:
            self._dense_packed = _frozen(np.packbits(self._bool_matrix(), axis=1))
        return self._dense_packed

    def _edge_key_array(self) -> np.ndarray:
        """Canonical edge keys ``u * n + v`` (sorted ascending)."""
        if self._edge_keys is None:
            self._edge_keys = _frozen(
                self.edge_u * np.int64(max(self.num_nodes, 1)) + self.edge_v
            )
        return self._edge_keys

    # ------------------------------------------------------------------
    # the triangle oracle
    # ------------------------------------------------------------------
    def edge_support(self) -> np.ndarray:
        """Return ``#(e)`` for every canonical edge, aligned with ``edge_u``.

        ``#(e)`` (Section 2 of the paper) is the number of triangles
        containing ``e``, i.e. ``|N(u) ∩ N(v)|``.
        """
        if self._support is not None:
            return self._support
        m = self.num_edges
        support = np.zeros(m, dtype=np.int64)
        if m:
            if self._use_dense():
                packed = self._packed_matrix()
                backend = _backend()
                chunk = _edge_chunk(packed.shape[1])
                for start in range(0, m, chunk):
                    end = min(start + chunk, m)
                    support[start:end] = backend.edge_support_chunk(
                        packed, self.edge_u[start:end], self.edge_v[start:end]
                    )
            else:
                indptr, indices = self.indptr, self.indices
                u_list = self.edge_u.tolist()
                v_list = self.edge_v.tolist()
                for index, (u, v) in enumerate(zip(u_list, v_list)):
                    row_u = indices[indptr[u] : indptr[u + 1]]
                    row_v = indices[indptr[v] : indptr[v + 1]]
                    if row_u.shape[0] > row_v.shape[0]:
                        row_u, row_v = row_v, row_u
                    positions = np.searchsorted(row_v, row_u)
                    positions[positions == row_v.shape[0]] = 0
                    support[index] = int(
                        np.count_nonzero(row_v[positions] == row_u)
                    )
        self._support = _frozen(support)
        return self._support

    def count_triangles(self) -> int:
        """Return ``|T(G)|``.  Each triangle is counted once per edge, so
        the per-edge supports sum to three times the triangle count."""
        if self.num_edges == 0:
            return 0
        return int(self.edge_support().sum()) // 3

    def has_triangle(self) -> bool:
        """Early-exit triangle existence check (no full reduction when a
        support is found early)."""
        m = self.num_edges
        if m == 0:
            return False
        if self._support is not None:
            return bool((self._support > 0).any())
        if self._use_dense():
            packed = self._packed_matrix()
            chunk = _edge_chunk(packed.shape[1])
            for start in range(0, m, chunk):
                end = min(start + chunk, m)
                both = packed[self.edge_u[start:end]] & packed[self.edge_v[start:end]]
                if both.any():
                    return True
            return False
        indptr, indices = self.indptr, self.indices
        for u, v in zip(self.edge_u.tolist(), self.edge_v.tolist()):
            row_u = indices[indptr[u] : indptr[u + 1]]
            row_v = indices[indptr[v] : indptr[v + 1]]
            if np.intersect1d(row_u, row_v, assume_unique=True).shape[0]:
                return True
        return False

    def iter_triangle_chunks(self) -> "Iterator[np.ndarray]":
        """Yield triangles as ``(k, 3)`` int64 chunks, lazily, in canonical
        sorted order (rows ``u < v < w``, lexicographically ascending).

        Enumeration is forward: each triangle is discovered from its
        lexicographically smallest edge ``(u, v)`` by restricting the common
        neighbourhood to ``w > v``.  Chunks are produced edge-window by
        edge-window, so early-exit consumers (e.g. iterating until the
        first hit) never pay for the full enumeration.  When the full array
        has already been materialised by :meth:`triangles`, it is yielded
        as a single cached chunk.
        """
        if self._triangles is not None:
            if self._triangles.shape[0]:
                yield self._triangles
            return
        m = self.num_edges
        if m == 0:
            return
        if self._use_dense():
            matrix = self._bool_matrix()
            columns = np.arange(self.num_nodes, dtype=np.int64)
            chunk = _edge_chunk(self.num_nodes)
            for start in range(0, m, chunk):
                end = min(start + chunk, m)
                u_chunk = self.edge_u[start:end]
                v_chunk = self.edge_v[start:end]
                both = matrix[u_chunk] & matrix[v_chunk]
                both &= columns[None, :] > v_chunk[:, None]
                edge_index, w = np.nonzero(both)
                if edge_index.shape[0]:
                    yield np.column_stack(
                        (u_chunk[edge_index], v_chunk[edge_index], w)
                    )
        else:
            indptr, indices = self.indptr, self.indices
            for u, v in zip(self.edge_u.tolist(), self.edge_v.tolist()):
                row_u = indices[indptr[u] : indptr[u + 1]]
                row_v = indices[indptr[v] : indptr[v + 1]]
                common = np.intersect1d(row_u, row_v, assume_unique=True)
                common = common[common > v]
                if common.shape[0]:
                    yield np.column_stack(
                        (
                            np.full(common.shape[0], u, dtype=np.int64),
                            np.full(common.shape[0], v, dtype=np.int64),
                            common,
                        )
                    )

    def triangles(self) -> np.ndarray:
        """Return all triangles as one ``(t, 3)`` int64 array (cached).

        The cache means repeated consumers — per-run verification, the
        heavy *and* light sides of the partition — enumerate at most once
        per snapshot; like every other array on the view it is immutable.
        """
        if self._triangles is None:
            pieces = list(self.iter_triangle_chunks())
            if pieces:
                self._triangles = _frozen(np.concatenate(pieces, axis=0))
            else:
                self._triangles = _frozen(np.empty((0, 3), dtype=np.int64))
        return self._triangles

    def triangles_through(self, node: int) -> np.ndarray:
        """Return the triangles containing ``node`` as a ``(t, 3)`` array of
        canonical (row-sorted) triples, lexicographically ordered."""
        nbrs = self.neighbor_slice(node)
        if nbrs.shape[0] < 2:
            return np.empty((0, 3), dtype=np.int64)
        if self._use_dense():
            sub = self._bool_matrix()[np.ix_(nbrs, nbrs)]
            first, second = np.nonzero(np.triu(sub, k=1))
            pairs = np.column_stack((nbrs[first], nbrs[second]))
        else:
            indptr, indices = self.indptr, self.indices
            rows = []
            for u in nbrs.tolist():
                row_u = indices[indptr[u] : indptr[u + 1]]
                partners = np.intersect1d(row_u, nbrs, assume_unique=True)
                partners = partners[partners > u]
                if partners.shape[0]:
                    rows.append(
                        np.column_stack(
                            (np.full(partners.shape[0], u, dtype=np.int64), partners)
                        )
                    )
            if not rows:
                return np.empty((0, 3), dtype=np.int64)
            pairs = np.concatenate(rows, axis=0)
        if pairs.shape[0] == 0:
            return np.empty((0, 3), dtype=np.int64)
        triples = np.column_stack(
            (np.full(pairs.shape[0], node, dtype=np.int64), pairs)
        )
        triples.sort(axis=1)
        order = np.lexsort((triples[:, 2], triples[:, 1], triples[:, 0]))
        return triples[order]

    def support_lookup(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Vectorized per-pair support lookup for canonical pairs ``a < b``
        that are edges of the graph (positions found by binary search in the
        sorted canonical edge keys)."""
        keys = a * np.int64(max(self.num_nodes, 1)) + b
        positions = np.searchsorted(self._edge_key_array(), keys)
        return self.edge_support()[positions]

    def heavy_edge_mask(self, threshold: float) -> np.ndarray:
        """Boolean mask over canonical edges with ``#(e) >= threshold``."""
        return self.edge_support() >= threshold

    def heavy_triangle_mask(self, threshold: float) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(triangles, mask)`` where ``mask[i]`` is True when
        triangle ``i`` is heavy (some edge has support ``>= threshold``)."""
        triangles = self.triangles()
        if triangles.shape[0] == 0:
            return triangles, np.empty(0, dtype=bool)
        a, b, c = triangles[:, 0], triangles[:, 1], triangles[:, 2]
        mask = (
            (self.support_lookup(a, b) >= threshold)
            | (self.support_lookup(a, c) >= threshold)
            | (self.support_lookup(b, c) >= threshold)
        )
        return triangles, mask

    def local_triangle_counts(self) -> np.ndarray:
        """Per-vertex triangle counts, computed without listing: every
        triangle through ``v`` contributes to the support of exactly two of
        ``v``'s incident edges, so ``count(v) = Σ_e∋v #(e) / 2``."""
        support = self.edge_support()
        per_node = np.bincount(
            self.edge_u, weights=support, minlength=self.num_nodes
        ) + np.bincount(self.edge_v, weights=support, minlength=self.num_nodes)
        return (per_node.astype(np.int64)) // 2

    def delta_edge_mask(self, landmarks: Iterable[int]) -> np.ndarray:
        """Boolean mask over canonical edges that belong to ``∆(X)``
        (Section 3.2): edges whose endpoints share no common neighbour in
        the landmark set ``X``."""
        m = self.num_edges
        landmark_array = np.fromiter(
            (int(x) for x in landmarks), dtype=np.int64
        )
        if m == 0:
            return np.empty(0, dtype=bool)
        # Out-of-range landmark ids can never be a common neighbour, so
        # (like pair_in_delta) they are ignored rather than rejected.
        landmark_array = landmark_array[
            (landmark_array >= 0) & (landmark_array < self.num_nodes)
        ]
        if landmark_array.shape[0] == 0:
            return np.ones(m, dtype=bool)
        mask = np.empty(m, dtype=bool)
        if self._use_dense():
            landmark_flags = np.zeros(self.num_nodes, dtype=bool)
            landmark_flags[landmark_array] = True
            matrix = self._bool_matrix()
            chunk = _edge_chunk(self.num_nodes)
            for start in range(0, m, chunk):
                end = min(start + chunk, m)
                both = matrix[self.edge_u[start:end]] & matrix[self.edge_v[start:end]]
                mask[start:end] = ~(both & landmark_flags[None, :]).any(axis=1)
        else:
            landmark_sorted = np.unique(landmark_array)
            indptr, indices = self.indptr, self.indices
            for index, (u, v) in enumerate(
                zip(self.edge_u.tolist(), self.edge_v.tolist())
            ):
                common = np.intersect1d(
                    indices[indptr[u] : indptr[u + 1]],
                    indices[indptr[v] : indptr[v + 1]],
                    assume_unique=True,
                )
                mask[index] = not np.isin(
                    common, landmark_sorted, assume_unique=True
                ).any()
        return mask

    def __repr__(self) -> str:
        return f"CSRGraph(num_nodes={self.num_nodes}, num_edges={self.num_edges})"


#: Largest vertex-id space for which :func:`triangles_by_group` keeps one
#: shared n×n boolean scratch matrix; larger spaces remap each group onto
#: its compact vertex set instead.
GROUPED_DENSE_MAX_NODES = 4096


def triangles_by_group(
    group: np.ndarray, u: np.ndarray, v: np.ndarray, num_nodes: int
) -> Tuple[np.ndarray, np.ndarray]:
    """List triangles independently inside each group's edge set.

    The whole-network oracle call behind the direct-exchange receivers:
    ``(group[i], u[i], v[i])`` says edge ``{u, v}`` belongs to group
    ``group[i]`` (a receiver, or any composite id), and a triangle is
    listed for a group exactly when all three of its edges appear among
    that group's rows.  ``group`` must be non-decreasing — the natural
    order of destination-grouped channel columns.  Edges may repeat (each
    copy of a triangle's lexicographically smallest edge lists it again;
    consumers dedup) and need not be ordered pairs; self-loops are
    rejected.

    Returns ``(tri_group, tri_keys)``: for each listed triangle its group
    id and its canonical int64 key under
    :func:`repro.types.triangle_keys`, ordered by group.

    Within a group the listing is the dense forward enumeration of the
    oracle (edge rows AND-ed over a packed adjacency bitset, common
    neighbours restricted to ``w > v``), run over one scratch matrix whose
    touched bits are cleared between groups — no per-group graph objects.
    """
    group = np.ascontiguousarray(group, dtype=np.int64)
    count = int(group.shape[0])
    empty = (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
    if count == 0:
        return empty
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    uu = np.minimum(u, v)
    vv = np.maximum(u, v)
    if (uu == vv).any():
        raise ValueError("triangles_by_group got a self-loop edge")
    starts = np.flatnonzero(np.concatenate(([True], group[1:] != group[:-1])))
    bounds = np.append(starts[1:], count)
    gids = group[starts]
    start_list = starts.tolist()
    bound_list = bounds.tolist()
    out_groups: list = []
    out_keys: list = []
    n64 = np.int64(num_nodes)
    if num_nodes <= GROUPED_DENSE_MAX_NODES:
        width = (num_nodes + 7) // 8
        cols = np.arange(num_nodes, dtype=np.int64)
        greater_packed = np.packbits(cols[None, :] > cols[:, None], axis=1)
        scratch = np.zeros((num_nodes, num_nodes), dtype=bool)
        for which, start in enumerate(start_list):
            end = bound_list[which]
            us, vs = uu[start:end], vv[start:end]
            scratch[us, vs] = True
            scratch[vs, us] = True
            if 2 * (end - start) < num_nodes:
                # Small group: packing only the edge-indexed rows beats
                # packing the whole n×n scratch.
                both = np.packbits(scratch[us], axis=1)
                both &= np.packbits(scratch[vs], axis=1)
            else:
                packed = np.packbits(scratch, axis=1)
                both = packed[us] & packed[vs]
            both &= greater_packed[vs]
            flat = np.flatnonzero(both.ravel())
            if flat.shape[0]:
                rows = flat // width
                byte_pos = flat - rows * width
                bit_rows = np.unpackbits(
                    both.ravel()[flat, None], axis=1
                )
                hits = np.flatnonzero(bit_rows.ravel())
                rr = hits >> 3
                w = byte_pos[rr] * 8 + (hits & 7)
                keys = (us[rows[rr]] * n64 + vs[rows[rr]]) * n64 + w
                out_groups.append(
                    np.full(keys.shape[0], gids[which], dtype=np.int64)
                )
                out_keys.append(keys)
            scratch[us, vs] = False
            scratch[vs, us] = False
    else:
        for which, start in enumerate(start_list):
            end = bound_list[which]
            us, vs = uu[start:end], vv[start:end]
            vertices = np.unique(np.concatenate((us, vs)))
            size = int(vertices.shape[0])
            cu = np.searchsorted(vertices, us)
            cv = np.searchsorted(vertices, vs)
            local = np.zeros((size, size), dtype=bool)
            local[cu, cv] = True
            local[cv, cu] = True
            both = local[cu] & local[cv]
            both &= np.arange(size, dtype=np.int64)[None, :] > cv[:, None]
            flat = np.flatnonzero(both.ravel())
            if flat.shape[0]:
                rows = flat // size
                w = vertices[flat - rows * size]
                keys = (us[rows] * n64 + vs[rows]) * n64 + w
                out_groups.append(
                    np.full(keys.shape[0], gids[which], dtype=np.int64)
                )
                out_keys.append(keys)
    if not out_keys:
        return empty
    return np.concatenate(out_groups), np.concatenate(out_keys)


def _canonical_edges(
    indptr: np.ndarray, indices: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Derive the canonical edge arrays from sorted CSR rows."""
    num_nodes = indptr.shape[0] - 1
    if indices.shape[0] == 0:
        return _EMPTY_INT64.copy(), _EMPTY_INT64.copy()
    sources = np.repeat(
        np.arange(num_nodes, dtype=np.int64), indptr[1:] - indptr[:-1]
    )
    forward = indices > sources
    return (
        np.ascontiguousarray(sources[forward]),
        np.ascontiguousarray(indices[forward]),
    )
