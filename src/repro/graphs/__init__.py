"""Graph substrate: representation, generators, ground truth and IO.

This package provides everything the reproduction needs about graphs *as
global objects*: construction, synthetic workload generation, centralized
triangle ground truth, and serialisation.  Node programs running inside the
CONGEST simulator never see these objects — they only receive their local
view through :class:`repro.congest.node.NodeContext`.
"""

from .csr import CSRGraph
from .graph import Graph, InducedSubgraph, degree_histogram, is_connected
from .shm import (
    SharedArraySpec,
    SharedGraphHandle,
    SharedGraphOwner,
    attach_shared_graph,
    segment_exists,
    share_csr,
    shm_available,
)
from .generators import (
    barabasi_albert_graph,
    complete_graph,
    cycle_graph,
    empty_graph,
    gnp_random_graph,
    heavy_edge_gadget,
    lollipop_graph,
    planted_triangle_graph,
    random_regular_graph,
    triangle_free_bipartite,
    union_of_cliques,
)
from .triangles import (
    clustering_coefficient,
    count_triangles,
    delta_set_membership,
    edge_support,
    heaviness_threshold,
    heavy_edges,
    heavy_triangles,
    is_heavy_triangle,
    is_triangle_free,
    iter_triangles,
    iter_triangles_reference,
    light_triangles,
    list_triangles,
    local_triangle_count,
    pair_in_delta,
    rivin_edge_lower_bound,
    triangles_through_node,
)
from .io import (
    from_edge_list_string,
    read_edge_list,
    read_edge_stream,
    to_edge_list_string,
    write_edge_list,
)

__all__ = [
    "CSRGraph",
    "Graph",
    "InducedSubgraph",
    "SharedArraySpec",
    "SharedGraphHandle",
    "SharedGraphOwner",
    "attach_shared_graph",
    "segment_exists",
    "share_csr",
    "shm_available",
    "degree_histogram",
    "is_connected",
    "barabasi_albert_graph",
    "complete_graph",
    "cycle_graph",
    "empty_graph",
    "gnp_random_graph",
    "heavy_edge_gadget",
    "lollipop_graph",
    "planted_triangle_graph",
    "random_regular_graph",
    "triangle_free_bipartite",
    "union_of_cliques",
    "clustering_coefficient",
    "count_triangles",
    "delta_set_membership",
    "edge_support",
    "heaviness_threshold",
    "heavy_edges",
    "heavy_triangles",
    "is_heavy_triangle",
    "is_triangle_free",
    "iter_triangles",
    "iter_triangles_reference",
    "light_triangles",
    "list_triangles",
    "local_triangle_count",
    "pair_in_delta",
    "rivin_edge_lower_bound",
    "triangles_through_node",
    "from_edge_list_string",
    "read_edge_list",
    "read_edge_stream",
    "to_edge_list_string",
    "write_edge_list",
]
