"""Synthetic graph generators used as workloads.

The paper's statements are either worst-case (Theorems 1 and 2 hold for every
input graph) or random-graph based (Theorem 3 and Proposition 5 are proved on
``G(n, 1/2)``).  The experiment harness therefore needs generators that cover
the regimes the analysis distinguishes:

* dense and sparse Erdős–Rényi graphs (:func:`gnp_random_graph`) —
  the lower-bound distribution and the generic listing workload,
* graphs with *planted* triangles (:func:`planted_triangle_graph`) — the
  finding workload where a handful of triangles hide in an otherwise
  triangle-free graph,
* *heavy-edge gadgets* (:func:`heavy_edge_gadget`) — graphs where one edge is
  shared by many triangles, exercising the ε-heavy code path (Algorithms A1
  and A2),
* triangle-free graphs (:func:`triangle_free_bipartite`,
  :func:`cycle_graph`) — the "not found" branch of triangle finding and the
  triangle-freeness certification example,
* skewed-degree graphs (:func:`barabasi_albert_graph`) and regular graphs
  (:func:`random_regular_graph`) — realistic and adversarial degree
  distributions for the baselines whose cost is governed by ``d_max``.

Every generator takes an explicit ``seed`` (or ``rng``) so that experiments
are reproducible.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import GraphError
from ..types import NodeId
from .graph import Graph


def _resolve_rng(seed: Optional[int | np.random.Generator]) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a seed or pass one through."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def empty_graph(num_nodes: int) -> Graph:
    """Return the graph on ``num_nodes`` vertices with no edges."""
    return Graph(num_nodes)


def complete_graph(num_nodes: int) -> Graph:
    """Return the complete graph ``K_n``.

    ``K_n`` maximises both the triangle count (every triple is a triangle)
    and ``d_max``; it is the worst case for the naive 2-hop baseline.
    """
    graph = Graph(num_nodes)
    for u in range(num_nodes):
        for v in range(u + 1, num_nodes):
            graph.add_edge(u, v)
    return graph


def gnp_random_graph(
    num_nodes: int,
    edge_probability: float,
    seed: Optional[int | np.random.Generator] = None,
) -> Graph:
    """Return an Erdős–Rényi graph ``G(n, p)``.

    Each of the ``C(n, 2)`` possible edges is included independently with
    probability ``edge_probability``.  ``G(n, 1/2)`` is exactly the input
    distribution of the paper's lower-bound argument (Section 4).
    """
    if not 0.0 <= edge_probability <= 1.0:
        raise GraphError(
            f"edge_probability must lie in [0, 1], got {edge_probability}"
        )
    rng = _resolve_rng(seed)
    graph = Graph(num_nodes)
    if num_nodes < 2 or edge_probability == 0.0:
        return graph
    # Vectorised sampling of the upper triangle keeps generation fast for the
    # graph sizes the simulator targets (a few hundred nodes).
    upper_u, upper_v = np.triu_indices(num_nodes, k=1)
    mask = rng.random(upper_u.shape[0]) < edge_probability
    for u, v in zip(upper_u[mask].tolist(), upper_v[mask].tolist()):
        graph.add_edge(int(u), int(v))
    return graph


def triangle_free_bipartite(
    num_nodes: int,
    edge_probability: float = 0.5,
    seed: Optional[int | np.random.Generator] = None,
) -> Graph:
    """Return a random bipartite (hence triangle-free) graph.

    Vertices ``0 .. ⌈n/2⌉-1`` form one side and the rest the other; each
    cross pair becomes an edge independently with probability
    ``edge_probability``.  Used for the "not found" branch of triangle
    finding and for the triangle-freeness certification example.
    """
    if not 0.0 <= edge_probability <= 1.0:
        raise GraphError(
            f"edge_probability must lie in [0, 1], got {edge_probability}"
        )
    rng = _resolve_rng(seed)
    graph = Graph(num_nodes)
    split = (num_nodes + 1) // 2
    for u in range(split):
        for v in range(split, num_nodes):
            if rng.random() < edge_probability:
                graph.add_edge(u, v)
    return graph


def cycle_graph(num_nodes: int) -> Graph:
    """Return the cycle ``C_n`` (triangle-free for ``n != 3``)."""
    graph = Graph(num_nodes)
    if num_nodes < 3:
        if num_nodes == 2:
            graph.add_edge(0, 1)
        return graph
    for u in range(num_nodes):
        graph.add_edge(u, (u + 1) % num_nodes)
    return graph


def planted_triangle_graph(
    num_nodes: int,
    num_planted: int,
    background_probability: float = 0.0,
    seed: Optional[int | np.random.Generator] = None,
) -> Tuple[Graph, List[Tuple[int, int, int]]]:
    """Return a graph with ``num_planted`` vertex-disjoint planted triangles.

    The background is a triangle-free bipartite random graph over the
    remaining structure (edges inside each planted triple are always added).
    When ``background_probability`` is zero the planted triangles are exactly
    the triangles of the graph, which gives the finding experiments a sparse
    needle-in-a-haystack workload.

    Returns
    -------
    (graph, planted):
        The graph and the list of planted triangles in canonical order.
    """
    if num_planted < 0:
        raise GraphError(f"num_planted must be non-negative, got {num_planted}")
    if 3 * num_planted > num_nodes:
        raise GraphError(
            f"cannot plant {num_planted} vertex-disjoint triangles in "
            f"{num_nodes} vertices"
        )
    rng = _resolve_rng(seed)
    graph = triangle_free_bipartite(num_nodes, background_probability, rng)
    vertices = rng.permutation(num_nodes)
    planted: List[Tuple[int, int, int]] = []
    for index in range(num_planted):
        a, b, c = (
            int(vertices[3 * index]),
            int(vertices[3 * index + 1]),
            int(vertices[3 * index + 2]),
        )
        graph.add_edge(a, b)
        graph.add_edge(a, c)
        graph.add_edge(b, c)
        planted.append(tuple(sorted((a, b, c))))  # type: ignore[arg-type]
    return graph, sorted(planted)


def heavy_edge_gadget(
    num_nodes: int,
    support: int,
    background_probability: float = 0.0,
    seed: Optional[int | np.random.Generator] = None,
) -> Tuple[Graph, Tuple[int, int]]:
    """Return a graph in which one designated edge has support ``support``.

    Vertices 0 and 1 are joined by an edge, and ``support`` further vertices
    are adjacent to both — so the edge ``{0, 1}`` lies in exactly ``support``
    triangles (plus any created by the optional random background).  This is
    the canonical ε-heavy workload for Algorithms A1 and A2: the edge is
    ε-heavy whenever ``support >= n^ε``.

    Returns
    -------
    (graph, heavy_edge):
        The gadget graph and the designated heavy edge ``(0, 1)``.
    """
    if num_nodes < 2:
        raise GraphError("heavy_edge_gadget needs at least two vertices")
    if support < 0 or support > num_nodes - 2:
        raise GraphError(
            f"support must lie in [0, {num_nodes - 2}], got {support}"
        )
    rng = _resolve_rng(seed)
    graph = Graph(num_nodes)
    graph.add_edge(0, 1)
    for apex in range(2, 2 + support):
        graph.add_edge(0, apex)
        graph.add_edge(1, apex)
    if background_probability > 0.0:
        for u in range(2, num_nodes):
            for v in range(u + 1, num_nodes):
                if rng.random() < background_probability:
                    graph.add_edge(u, v)
    return graph, (0, 1)


def barabasi_albert_graph(
    num_nodes: int,
    attachment: int,
    seed: Optional[int | np.random.Generator] = None,
) -> Graph:
    """Return a preferential-attachment (Barabási–Albert style) graph.

    Starting from a clique on ``attachment + 1`` vertices, each new vertex
    attaches to ``attachment`` distinct existing vertices chosen with
    probability proportional to their degree.  The resulting skewed degree
    distribution and naturally occurring triangles make this the "synthetic
    social network" workload for the motif-census example.
    """
    if attachment < 1:
        raise GraphError(f"attachment must be at least 1, got {attachment}")
    if num_nodes < attachment + 1:
        raise GraphError(
            f"num_nodes must be at least attachment + 1 = {attachment + 1}, "
            f"got {num_nodes}"
        )
    rng = _resolve_rng(seed)
    graph = Graph(num_nodes)
    # Seed clique.
    for u in range(attachment + 1):
        for v in range(u + 1, attachment + 1):
            graph.add_edge(u, v)
    # Repeated-endpoint list implements preferential attachment.
    endpoints: List[int] = []
    for u in range(attachment + 1):
        endpoints.extend([u] * graph.degree(u))
    for new_vertex in range(attachment + 1, num_nodes):
        targets: set[int] = set()
        while len(targets) < attachment:
            choice = int(endpoints[int(rng.integers(0, len(endpoints)))])
            targets.add(choice)
        for target in targets:
            graph.add_edge(new_vertex, target)
            endpoints.append(target)
            endpoints.append(new_vertex)
    return graph


def random_regular_graph(
    num_nodes: int,
    degree: int,
    seed: Optional[int | np.random.Generator] = None,
    max_attempts: int = 200,
) -> Graph:
    """Return a random ``degree``-regular graph via the pairing model.

    The pairing (configuration) model is retried until it produces a simple
    graph; for the moderate degrees used in experiments this succeeds within
    a few attempts.

    Raises
    ------
    GraphError
        If ``num_nodes * degree`` is odd, ``degree >= num_nodes``, or no
        simple pairing is found within ``max_attempts`` attempts.
    """
    if degree < 0 or degree >= num_nodes:
        raise GraphError(
            f"degree must lie in [0, num_nodes), got degree={degree}, "
            f"num_nodes={num_nodes}"
        )
    if (num_nodes * degree) % 2 != 0:
        raise GraphError("num_nodes * degree must be even for a regular graph")
    rng = _resolve_rng(seed)
    if degree == 0:
        return Graph(num_nodes)
    stubs = np.repeat(np.arange(num_nodes), degree)
    for _ in range(max_attempts):
        permuted = rng.permutation(stubs)
        graph = Graph(num_nodes)
        simple = True
        for index in range(0, len(permuted), 2):
            u, v = int(permuted[index]), int(permuted[index + 1])
            if u == v or graph.has_edge(u, v):
                simple = False
                break
            graph.add_edge(u, v)
        if simple:
            return graph
    raise GraphError(
        f"failed to generate a simple {degree}-regular graph on "
        f"{num_nodes} vertices in {max_attempts} attempts"
    )


def lollipop_graph(clique_size: int, path_length: int) -> Graph:
    """Return a lollipop graph: a clique with a path attached.

    The clique supplies ``C(clique_size, 3)`` triangles concentrated in one
    region while the path keeps the diameter large — a useful sanity
    workload showing that the algorithms' cost is governed by congestion,
    not diameter.
    """
    if clique_size < 1 or path_length < 0:
        raise GraphError(
            "clique_size must be >= 1 and path_length >= 0, got "
            f"clique_size={clique_size}, path_length={path_length}"
        )
    num_nodes = clique_size + path_length
    graph = Graph(num_nodes)
    for u in range(clique_size):
        for v in range(u + 1, clique_size):
            graph.add_edge(u, v)
    previous = clique_size - 1
    for offset in range(path_length):
        current = clique_size + offset
        graph.add_edge(previous, current)
        previous = current
    return graph


def union_of_cliques(
    clique_sizes: Sequence[int],
) -> Graph:
    """Return a disjoint union of cliques of the given sizes.

    Every edge inside a clique of size ``s`` has support ``s - 2``, so by
    picking the sizes this generator produces graphs whose triangles are all
    heavy, all light, or a controlled mixture — the workload used by the
    heavy/light decomposition example and the ε ablation.
    """
    if any(size < 1 for size in clique_sizes):
        raise GraphError("all clique sizes must be positive")
    num_nodes = sum(clique_sizes)
    graph = Graph(num_nodes)
    offset = 0
    for size in clique_sizes:
        for u in range(offset, offset + size):
            for v in range(u + 1, offset + size):
                graph.add_edge(u, v)
        offset += size
    return graph
