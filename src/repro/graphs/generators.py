"""Synthetic graph generators used as workloads.

The paper's statements are either worst-case (Theorems 1 and 2 hold for every
input graph) or random-graph based (Theorem 3 and Proposition 5 are proved on
``G(n, 1/2)``).  The experiment harness therefore needs generators that cover
the regimes the analysis distinguishes:

* dense and sparse Erdős–Rényi graphs (:func:`gnp_random_graph`) —
  the lower-bound distribution and the generic listing workload,
* graphs with *planted* triangles (:func:`planted_triangle_graph`) — the
  finding workload where a handful of triangles hide in an otherwise
  triangle-free graph,
* *heavy-edge gadgets* (:func:`heavy_edge_gadget`) — graphs where one edge is
  shared by many triangles, exercising the ε-heavy code path (Algorithms A1
  and A2),
* triangle-free graphs (:func:`triangle_free_bipartite`,
  :func:`cycle_graph`) — the "not found" branch of triangle finding and the
  triangle-freeness certification example,
* skewed-degree graphs (:func:`barabasi_albert_graph`) and regular graphs
  (:func:`random_regular_graph`) — realistic and adversarial degree
  distributions for the baselines whose cost is governed by ``d_max``.

Every generator takes an explicit ``seed`` (or ``rng``) so that experiments
are reproducible.

All hot generators build their edge sets as numpy arrays and construct the
graph in one :meth:`~repro.graphs.graph.Graph.from_edge_arrays` bulk pass
(which also pre-populates the CSR view), so generation cost is dominated by
sampling, not per-edge Python calls.  ``G(n, p)`` picks between direct
upper-triangle masking (small instances, bit-for-bit the sampling order of
the original implementation) and geometric gap skipping (large sparse
instances, expected ``O(m)`` draws instead of ``O(n²)``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import GraphError
from .graph import Graph

#: Largest number of candidate pairs for which ``G(n, p)`` samples the whole
#: upper triangle directly (one uniform per pair); beyond this, geometric
#: gap skipping keeps memory and draws proportional to the edge count.
_GNP_DIRECT_MAX_PAIRS = 1 << 24


def _resolve_rng(seed: Optional[int | np.random.Generator]) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a seed or pass one through."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _complete_block_edges(start: int, size: int) -> Tuple[np.ndarray, np.ndarray]:
    """Return the edge arrays of a clique on vertices ``start .. start+size-1``."""
    upper_u, upper_v = np.triu_indices(size, k=1)
    return upper_u + start, upper_v + start


def empty_graph(num_nodes: int) -> Graph:
    """Return the graph on ``num_nodes`` vertices with no edges."""
    return Graph(num_nodes)


def complete_graph(num_nodes: int) -> Graph:
    """Return the complete graph ``K_n``.

    ``K_n`` maximises both the triangle count (every triple is a triangle)
    and ``d_max``; it is the worst case for the naive 2-hop baseline.
    """
    if num_nodes < 2:
        return Graph(num_nodes)
    u, v = _complete_block_edges(0, num_nodes)
    return Graph.from_edge_arrays(num_nodes, u, v, deduplicate=False)


def _linear_index_to_pair(
    positions: np.ndarray, num_nodes: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Decode row-major upper-triangle linear indices into ``(u, v)`` pairs."""
    row_lengths = np.arange(num_nodes - 1, 0, -1, dtype=np.int64)
    row_starts = np.zeros(num_nodes, dtype=np.int64)
    np.cumsum(row_lengths, out=row_starts[1:])
    u = np.searchsorted(row_starts, positions, side="right") - 1
    v = u + 1 + (positions - row_starts[u])
    return u, v


def _gnp_positions_by_skipping(
    total: int, edge_probability: float, rng: np.random.Generator
) -> np.ndarray:
    """Sample the included upper-triangle positions by geometric gaps.

    Standard sparse-G(n, p) trick: the gap to the next included pair is
    geometric with parameter ``p``, so only ``~ total * p`` draws are needed.
    """
    log_skip = np.log1p(-edge_probability)
    pieces: List[np.ndarray] = []
    current = -1
    while current < total:
        remaining = total - current
        batch = max(1024, int(remaining * edge_probability * 1.2) + 16)
        uniforms = np.maximum(rng.random(batch), 1e-300)
        gaps = (np.log(uniforms) // log_skip).astype(np.int64) + 1
        steps = np.cumsum(gaps) + current
        pieces.append(steps[steps < total])
        current = int(steps[-1])
    return np.concatenate(pieces)


def gnp_random_graph(
    num_nodes: int,
    edge_probability: float,
    seed: Optional[int | np.random.Generator] = None,
) -> Graph:
    """Return an Erdős–Rényi graph ``G(n, p)``.

    Each of the ``C(n, 2)`` possible edges is included independently with
    probability ``edge_probability``.  ``G(n, 1/2)`` is exactly the input
    distribution of the paper's lower-bound argument (Section 4).
    """
    if not 0.0 <= edge_probability <= 1.0:
        raise GraphError(
            f"edge_probability must lie in [0, 1], got {edge_probability}"
        )
    rng = _resolve_rng(seed)
    if num_nodes < 2 or edge_probability == 0.0:
        return Graph(num_nodes)
    if edge_probability == 1.0:
        return complete_graph(num_nodes)
    total = num_nodes * (num_nodes - 1) // 2
    if total <= _GNP_DIRECT_MAX_PAIRS:
        positions = np.flatnonzero(rng.random(total) < edge_probability)
    else:
        positions = _gnp_positions_by_skipping(total, edge_probability, rng)
    if positions.shape[0] == 0:
        return Graph(num_nodes)
    u, v = _linear_index_to_pair(positions, num_nodes)
    return Graph.from_edge_arrays(num_nodes, u, v, deduplicate=False)


def triangle_free_bipartite(
    num_nodes: int,
    edge_probability: float = 0.5,
    seed: Optional[int | np.random.Generator] = None,
) -> Graph:
    """Return a random bipartite (hence triangle-free) graph.

    Vertices ``0 .. ⌈n/2⌉-1`` form one side and the rest the other; each
    cross pair becomes an edge independently with probability
    ``edge_probability``.  Used for the "not found" branch of triangle
    finding and for the triangle-freeness certification example.
    """
    if not 0.0 <= edge_probability <= 1.0:
        raise GraphError(
            f"edge_probability must lie in [0, 1], got {edge_probability}"
        )
    rng = _resolve_rng(seed)
    split = (num_nodes + 1) // 2
    other = num_nodes - split
    if split == 0 or other == 0 or edge_probability == 0.0:
        return Graph(num_nodes)
    mask = rng.random((split, other)) < edge_probability
    u, col = np.nonzero(mask)
    if u.shape[0] == 0:
        return Graph(num_nodes)
    return Graph.from_edge_arrays(num_nodes, u, col + split, deduplicate=False)


def cycle_graph(num_nodes: int) -> Graph:
    """Return the cycle ``C_n`` (triangle-free for ``n != 3``)."""
    if num_nodes < 3:
        graph = Graph(num_nodes)
        if num_nodes == 2:
            graph.add_edge(0, 1)
        return graph
    u = np.arange(num_nodes, dtype=np.int64)
    return Graph.from_edge_arrays(num_nodes, u, (u + 1) % num_nodes, deduplicate=False)


def planted_triangle_graph(
    num_nodes: int,
    num_planted: int,
    background_probability: float = 0.0,
    seed: Optional[int | np.random.Generator] = None,
) -> Tuple[Graph, List[Tuple[int, int, int]]]:
    """Return a graph with ``num_planted`` vertex-disjoint planted triangles.

    The background is a triangle-free bipartite random graph over the
    remaining structure (edges inside each planted triple are always added).
    When ``background_probability`` is zero the planted triangles are exactly
    the triangles of the graph, which gives the finding experiments a sparse
    needle-in-a-haystack workload.

    Returns
    -------
    (graph, planted):
        The graph and the list of planted triangles in canonical order.
    """
    if num_planted < 0:
        raise GraphError(f"num_planted must be non-negative, got {num_planted}")
    if 3 * num_planted > num_nodes:
        raise GraphError(
            f"cannot plant {num_planted} vertex-disjoint triangles in "
            f"{num_nodes} vertices"
        )
    rng = _resolve_rng(seed)
    graph = triangle_free_bipartite(num_nodes, background_probability, rng)
    vertices = rng.permutation(num_nodes)
    planted: List[Tuple[int, int, int]] = []
    for index in range(num_planted):
        a, b, c = (
            int(vertices[3 * index]),
            int(vertices[3 * index + 1]),
            int(vertices[3 * index + 2]),
        )
        graph.add_edge(a, b)
        graph.add_edge(a, c)
        graph.add_edge(b, c)
        planted.append(tuple(sorted((a, b, c))))  # type: ignore[arg-type]
    return graph, sorted(planted)


def heavy_edge_gadget(
    num_nodes: int,
    support: int,
    background_probability: float = 0.0,
    seed: Optional[int | np.random.Generator] = None,
) -> Tuple[Graph, Tuple[int, int]]:
    """Return a graph in which one designated edge has support ``support``.

    Vertices 0 and 1 are joined by an edge, and ``support`` further vertices
    are adjacent to both — so the edge ``{0, 1}`` lies in exactly ``support``
    triangles (plus any created by the optional random background).  This is
    the canonical ε-heavy workload for Algorithms A1 and A2: the edge is
    ε-heavy whenever ``support >= n^ε``.

    Returns
    -------
    (graph, heavy_edge):
        The gadget graph and the designated heavy edge ``(0, 1)``.
    """
    if num_nodes < 2:
        raise GraphError("heavy_edge_gadget needs at least two vertices")
    if support < 0 or support > num_nodes - 2:
        raise GraphError(
            f"support must lie in [0, {num_nodes - 2}], got {support}"
        )
    rng = _resolve_rng(seed)
    apexes = np.arange(2, 2 + support, dtype=np.int64)
    u_parts = [np.array([0], dtype=np.int64), np.zeros(support, dtype=np.int64),
               np.ones(support, dtype=np.int64)]
    v_parts = [np.array([1], dtype=np.int64), apexes, apexes]
    if background_probability > 0.0 and num_nodes > 3:
        rest = num_nodes - 2
        mask = rng.random(rest * (rest - 1) // 2) < background_probability
        positions = np.flatnonzero(mask)
        if positions.shape[0]:
            bu, bv = _linear_index_to_pair(positions, rest)
            u_parts.append(bu + 2)
            v_parts.append(bv + 2)
    graph = Graph.from_edge_arrays(
        num_nodes, np.concatenate(u_parts), np.concatenate(v_parts)
    )
    return graph, (0, 1)


def barabasi_albert_graph(
    num_nodes: int,
    attachment: int,
    seed: Optional[int | np.random.Generator] = None,
) -> Graph:
    """Return a preferential-attachment (Barabási–Albert style) graph.

    Starting from a clique on ``attachment + 1`` vertices, each new vertex
    attaches to ``attachment`` distinct existing vertices chosen with
    probability proportional to their degree.  The resulting skewed degree
    distribution and naturally occurring triangles make this the "synthetic
    social network" workload for the motif-census example.

    The repeated-endpoint list implementing preferential attachment lives in
    one pre-sized numpy buffer; each arriving vertex draws candidate batches
    from the filled prefix until it holds ``attachment`` distinct targets
    (first-drawn order, as in the sequential formulation).
    """
    if attachment < 1:
        raise GraphError(f"attachment must be at least 1, got {attachment}")
    if num_nodes < attachment + 1:
        raise GraphError(
            f"num_nodes must be at least attachment + 1 = {attachment + 1}, "
            f"got {num_nodes}"
        )
    rng = _resolve_rng(seed)
    clique_size = attachment + 1
    clique_u, clique_v = _complete_block_edges(0, clique_size)
    num_new = num_nodes - clique_size
    total_edges = clique_u.shape[0] + num_new * attachment
    endpoints = np.empty(2 * total_edges, dtype=np.int64)
    filled = 2 * clique_u.shape[0]
    endpoints[0 : filled : 2] = clique_u
    endpoints[1 : filled : 2] = clique_v
    new_sources = np.repeat(
        np.arange(clique_size, num_nodes, dtype=np.int64), attachment
    )
    new_targets = np.empty(num_new * attachment, dtype=np.int64)
    write = 0
    for new_vertex in range(clique_size, num_nodes):
        chosen: List[int] = []
        while len(chosen) < attachment:
            draws = endpoints[
                rng.integers(0, filled, size=max(2 * attachment, 8))
            ]
            # np.unique sorts, so recover first-drawn order via the index of
            # each value's first occurrence.
            _, first_positions = np.unique(draws, return_index=True)
            fresh = draws[np.sort(first_positions)]
            if chosen:
                fresh = fresh[~np.isin(fresh, np.array(chosen, dtype=np.int64))]
            chosen.extend(fresh.tolist()[: attachment - len(chosen)])
        targets = np.array(chosen, dtype=np.int64)
        new_targets[write : write + attachment] = targets
        endpoints[filled : filled + 2 * attachment : 2] = targets
        endpoints[filled + 1 : filled + 2 * attachment : 2] = new_vertex
        filled += 2 * attachment
        write += attachment
    return Graph.from_edge_arrays(
        num_nodes,
        np.concatenate((clique_u, new_sources)),
        np.concatenate((clique_v, new_targets)),
        deduplicate=False,
    )


def random_regular_graph(
    num_nodes: int,
    degree: int,
    seed: Optional[int | np.random.Generator] = None,
    max_attempts: int = 200,
) -> Graph:
    """Return a random ``degree``-regular graph via the pairing model.

    The pairing (configuration) model is retried until it produces a simple
    graph; for the moderate degrees used in experiments this succeeds within
    a few attempts.  Validity of a pairing (no self-loops, no parallel
    edges) is checked with array reductions on the whole stub permutation.

    Raises
    ------
    GraphError
        If ``num_nodes * degree`` is odd, ``degree >= num_nodes``, or no
        simple pairing is found within ``max_attempts`` attempts.
    """
    if degree < 0 or degree >= num_nodes:
        raise GraphError(
            f"degree must lie in [0, num_nodes), got degree={degree}, "
            f"num_nodes={num_nodes}"
        )
    if (num_nodes * degree) % 2 != 0:
        raise GraphError("num_nodes * degree must be even for a regular graph")
    rng = _resolve_rng(seed)
    if degree == 0:
        return Graph(num_nodes)
    stubs = np.repeat(np.arange(num_nodes), degree)
    for _ in range(max_attempts):
        permuted = rng.permutation(stubs)
        u = permuted[0::2]
        v = permuted[1::2]
        if (u == v).any():
            continue
        keys = np.minimum(u, v) * np.int64(num_nodes) + np.maximum(u, v)
        if np.unique(keys).shape[0] != keys.shape[0]:
            continue
        return Graph.from_edge_arrays(num_nodes, u, v, deduplicate=False)
    raise GraphError(
        f"failed to generate a simple {degree}-regular graph on "
        f"{num_nodes} vertices in {max_attempts} attempts"
    )


def lollipop_graph(clique_size: int, path_length: int) -> Graph:
    """Return a lollipop graph: a clique with a path attached.

    The clique supplies ``C(clique_size, 3)`` triangles concentrated in one
    region while the path keeps the diameter large — a useful sanity
    workload showing that the algorithms' cost is governed by congestion,
    not diameter.
    """
    if clique_size < 1 or path_length < 0:
        raise GraphError(
            "clique_size must be >= 1 and path_length >= 0, got "
            f"clique_size={clique_size}, path_length={path_length}"
        )
    num_nodes = clique_size + path_length
    clique_u, clique_v = _complete_block_edges(0, clique_size)
    path_u = np.arange(clique_size - 1, num_nodes - 1, dtype=np.int64)
    path_v = path_u + 1
    if path_u.shape[0] and clique_size >= 1:
        u = np.concatenate((clique_u, path_u))
        v = np.concatenate((clique_v, path_v))
    else:
        u, v = clique_u, clique_v
    if u.shape[0] == 0:
        return Graph(num_nodes)
    return Graph.from_edge_arrays(num_nodes, u, v, deduplicate=False)


def union_of_cliques(
    clique_sizes: Sequence[int],
) -> Graph:
    """Return a disjoint union of cliques of the given sizes.

    Every edge inside a clique of size ``s`` has support ``s - 2``, so by
    picking the sizes this generator produces graphs whose triangles are all
    heavy, all light, or a controlled mixture — the workload used by the
    heavy/light decomposition example and the ε ablation.
    """
    if any(size < 1 for size in clique_sizes):
        raise GraphError("all clique sizes must be positive")
    num_nodes = sum(clique_sizes)
    u_parts: List[np.ndarray] = []
    v_parts: List[np.ndarray] = []
    offset = 0
    for size in clique_sizes:
        if size >= 2:
            block_u, block_v = _complete_block_edges(offset, size)
            u_parts.append(block_u)
            v_parts.append(block_v)
        offset += size
    if not u_parts:
        return Graph(num_nodes)
    return Graph.from_edge_arrays(
        num_nodes,
        np.concatenate(u_parts),
        np.concatenate(v_parts),
        deduplicate=False,
    )
