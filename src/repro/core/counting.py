"""Distributed triangle counting (an extension beyond the paper's problems).

The paper distinguishes finding, listing and — in its discussion of the
Censor-Hillel et al. clique algorithm — *counting*.  Theorem 3 even notes
that its lower bound makes listing provably harder than counting on the
clique.  The paper itself does not give a CONGEST counting algorithm; this
module provides the natural one as an extension, built entirely from the
substrates already in the repository:

1. every node counts the triangles through itself from its 2-hop view
   (the same exchange as the naive baseline, ``Θ(d_max)`` rounds),
2. the per-node counts are summed by a convergecast over a BFS tree
   (``O(D)`` rounds) and divided by three (each triangle is counted at each
   of its three vertices),
3. optionally, the total is pushed back down the tree so every node learns
   it (another ``O(D)`` rounds).

The round complexity is ``O(d_max + D)`` — linear in the worst case, like
the naive baseline, but the point of the extension is the exact global
aggregate with honest round accounting, not sublinearity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

import numpy as np

from ..congest.aggregation import broadcast_from_root, build_bfs_tree, convergecast_sum
from ..congest.metrics import AlgorithmCost
from ..congest.node import NodeContext
from ..congest.simulator import CongestSimulator
from ..congest.wire import id_bits
from ..errors import SimulationError
from ..graphs.graph import Graph
from ..types import NodeId


@dataclass(frozen=True)
class CountingResult:
    """Result of a distributed triangle-counting run."""

    total_triangles: int
    per_node_counts: Dict[NodeId, int]
    cost: AlgorithmCost
    root: NodeId
    disseminated: bool

    @property
    def rounds(self) -> int:
        """The measured round complexity of the run."""
        return self.cost.rounds

    def summary(self) -> str:
        """Return a one-line human-readable summary."""
        return (
            f"triangle-counting: total={self.total_triangles}, "
            f"rounds={self.cost.rounds}, root={self.root}"
            + (", disseminated" if self.disseminated else "")
        )

    def to_dict(self) -> Dict[str, Any]:
        """Return a JSON-ready dictionary (inverse of :meth:`from_dict`)."""
        return {
            "total_triangles": self.total_triangles,
            "per_node_counts": {
                str(node): count
                for node, count in sorted(self.per_node_counts.items())
            },
            "cost": self.cost.to_dict(),
            "root": self.root,
            "disseminated": self.disseminated,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CountingResult":
        """Rebuild a counting result from :meth:`to_dict` output."""
        return cls(
            total_triangles=int(payload["total_triangles"]),
            per_node_counts={
                int(node): int(count)
                for node, count in payload["per_node_counts"].items()
            },
            cost=AlgorithmCost.from_dict(payload["cost"]),
            root=int(payload["root"]),
            disseminated=bool(payload["disseminated"]),
        )


class TriangleCounting:
    """Exact distributed triangle counting via 2-hop counts + convergecast.

    Parameters
    ----------
    root:
        The node at which the global count is aggregated.
    disseminate:
        When ``True`` the total is broadcast back down the BFS tree so every
        node ends up knowing it (costs another ``O(D)`` rounds).
    """

    name = "triangle-counting"
    model = "CONGEST"

    def __init__(self, root: NodeId = 0, disseminate: bool = False) -> None:
        self._root = root
        self._disseminate = disseminate

    def describe_parameters(self) -> Dict[str, Any]:
        return {"root": self._root, "disseminate": self._disseminate}

    def run(
        self, graph: Graph, seed: Optional[int | np.random.Generator] = None
    ) -> CountingResult:
        """Run the counting protocol on ``graph`` and return the result.

        Raises
        ------
        SimulationError
            If the graph is disconnected (a spanning tree from the root does
            not reach every node, so a correct global count cannot be
            aggregated).
        """
        simulator = CongestSimulator(graph, seed=seed)

        # Phase 1: 2-hop exchange; each node counts its own triangles.
        def send_neighborhood(context: NodeContext) -> None:
            neighbors = context.sorted_neighbors()
            if not neighbors:
                context.state["local_triangles"] = 0
                return
            bits = len(neighbors) * id_bits(context.num_nodes)
            context.broadcast(("N", tuple(neighbors)), bits=bits)

        simulator.for_each_node(send_neighborhood)
        simulator.run_phase("counting:exchange-neighbourhoods")

        def count_local(context: NodeContext) -> None:
            own_neighbors = context.neighbors
            incidences = 0
            for sender, payload in context.received():
                _, sender_neighbors = payload
                for third in sender_neighbors:
                    if third == context.node_id or third == sender:
                        continue
                    if third in own_neighbors:
                        incidences += 1
            # Each triangle {i, j, k} through this node i is seen twice in
            # the loop above (once via j's list containing k, once via k's
            # list containing j).
            context.state["local_triangles"] = incidences // 2

        simulator.for_each_node(count_local)

        # Phase 2: aggregate over a BFS tree.
        tree = build_bfs_tree(simulator, root=self._root)
        if len(tree) != graph.num_nodes:
            raise SimulationError(
                "triangle counting requires a connected network: the BFS tree "
                f"reached only {len(tree)} of {graph.num_nodes} nodes"
            )
        triple_counted = convergecast_sum(
            simulator, lambda ctx: ctx.state["local_triangles"], root=self._root
        )
        total = triple_counted // 3

        if self._disseminate:
            broadcast_from_root(simulator, total, root=self._root)

        per_node = {
            ctx.node_id: int(ctx.state.get("local_triangles", 0))
            for ctx in simulator.contexts
        }
        return CountingResult(
            total_triangles=total,
            per_node_counts=per_node,
            cost=AlgorithmCost.from_metrics(simulator.metrics),
            root=self._root,
            disseminated=self._disseminate,
        )
