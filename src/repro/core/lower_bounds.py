"""Lower-bound machinery: Theorem 3, Proposition 5, Lemmas 4 and 5.

The paper's lower bounds are information-theoretic: on the input
distribution ``G(n, 1/2)``, the node ``w(T)`` that outputs the most
triangles must "know" the ``Ω(n^{4/3})`` edges its output covers (Lemma 5 +
Rivin's Lemma 4), yet it can receive only ``O(n log n)`` bits per round,
hence ``Ω(n^{1/3}/log n)`` rounds are necessary — even on the congested
clique.  For *local* listing (each node outputs its own triangles) the
covered-edge count jumps to ``Ω(n^2)`` and the floor becomes
``Ω(n/log n)`` (Proposition 5).

This module provides both the closed-form floors (as concrete numbers, with
the paper's explicit constants, for a given ``n`` and bandwidth policy) and
an *empirical accounting harness*: given a measured run of any listing
algorithm on a ``G(n, 1/2)`` instance, it extracts ``w(T)``, measures
``|P(T_{w(T)})|``, verifies Rivin's inequality, converts the covered-edge
count into an information floor and checks that the measured round count
respects it.  The benchmark `bench_lower_bound.py` (experiment ``S-LB``)
reports these quantities side by side.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..congest.bandwidth import DEFAULT_BANDWIDTH, BandwidthPolicy
from ..errors import AnalysisError
from ..graphs.graph import Graph
from ..graphs.triangles import rivin_edge_lower_bound
from ..types import edges_of_triangles
from .output import AlgorithmResult

#: The probability-mass constant ``1/15 - 1/32`` appearing in the proofs of
#: Theorem 3 and Proposition 5.
PROBABILITY_MARGIN = 1.0 / 15.0 - 1.0 / 32.0


def expected_triangles_gnp_half(num_nodes: int) -> float:
    """Return ``N/8``: the expected number of triangles of ``G(n, 1/2)``.

    ``N = C(n, 3)`` is the number of vertex triples; each is a triangle with
    probability ``1/8``.
    """
    n = num_nodes
    return n * (n - 1) * (n - 2) / 6.0 / 8.0


def theorem3_information_bound(num_nodes: int) -> float:
    """Return Theorem 3's mutual-information floor ``I(E; T_{w(T)})`` in bits.

    Following the proof: with probability at least ``1/15 - 1/32`` the node
    ``w(T)`` outputs at least ``N/(16n)`` triangles, whose edge cover by
    Lemma 4 has size at least ``(sqrt(2)/3)(N/(16n))^{2/3}``; the mutual
    information is at least that expectation (Lemma 5).
    """
    if num_nodes < 3:
        return 0.0
    triples = num_nodes * (num_nodes - 1) * (num_nodes - 2) / 6.0
    per_node_quota = triples / (16.0 * num_nodes)
    return rivin_edge_lower_bound_float(per_node_quota) * PROBABILITY_MARGIN


def rivin_edge_lower_bound_float(num_triangles: float) -> float:
    """Real-valued version of Lemma 4's bound ``(sqrt(2)/3) t^{2/3}``."""
    if num_triangles <= 0:
        return 0.0
    return (math.sqrt(2.0) / 3.0) * num_triangles ** (2.0 / 3.0)


def proposition5_information_bound(num_nodes: int) -> float:
    """Return Proposition 5's per-node information floor ``(M/16)(1/15 - 1/32)``.

    ``M = C(n, 2)``; for local listing, node ``i`` must cover all edges of
    the triangles through ``i``, which with constant probability number at
    least ``M/16``.
    """
    if num_nodes < 2:
        return 0.0
    pairs = num_nodes * (num_nodes - 1) / 2.0
    return (pairs / 16.0) * PROBABILITY_MARGIN


def node_receive_capacity_bits(
    num_nodes: int, bandwidth: BandwidthPolicy = DEFAULT_BANDWIDTH
) -> int:
    """Return how many bits a single node can receive per round.

    In both the CONGEST and the CONGEST clique model a node has at most
    ``n - 1`` incoming links, each carrying the per-round bandwidth.  This is
    the ``O(n log n)`` factor of the round lower bounds.
    """
    if num_nodes < 2:
        return bandwidth.bits_per_round(max(1, num_nodes))
    return (num_nodes - 1) * bandwidth.bits_per_round(num_nodes)


def initial_knowledge_bits(num_nodes: int) -> float:
    """Return the entropy bound ``H(ρ_i) <= n - 1`` of a node's initial state.

    Under ``G(n, 1/2)`` each incident pair is one unbiased bit, hence at most
    ``n - 1`` bits of initial knowledge (Inequality (5) of the paper).
    """
    return max(0.0, float(num_nodes - 1))


def theorem3_round_lower_bound(
    num_nodes: int, bandwidth: BandwidthPolicy = DEFAULT_BANDWIDTH
) -> float:
    """Return the concrete Theorem-3 round floor for an n-node network.

    Rounds ≥ (information floor − initial knowledge) / per-round receive
    capacity.  Asymptotically this is ``Ω(n^{1/3}/log n)``; the function
    returns the constant-explicit value used by the benchmark tables
    (clamped at 0 for the small ``n`` where the constants swallow the bound).
    """
    capacity = node_receive_capacity_bits(num_nodes, bandwidth)
    if capacity <= 0:
        raise AnalysisError("per-round receive capacity must be positive")
    information = theorem3_information_bound(num_nodes) - initial_knowledge_bits(num_nodes)
    return max(0.0, information / capacity)


def proposition5_round_lower_bound(
    num_nodes: int, bandwidth: BandwidthPolicy = DEFAULT_BANDWIDTH
) -> float:
    """Return the concrete Proposition-5 round floor for local listing."""
    capacity = node_receive_capacity_bits(num_nodes, bandwidth)
    if capacity <= 0:
        raise AnalysisError("per-round receive capacity must be positive")
    information = proposition5_information_bound(num_nodes) - initial_knowledge_bits(num_nodes)
    return max(0.0, information / capacity)


def theorem3_asymptotic_curve(num_nodes: int) -> float:
    """Return the reference curve ``n^{1/3} / log2 n`` (constants dropped)."""
    n = float(max(2, num_nodes))
    return n ** (1.0 / 3.0) / math.log2(n)


def proposition5_asymptotic_curve(num_nodes: int) -> float:
    """Return the reference curve ``n / log2 n`` (constants dropped)."""
    n = float(max(2, num_nodes))
    return n / math.log2(n)


@dataclass(frozen=True)
class InformationAccounting:
    """Empirical lower-bound accounting of one measured listing run."""

    num_nodes: int
    busiest_node: Optional[int]
    busiest_output_size: int
    covered_edges: int
    rivin_floor: float
    information_floor_bits: float
    round_floor: float
    measured_rounds: int
    measured_bits_received_by_busiest: int
    respects_floor: bool
    rivin_holds: bool

    def summary(self) -> str:
        """Return a human-readable multi-line summary."""
        return "\n".join(
            [
                f"busiest node w(T):            {self.busiest_node}",
                f"|T_w| (triangles output):     {self.busiest_output_size}",
                f"|P(T_w)| (edges covered):     {self.covered_edges}",
                f"Rivin floor on |P(T_w)|:      {self.rivin_floor:.1f}"
                f" ({'holds' if self.rivin_holds else 'VIOLATED'})",
                f"information floor (bits):     {self.information_floor_bits:.1f}",
                f"round floor:                  {self.round_floor:.2f}",
                f"measured rounds:              {self.measured_rounds}"
                f" ({'respects floor' if self.respects_floor else 'BELOW FLOOR'})",
            ]
        )


def account_information(
    result: AlgorithmResult,
    graph: Graph,
    bandwidth: BandwidthPolicy = DEFAULT_BANDWIDTH,
) -> InformationAccounting:
    """Perform the Lemma-5 / Theorem-3 accounting on a measured run.

    The function extracts ``w(T)`` from the run's output, measures the edge
    cover ``P(T_{w(T)})``, checks Rivin's inequality (Lemma 4) on it,
    converts the cover size into an information floor (Lemma 5: the mutual
    information, and hence the expected transcript length, is at least
    ``|P(T_{w(T)})|`` bits up to the initial-knowledge correction) and
    derives the implied round floor for this particular run.  Because the
    derivation is per-run rather than in expectation, it is a *consistency
    check* — every correct execution must sit above its own floor — not a
    re-proof of the theorem.
    """
    num_nodes = graph.num_nodes
    busiest = result.output.busiest_node()
    if busiest is None:
        busiest_size = 0
        covered = 0
    else:
        triangles = result.output.node_output(busiest)
        busiest_size = len(triangles)
        covered = len(edges_of_triangles(triangles))
    rivin_floor = rivin_edge_lower_bound(busiest_size)
    information_floor = max(0.0, covered - initial_knowledge_bits(num_nodes))
    capacity = node_receive_capacity_bits(num_nodes, bandwidth)
    round_floor = information_floor / capacity if capacity else 0.0
    measured_bits = (
        result.metrics.bits_received_per_node.get(busiest, 0) if busiest is not None else 0
    )
    return InformationAccounting(
        num_nodes=num_nodes,
        busiest_node=busiest,
        busiest_output_size=busiest_size,
        covered_edges=covered,
        rivin_floor=rivin_floor,
        information_floor_bits=information_floor,
        round_floor=round_floor,
        measured_rounds=result.cost.rounds,
        measured_bits_received_by_busiest=measured_bits,
        respects_floor=result.cost.rounds >= math.floor(round_floor),
        rivin_holds=covered >= rivin_floor - 1e-9,
    )
