"""The Dolev–Lenzen–Peled triangle-listing baseline for the CONGEST clique.

Table 1's first row: "Tri, tri again" (Dolev et al., DISC 2012) lists all
triangles on the congested clique deterministically in
``O(n^{1/3} (log n)^{2/3})`` rounds.  The algorithm:

1. Partition the vertex set into ``k = ⌈n^{1/3}⌉`` groups of (almost) equal
   size, by identifier ranges (every node can compute the partition locally
   from ``n``).
2. Assign to each node one (or a few) of the ``C(k+2, 3)`` unordered group
   triples ``{A, B, C}`` (with repetition), again by a fixed rule computable
   from identifiers alone.
3. Every node forwards each of its incident edges to every node responsible
   for a triple containing both endpoint groups, using Lenzen's routing
   primitive (each message is one edge = ``O(log n)`` bits).
4. Each responsible node locally lists the triangles whose three edges it
   received and whose vertex-group multiset equals its assigned triple.

With ``k = n^{1/3}`` there are about ``n/6`` triples, each node receives
``O(n^{4/3})`` bits of edges, and Lenzen routing delivers the whole exchange
in ``O(n^{1/3})`` rounds — sublinear, and strictly cheaper than what any
CONGEST (non-clique) algorithm can do for listing given the paper's
``Ω(n^{1/3}/log n)`` clique lower bound (Theorem 3).
"""

from __future__ import annotations

import math
from itertools import combinations_with_replacement
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..congest.backends import use_backend, validate_backend, validate_chunk_bytes
from ..congest.clique import CliqueSimulator
from ..congest.metrics import AlgorithmCost
from ..congest.node import emit_grouped_keys
from ..congest.routing import LenzenRouter, RoutingRequest
from ..congest.wire import RoutedEdgeSchema, edge_bits
from ..errors import ProtocolError
from ..graphs.csr import triangles_by_group
from ..graphs.graph import Graph
from ..types import Edge, Triangle, decode_triangle_keys, make_edge, make_triangle
from .base import validate_kernel
from .output import AlgorithmResult, TriangleOutput


def partition_into_groups(num_nodes: int, num_groups: int) -> List[int]:
    """Return the group index of every node under the balanced id-range partition.

    Node ``v`` belongs to group ``⌊v · num_groups / n⌋`` (clamped), which
    every node can evaluate locally — no communication is needed to agree on
    the partition.
    """
    if num_groups < 1:
        raise ValueError(f"num_groups must be positive, got {num_groups}")
    return [
        min(num_groups - 1, (node * num_groups) // max(1, num_nodes))
        for node in range(num_nodes)
    ]


def group_triples(num_groups: int) -> List[Tuple[int, int, int]]:
    """Return all unordered group triples (with repetition), sorted.

    A triangle whose vertices lie in groups ``a <= b <= c`` is the
    responsibility of the node assigned the triple ``(a, b, c)``; allowing
    repetition covers triangles with two or three vertices in one group.
    """
    return list(combinations_with_replacement(range(num_groups), 3))


def responsible_node(triple_index: int, num_nodes: int) -> int:
    """Return the node responsible for the ``triple_index``-th group triple.

    Triples are assigned round-robin by index; with ``k = ⌈n^{1/3}⌉`` there
    are at most ``(k+2)^3/6 ≈ n/6`` triples so each node is responsible for
    O(1) triples.
    """
    return triple_index % num_nodes


class DolevCliqueListing:
    """Deterministic triangle listing on the congested clique (Dolev et al.).

    Parameters
    ----------
    group_count:
        Number of groups ``k``; ``None`` selects ``⌈n^{1/3}⌉`` as the
        original analysis does.
    routing_constant:
        Constant-round factor of the Lenzen routing primitive.
    kernel:
        ``"batched"`` (default) builds the routing instance as array
        programs over the canonical CSR edge arrays, routes it through the
        typed columnar plane on the direct-exchange path, and lists every
        responsible node's edges with one grouped oracle call over the
        delivered channel columns; ``"pernode"`` keeps the previous
        batched generation's per-node inbox views and listing loops;
        ``"reference"`` builds per-message
        :class:`~repro.congest.routing.RoutingRequest` objects.  Identical
        executions on every path.
    """

    name = "Dolev-clique-listing"
    model = "CONGEST clique"

    def __init__(
        self,
        group_count: Optional[int] = None,
        routing_constant: int = 2,
        kernel: str = "batched",
        backend: str = "numpy",
        chunk_bytes: Optional[int] = None,
    ) -> None:
        if group_count is not None and group_count < 1:
            raise ProtocolError(
                f"group_count must be at least 1 (or None for the "
                f"⌈n^(1/3)⌉ choice), got {group_count}"
            )
        if routing_constant < 1:
            raise ProtocolError(
                f"routing_constant must be at least 1, got {routing_constant}"
            )
        self._group_count = group_count
        self._routing_constant = routing_constant
        self._kernel = validate_kernel(kernel)
        self._backend = validate_backend(backend)
        self._chunk_bytes = validate_chunk_bytes(chunk_bytes)

    def describe_parameters(self) -> Dict[str, Any]:
        return {
            "group_count": self._group_count,
            "routing_constant": self._routing_constant,
            "kernel": self._kernel,
            "backend": self._backend,
            "chunk_bytes": self._chunk_bytes,
        }

    def run(
        self, graph: Graph, seed: Optional[int | np.random.Generator] = None
    ) -> AlgorithmResult:
        """Run the clique listing algorithm and return the packaged result."""
        with use_backend(self._backend, self._chunk_bytes):
            return self._run(graph, seed)

    def _run(
        self, graph: Graph, seed: Optional[int | np.random.Generator] = None
    ) -> AlgorithmResult:
        num_nodes = graph.num_nodes
        simulator = CliqueSimulator(graph, seed=seed)
        router = LenzenRouter(simulator, constant_rounds=self._routing_constant)

        group_count = (
            self._group_count
            if self._group_count is not None
            else max(1, math.ceil(num_nodes ** (1.0 / 3.0)))
        )
        groups = partition_into_groups(num_nodes, group_count)
        triples = group_triples(group_count)
        triple_owner = {
            triple: responsible_node(index, num_nodes)
            for index, triple in enumerate(triples)
        }
        # Pre-index: for every unordered pair of groups, the triples that
        # contain both (as a multiset).  An edge between those groups must be
        # routed to each owner of such a triple.
        pair_to_triples: Dict[Tuple[int, int], List[Tuple[int, int, int]]] = {}
        for triple in triples:
            for first in range(3):
                for second in range(first + 1, 3):
                    pair = tuple(sorted((triple[first], triple[second])))
                    bucket = pair_to_triples.setdefault(pair, [])
                    if triple not in bucket:
                        bucket.append(triple)

        if self._kernel == "batched":
            self._execute_direct(
                graph, simulator, router, groups, triples, triple_owner, pair_to_triples
            )
        elif self._kernel == "pernode":
            self._route_pernode(
                graph, simulator, router, groups, triples, triple_owner, pair_to_triples
            )
            self._list_pernode(simulator, groups, triples)
        else:
            self._route_reference(
                graph, simulator, router, groups, triple_owner, pair_to_triples
            )
            self._list_reference(simulator, groups)

        output = TriangleOutput.from_contexts(simulator.contexts, simulator.num_nodes)
        return AlgorithmResult(
            algorithm=self.name,
            model=simulator.model_name,
            output=output,
            cost=AlgorithmCost.from_metrics(simulator.metrics),
            metrics=simulator.metrics,
            parameters={
                "group_count": group_count,
                "num_triples": len(triples),
                "routing_constant": self._routing_constant,
                "kernel": self._kernel,
            },
        )

    def _route_reference(
        self, graph, simulator, router, groups, triple_owner, pair_to_triples
    ) -> None:
        """Build the routing instance as per-message request objects."""
        # The lower-id endpoint of every edge forwards it to each
        # responsible node (one copy per triple).
        requests: List[RoutingRequest] = []
        per_edge_bits = edge_bits(graph.num_nodes)
        for u, v in graph.edges():
            pair = tuple(sorted((groups[u], groups[v])))
            for triple in pair_to_triples.get(pair, []):
                owner = triple_owner[triple]
                if owner == u:
                    # The owner already knows its incident edges; no routing
                    # message is needed for them.
                    simulator.context(owner).state.setdefault("edges", set()).add(
                        (make_edge(u, v), triple)
                    )
                    continue
                requests.append(
                    RoutingRequest(
                        source=u,
                        destination=owner,
                        payload=("edge", make_edge(u, v), triple),
                        bits=per_edge_bits,
                    )
                )
        router.route(requests, name="dolev:route-edges")

    def _list_reference(self, simulator, groups) -> None:
        """Local listing at every responsible node (pair-list inboxes)."""
        for context in simulator.contexts:
            edges_by_triple: Dict[Tuple[int, int, int], Set[Edge]] = {}
            for stored_edge, triple in context.state.get("edges", set()):
                edges_by_triple.setdefault(triple, set()).add(stored_edge)
            for _, payload in context.received():
                _, received_edge, triple = payload
                edges_by_triple.setdefault(triple, set()).add(received_edge)
            for triple, edge_set in edges_by_triple.items():
                for triangle in _triangles_with_group_signature(
                    edge_set, groups, triple
                ):
                    context.output_triangle(*triangle)

    def _route_pernode(
        self, graph, simulator, router, groups, triples, triple_owner, pair_to_triples
    ) -> None:
        """Build and route the instance as arrays over the CSR edge lists.

        Each group pair selects its edges with one mask over the canonical
        ``(edge_u, edge_v)`` arrays; per-triple owners and the owner's own
        incident edges (which skip routing, as in the reference) fall out of
        the same masks.  The whole instance then ships through
        :meth:`~repro.congest.routing.LenzenRouter.route_columns` as one
        typed channel.
        """
        num_nodes = graph.num_nodes
        csr = graph.csr()
        edge_u, edge_v = csr.edges_array()
        groups_arr = np.asarray(groups, dtype=np.int64)
        pair_low = np.minimum(groups_arr[edge_u], groups_arr[edge_v])
        pair_high = np.maximum(groups_arr[edge_u], groups_arr[edge_v])
        triple_index = {triple: index for index, triple in enumerate(triples)}

        src_chunks: List[np.ndarray] = []
        owner_list: List[int] = []
        owner_counts: List[int] = []
        u_chunks: List[np.ndarray] = []
        v_chunks: List[np.ndarray] = []
        t_list: List[int] = []
        for (low, high), bucket in pair_to_triples.items():
            selected = np.flatnonzero((pair_low == low) & (pair_high == high))
            if selected.shape[0] == 0:
                continue
            pair_u = edge_u[selected]
            pair_v = edge_v[selected]
            for triple in bucket:
                owner = triple_owner[triple]
                own = pair_u == owner
                if own.any():
                    # The owner already knows its incident edges; no routing
                    # message is needed for them.
                    stored = simulator.context(owner).state.setdefault(
                        "edges", set()
                    )
                    for u, v in zip(
                        pair_u[own].tolist(), pair_v[own].tolist()
                    ):
                        stored.add(((u, v), triple))
                routed = ~own
                count = int(routed.sum())
                if count == 0:
                    continue
                src_chunks.append(pair_u[routed])
                owner_list.append(owner)
                owner_counts.append(count)
                u_chunks.append(pair_u[routed])
                v_chunks.append(pair_v[routed])
                t_list.append(triple_index[triple])
        schema = RoutedEdgeSchema(triples)
        if src_chunks:
            counts = np.asarray(owner_counts, dtype=np.int64)
            router.route_columns(
                schema,
                np.concatenate(src_chunks),
                np.repeat(np.asarray(owner_list, dtype=np.int64), counts),
                {
                    "u": np.concatenate(u_chunks),
                    "v": np.concatenate(v_chunks),
                    "triple": np.repeat(np.asarray(t_list, dtype=np.int64), counts),
                },
                bits=edge_bits(num_nodes),
                name="dolev:route-edges",
            )
        else:
            router.route([], name="dolev:route-edges")

    def _list_pernode(self, simulator, groups, triples) -> None:
        """Local listing over the delivered routed-edge columns, per node."""
        schema = RoutedEdgeSchema(triples)
        for context in simulator.contexts:
            edges_by_triple: Dict[Tuple[int, int, int], Set[Edge]] = {}
            for stored_edge, triple in context.state.get("edges", set()):
                edges_by_triple.setdefault(triple, set()).add(stored_edge)
            view = context.received_columns(schema)
            if view.count:
                received_u = view.column("u")
                received_v = view.column("v")
                received_t = view.column("triple")
                for index in np.unique(received_t).tolist():
                    triple = triples[index]
                    members = received_t == index
                    edges_by_triple.setdefault(triple, set()).update(
                        zip(
                            received_u[members].tolist(),
                            received_v[members].tolist(),
                        )
                    )
            for triple, edge_set in edges_by_triple.items():
                for triangle in _triangles_with_group_signature(
                    edge_set, groups, triple
                ):
                    context.output_triangle(*triangle)

    def _execute_direct(
        self, graph, simulator, router, groups, triples, triple_owner, pair_to_triples
    ) -> None:
        """The direct-exchange kernel: grouped routing, fused listing.

        Identical routed instance (and therefore identical Lenzen round
        accounting) to the pernode kernel, but the delivery comes back as
        destination-grouped channel arrays and the owners' local listing
        runs as one grouped oracle call keyed by (owner, triple) — no
        per-node inboxes, edge sets or Python listing walks.  The owners'
        own incident edges, which skip routing in every kernel, ride along
        as arrays instead of per-context state.
        """
        num_nodes = graph.num_nodes
        csr = graph.csr()
        edge_u, edge_v = csr.edges_array()
        groups_arr = np.asarray(groups, dtype=np.int64)
        pair_low = np.minimum(groups_arr[edge_u], groups_arr[edge_v])
        pair_high = np.maximum(groups_arr[edge_u], groups_arr[edge_v])
        triple_index = {triple: index for index, triple in enumerate(triples)}

        src_chunks: List[np.ndarray] = []
        owner_list: List[int] = []
        owner_counts: List[int] = []
        u_chunks: List[np.ndarray] = []
        v_chunks: List[np.ndarray] = []
        t_list: List[int] = []
        own_owner: List[int] = []
        own_triple: List[int] = []
        own_counts: List[int] = []
        own_u_chunks: List[np.ndarray] = []
        own_v_chunks: List[np.ndarray] = []
        for (low, high), bucket in pair_to_triples.items():
            selected = np.flatnonzero((pair_low == low) & (pair_high == high))
            if selected.shape[0] == 0:
                continue
            pair_u = edge_u[selected]
            pair_v = edge_v[selected]
            for triple in bucket:
                owner = triple_owner[triple]
                own = pair_u == owner
                own_count = int(own.sum())
                if own_count:
                    # The owner already knows its incident edges; no routing
                    # message is needed for them.
                    own_owner.append(owner)
                    own_triple.append(triple_index[triple])
                    own_counts.append(own_count)
                    own_u_chunks.append(pair_u[own])
                    own_v_chunks.append(pair_v[own])
                routed = ~own
                count = int(routed.sum())
                if count == 0:
                    continue
                src_chunks.append(pair_u[routed])
                owner_list.append(owner)
                owner_counts.append(count)
                u_chunks.append(pair_u[routed])
                v_chunks.append(pair_v[routed])
                t_list.append(triple_index[triple])
        schema = RoutedEdgeSchema(triples)
        channel = None
        if src_chunks:
            counts = np.asarray(owner_counts, dtype=np.int64)
            delivered = router.route_columns_direct(
                schema,
                np.concatenate(src_chunks),
                np.repeat(np.asarray(owner_list, dtype=np.int64), counts),
                {
                    "u": np.concatenate(u_chunks),
                    "v": np.concatenate(v_chunks),
                    "triple": np.repeat(np.asarray(t_list, dtype=np.int64), counts),
                },
                bits=edge_bits(num_nodes),
                name="dolev:route-edges",
            )
            channel = delivered.channel(schema)
        else:
            router.route([], name="dolev:route-edges")

        # Fused listing: every (owner, triple) bucket is one group of the
        # grouped oracle.  Composite group ids ``owner · |triples| + triple``
        # keep buckets disjoint and owner-ascending.
        num_triples = len(triples)
        gid_pieces: List[np.ndarray] = []
        gu_pieces: List[np.ndarray] = []
        gv_pieces: List[np.ndarray] = []
        if channel is not None and channel.count:
            gid_pieces.append(
                channel.dst * np.int64(num_triples) + channel.data["triple"]
            )
            gu_pieces.append(channel.data["u"])
            gv_pieces.append(channel.data["v"])
        if own_owner:
            repeats = np.asarray(own_counts, dtype=np.int64)
            gid_pieces.append(
                np.repeat(
                    np.asarray(own_owner, dtype=np.int64) * np.int64(num_triples)
                    + np.asarray(own_triple, dtype=np.int64),
                    repeats,
                )
            )
            gu_pieces.append(np.concatenate(own_u_chunks))
            gv_pieces.append(np.concatenate(own_v_chunks))
        if not gid_pieces:
            return
        gid = np.concatenate(gid_pieces)
        all_u = np.concatenate(gu_pieces)
        all_v = np.concatenate(gv_pieces)
        order = np.argsort(gid, kind="stable")
        tri_gids, tri_keys = triangles_by_group(
            gid[order], all_u[order], all_v[order], num_nodes
        )
        if tri_keys.shape[0] == 0:
            return
        # Keep only triangles whose vertex-group multiset equals the
        # bucket's assigned triple (the signature rule that makes every
        # triangle the responsibility of exactly one owner).
        a, b, c = decode_triangle_keys(tri_keys, num_nodes)
        signatures = np.stack(
            (groups_arr[a], groups_arr[b], groups_arr[c]), axis=1
        )
        signatures.sort(axis=1)
        triples_arr = np.asarray(triples, dtype=np.int64)
        expected = triples_arr[tri_gids % num_triples]
        keep = (signatures == expected).all(axis=1)
        if not keep.any():
            return
        kept_gids = tri_gids[keep]
        kept_keys = tri_keys[keep]
        emit_grouped_keys(
            simulator.contexts, kept_gids // num_triples, kept_keys
        )


def _triangles_with_group_signature(
    edges: Set[Edge], groups: Sequence[int], triple: Tuple[int, int, int]
) -> List[Triangle]:
    """List triangles of ``edges`` whose vertex groups form exactly ``triple``.

    Restricting to the exact group signature keeps every triangle the
    responsibility of exactly one triple owner, so the global output contains
    no systematic duplication (beyond what the paper's model permits anyway).
    """
    adjacency: Dict[int, Set[int]] = {}
    for u, v in edges:
        adjacency.setdefault(u, set()).add(v)
        adjacency.setdefault(v, set()).add(u)
    found: List[Triangle] = []
    vertices = sorted(adjacency)
    expected = tuple(sorted(triple))
    for u in vertices:
        higher = sorted(w for w in adjacency[u] if w > u)
        for index, v in enumerate(higher):
            for w in higher[index + 1:]:
                if w in adjacency[v]:
                    signature = tuple(sorted((groups[u], groups[v], groups[w])))
                    if signature == expected:
                        found.append(make_triangle(u, v, w))
    return found


def dolev_round_bound(num_nodes: int) -> float:
    """Return the Dolev et al. closed-form bound ``n^{1/3} (log n)^{2/3}``."""
    n = float(max(2, num_nodes))
    return n ** (1.0 / 3.0) * math.log2(n) ** (2.0 / 3.0)
