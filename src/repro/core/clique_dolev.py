"""The Dolev–Lenzen–Peled triangle-listing baseline for the CONGEST clique.

Table 1's first row: "Tri, tri again" (Dolev et al., DISC 2012) lists all
triangles on the congested clique deterministically in
``O(n^{1/3} (log n)^{2/3})`` rounds.  The algorithm:

1. Partition the vertex set into ``k = ⌈n^{1/3}⌉`` groups of (almost) equal
   size, by identifier ranges (every node can compute the partition locally
   from ``n``).
2. Assign to each node one (or a few) of the ``C(k+2, 3)`` unordered group
   triples ``{A, B, C}`` (with repetition), again by a fixed rule computable
   from identifiers alone.
3. Every node forwards each of its incident edges to every node responsible
   for a triple containing both endpoint groups, using Lenzen's routing
   primitive (each message is one edge = ``O(log n)`` bits).
4. Each responsible node locally lists the triangles whose three edges it
   received and whose vertex-group multiset equals its assigned triple.

With ``k = n^{1/3}`` there are about ``n/6`` triples, each node receives
``O(n^{4/3})`` bits of edges, and Lenzen routing delivers the whole exchange
in ``O(n^{1/3})`` rounds — sublinear, and strictly cheaper than what any
CONGEST (non-clique) algorithm can do for listing given the paper's
``Ω(n^{1/3}/log n)`` clique lower bound (Theorem 3).
"""

from __future__ import annotations

import math
from itertools import combinations_with_replacement
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..congest.clique import CliqueSimulator
from ..congest.metrics import AlgorithmCost
from ..congest.routing import LenzenRouter, RoutingRequest
from ..congest.wire import edge_bits
from ..graphs.graph import Graph
from ..types import Edge, Triangle, make_edge, make_triangle
from .output import AlgorithmResult, TriangleOutput


def partition_into_groups(num_nodes: int, num_groups: int) -> List[int]:
    """Return the group index of every node under the balanced id-range partition.

    Node ``v`` belongs to group ``⌊v · num_groups / n⌋`` (clamped), which
    every node can evaluate locally — no communication is needed to agree on
    the partition.
    """
    if num_groups < 1:
        raise ValueError(f"num_groups must be positive, got {num_groups}")
    return [
        min(num_groups - 1, (node * num_groups) // max(1, num_nodes))
        for node in range(num_nodes)
    ]


def group_triples(num_groups: int) -> List[Tuple[int, int, int]]:
    """Return all unordered group triples (with repetition), sorted.

    A triangle whose vertices lie in groups ``a <= b <= c`` is the
    responsibility of the node assigned the triple ``(a, b, c)``; allowing
    repetition covers triangles with two or three vertices in one group.
    """
    return list(combinations_with_replacement(range(num_groups), 3))


def responsible_node(triple_index: int, num_nodes: int) -> int:
    """Return the node responsible for the ``triple_index``-th group triple.

    Triples are assigned round-robin by index; with ``k = ⌈n^{1/3}⌉`` there
    are at most ``(k+2)^3/6 ≈ n/6`` triples so each node is responsible for
    O(1) triples.
    """
    return triple_index % num_nodes


class DolevCliqueListing:
    """Deterministic triangle listing on the congested clique (Dolev et al.).

    Parameters
    ----------
    group_count:
        Number of groups ``k``; ``None`` selects ``⌈n^{1/3}⌉`` as the
        original analysis does.
    routing_constant:
        Constant-round factor of the Lenzen routing primitive.
    """

    name = "Dolev-clique-listing"
    model = "CONGEST clique"

    def __init__(self, group_count: Optional[int] = None, routing_constant: int = 2) -> None:
        self._group_count = group_count
        self._routing_constant = routing_constant

    def describe_parameters(self) -> Dict[str, Any]:
        return {
            "group_count": self._group_count,
            "routing_constant": self._routing_constant,
        }

    def run(
        self, graph: Graph, seed: Optional[int | np.random.Generator] = None
    ) -> AlgorithmResult:
        """Run the clique listing algorithm and return the packaged result."""
        num_nodes = graph.num_nodes
        simulator = CliqueSimulator(graph, seed=seed)
        router = LenzenRouter(simulator, constant_rounds=self._routing_constant)

        group_count = (
            self._group_count
            if self._group_count is not None
            else max(1, math.ceil(num_nodes ** (1.0 / 3.0)))
        )
        groups = partition_into_groups(num_nodes, group_count)
        triples = group_triples(group_count)
        triple_owner = {
            triple: responsible_node(index, num_nodes)
            for index, triple in enumerate(triples)
        }
        # Pre-index: for every unordered pair of groups, the triples that
        # contain both (as a multiset).  An edge between those groups must be
        # routed to each owner of such a triple.
        pair_to_triples: Dict[Tuple[int, int], List[Tuple[int, int, int]]] = {}
        for triple in triples:
            for first in range(3):
                for second in range(first + 1, 3):
                    pair = tuple(sorted((triple[first], triple[second])))
                    bucket = pair_to_triples.setdefault(pair, [])
                    if triple not in bucket:
                        bucket.append(triple)

        # Build the routing instance: the lower-id endpoint of every edge
        # forwards it to each responsible node (one copy per triple).
        requests: List[RoutingRequest] = []
        per_edge_bits = edge_bits(num_nodes)
        for u, v in graph.edges():
            pair = tuple(sorted((groups[u], groups[v])))
            for triple in pair_to_triples.get(pair, []):
                owner = triple_owner[triple]
                if owner == u:
                    # The owner already knows its incident edges; no routing
                    # message is needed for them.
                    simulator.context(owner).state.setdefault("edges", set()).add(
                        (make_edge(u, v), triple)
                    )
                    continue
                requests.append(
                    RoutingRequest(
                        source=u,
                        destination=owner,
                        payload=("edge", make_edge(u, v), triple),
                        bits=per_edge_bits,
                    )
                )
        router.route(requests, name="dolev:route-edges")

        # Local listing at every responsible node.
        for context in simulator.contexts:
            edges_by_triple: Dict[Tuple[int, int, int], Set[Edge]] = {}
            for stored_edge, triple in context.state.get("edges", set()):
                edges_by_triple.setdefault(triple, set()).add(stored_edge)
            for _, payload in context.received():
                _, received_edge, triple = payload
                edges_by_triple.setdefault(triple, set()).add(received_edge)
            for triple, edge_set in edges_by_triple.items():
                for triangle in _triangles_with_group_signature(
                    edge_set, groups, triple
                ):
                    context.output_triangle(*triangle)

        output = TriangleOutput.from_simulator_outputs(simulator.collect_outputs())
        return AlgorithmResult(
            algorithm=self.name,
            model=simulator.model_name,
            output=output,
            cost=AlgorithmCost.from_metrics(simulator.metrics),
            metrics=simulator.metrics,
            parameters={
                "group_count": group_count,
                "num_triples": len(triples),
                "routing_constant": self._routing_constant,
            },
        )


def _triangles_with_group_signature(
    edges: Set[Edge], groups: Sequence[int], triple: Tuple[int, int, int]
) -> List[Triangle]:
    """List triangles of ``edges`` whose vertex groups form exactly ``triple``.

    Restricting to the exact group signature keeps every triangle the
    responsibility of exactly one triple owner, so the global output contains
    no systematic duplication (beyond what the paper's model permits anyway).
    """
    adjacency: Dict[int, Set[int]] = {}
    for u, v in edges:
        adjacency.setdefault(u, set()).add(v)
        adjacency.setdefault(v, set()).add(u)
    found: List[Triangle] = []
    vertices = sorted(adjacency)
    expected = tuple(sorted(triple))
    for u in vertices:
        higher = sorted(w for w in adjacency[u] if w > u)
        for index, v in enumerate(higher):
            for w in higher[index + 1:]:
                if w in adjacency[v]:
                    signature = tuple(sorted((groups[u], groups[v], groups[w])))
                    if signature == expected:
                        found.append(make_triangle(u, v, w))
    return found


def dolev_round_bound(num_nodes: int) -> float:
    """Return the Dolev et al. closed-form bound ``n^{1/3} (log n)^{2/3}``."""
    n = float(max(2, num_nodes))
    return n ** (1.0 / 3.0) * math.log2(n) ** (2.0 / 3.0)
