"""Baseline algorithms the paper's contributions are measured against.

Two baselines live here:

* :class:`NaiveTwoHopListing` — the folklore algorithm described in the
  paper's introduction: every node ships its entire neighbourhood to all its
  neighbours, after which each node knows its distance-two ball and can list
  every triangle it belongs to.  The cost is ``Θ(d_max)`` rounds, which is
  linear in ``n`` on dense graphs — this is the linear wall the sublinear
  algorithms of Theorems 1 and 2 break through.  Because every node outputs
  exactly the triangles containing itself, this is also a *local listing*
  algorithm in the sense of Proposition 5, so it doubles as the measured
  witness for the ``Ω(n/log n)`` local-listing lower bound.

* The Dolev–Lenzen–Peled CONGEST-clique baseline lives in its own module,
  :mod:`repro.core.clique_dolev`, because it needs the clique simulator and
  the Lenzen routing primitive.
"""

from __future__ import annotations

from typing import Any, Dict

from ..congest.node import NodeContext
from ..congest.simulator import CongestSimulator
from ..congest.wire import id_bits
from .base import TriangleAlgorithm


class NaiveTwoHopListing(TriangleAlgorithm):
    """Folklore ``Θ(d_max)``-round listing by full neighbourhood exchange.

    Every node broadcasts ``N(i)`` to all its neighbours; afterwards each
    node ``k`` knows ``N(j)`` for every neighbour ``j`` and reports every
    triangle ``{j, k, l}`` it belongs to.  The heaviest link carries
    ``d_max`` node identifiers, so the measured round complexity is
    ``max_j |N(j)|`` over edges incident to ``j`` — i.e. ``d_max`` rounds.

    Parameters
    ----------
    local_output_only:
        Kept for interface clarity; the algorithm naturally only outputs
        triangles containing the reporting node (it *is* a local listing
        algorithm), so this flag only documents the fact.
    """

    name = "naive-two-hop"
    model = "CONGEST"

    def __init__(self, local_output_only: bool = True) -> None:
        self._local_output_only = local_output_only

    def describe_parameters(self) -> Dict[str, Any]:
        return {"local_output_only": self._local_output_only}

    def _execute(self, simulator: CongestSimulator) -> bool:
        num_nodes = simulator.num_nodes

        def send_neighborhood(context: NodeContext) -> None:
            neighbors = context.sorted_neighbors()
            if not neighbors:
                return
            payload_bits = len(neighbors) * id_bits(num_nodes)
            context.broadcast(("N", tuple(neighbors)), bits=payload_bits)

        simulator.for_each_node(send_neighborhood)
        simulator.run_phase("naive:exchange-neighbourhoods")

        def list_triangles(context: NodeContext) -> None:
            own_neighbors = context.neighbors
            for sender, payload in context.received():
                _, sender_neighbors = payload
                for third in sender_neighbors:
                    if third == context.node_id or third == sender:
                        continue
                    if third in own_neighbors:
                        context.output_triangle(context.node_id, sender, third)

        simulator.for_each_node(list_triangles)
        return False


def naive_round_bound(max_degree: int) -> float:
    """Return the naive baseline's round bound ``d_max`` (reference curve)."""
    return float(max_degree)


class LocalListing(NaiveTwoHopListing):
    """Alias emphasising the Proposition-5 setting.

    Proposition 5 concerns algorithms in which each node must output all the
    triangles *containing itself*.  The naive two-hop exchange is the
    canonical such algorithm; this subclass only renames it so experiment
    tables read naturally.
    """

    name = "local-listing"
