"""Algorithm A2: listing every ε-heavy triangle via 3-wise independent hashing.

Proposition 2 / Figure 1 of the paper.  The protocol has three steps:

1. Every node ``i`` samples a hash function ``h_i : V -> {0, .., ⌊n^{ε/2}⌋-1}``
   from a 3-wise independent family and sends its description (``O(log n)``
   bits) to all neighbours.
2. Every node ``j`` computes, for each neighbour ``a``, the edge set
   ``E_ja = {{j, l} ∈ E : h_a(l) = 0}`` and sends it to ``a`` — but only when
   ``|E_ja| <= 8 + 4n/⌊n^{ε/2}⌋`` (Lemma 1 shows the cap holds with the
   probability the analysis needs).
3. Every node ``i`` collects the received edges into ``F_i`` and outputs all
   triples whose three edges all appear in ``F_i``.

For an ε-heavy triangle ``{j, k, l}`` with heavy edge ``{j, k}``, each of
the ``>= n^ε`` common neighbours ``a`` of ``j`` and ``k`` independently
catches the triangle when ``h_a(k) = h_a(l) = 0`` and the caps hold, which
by Lemma 1 happens with probability at least ``3/(4 n^ε)`` — so *some*
common neighbour catches it with constant probability.  The communication
cost is dominated by step 2: at most ``8 + 4n/⌊n^{ε/2}⌋`` edges per link,
i.e. ``O(n^{1-ε/2})`` rounds.

Three execution kernels implement the protocol:

* the **batched kernel** (default) evaluates every node's 3-wise hash over
  the CSR neighbour rows as one array program — each family member is
  Horner-evaluated once over the whole vertex set instead of once per
  received message — ships the filtered edge batches through the typed
  columnar plane (:data:`repro.congest.wire.A2_EDGE_SCHEMA`) on the
  **direct-exchange** path, and lists the received edge sets with a single
  whole-network grouped oracle call
  (:func:`repro.graphs.csr.triangles_by_group`) over the
  destination-grouped channel columns — no per-node inboxes, views or
  receiver loops exist anywhere in the run,
* the **pernode kernel** is the previous batched generation (per-node
  inbox views, one local CSR oracle per receiver), kept as the
  benchmark baseline for the direct-exchange speedup, and
* the **reference kernel** keeps the paper-shaped per-node closures over
  object payloads.

All kernels draw per-node randomness identically, so a seeded run produces
the same round counts, link-bit maxima and triangle outputs on any path;
the differential suite (``tests/core/test_batched_kernels.py``) enforces
this on every workload family.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

import numpy as np

from ..congest.backends import active_backend, chunk_rows
from ..congest.node import NodeContext, emit_grouped_keys
from ..congest.simulator import CongestSimulator
from ..congest.wire import A2_EDGE_SCHEMA, HashDescriptorSchema, edge_bits
from ..graphs.csr import CSRGraph, triangles_by_group
from ..graphs.graph import Graph
from ..hashing.kwise import KWiseIndependentFamily
from ..types import Edge, make_edge, triangle_keys
from .base import TriangleAlgorithm, dense_pair_matrix_worthwhile, validate_kernel
from .parameters import a2_edge_set_cap, a2_hash_range


class HeavyHashingLister(TriangleAlgorithm):
    """Algorithm A2 (Proposition 2, Figure 1): list all ε-heavy triangles.

    Parameters
    ----------
    epsilon:
        The heaviness exponent ε.  Only ε-heavy triangles carry a listing
        guarantee; the composite Theorem-2 algorithm pairs A2 with A3.
    independence:
        Independence of the hash family (the analysis needs 3; exposed for
        the ablation that demonstrates pairwise independence is not enough
        for Lemma 1's conditioning argument).
    kernel:
        ``"batched"`` (default) runs the vectorized phase kernels over the
        typed columnar plane; ``"reference"`` runs the per-node closures.
        Both produce identical executions for the same seed.
    """

    name = "A2-heavy-hashing"
    model = "CONGEST"

    def __init__(
        self,
        epsilon: float,
        independence: int = 3,
        kernel: str = "batched",
        backend: str = "numpy",
        chunk_bytes: Optional[int] = None,
    ) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError(f"epsilon must lie in [0, 1], got {epsilon}")
        if independence < 2:
            raise ValueError(f"independence must be at least 2, got {independence}")
        self._epsilon = epsilon
        self._independence = independence
        self._kernel = validate_kernel(kernel)
        self._set_tuning(backend, chunk_bytes)

    def describe_parameters(self) -> Dict[str, Any]:
        return {
            "epsilon": self._epsilon,
            "independence": self._independence,
            "kernel": self._kernel,
            "backend": self.backend,
            "chunk_bytes": self.chunk_bytes,
        }

    # ------------------------------------------------------------------
    # protocol
    # ------------------------------------------------------------------
    def _execute(self, simulator: CongestSimulator) -> bool:
        num_nodes = simulator.num_nodes
        hash_range = a2_hash_range(num_nodes, self._epsilon)
        edge_cap = a2_edge_set_cap(num_nodes, self._epsilon)
        # The family parameters (domain, range, prime) are functions of the
        # globally known n and ε, so every node derives the same family
        # locally; only the sampled coefficients travel on the wire.
        family = KWiseIndependentFamily(
            domain_size=num_nodes,
            range_size=hash_range,
            independence=self._independence,
        )
        if self._kernel == "batched":
            return self._execute_direct(simulator, family, edge_cap)
        if self._kernel == "pernode":
            return self._execute_pernode(simulator, family, edge_cap)
        return self._execute_reference(simulator, family, edge_cap)

    def _execute_reference(
        self,
        simulator: CongestSimulator,
        family: KWiseIndependentFamily,
        edge_cap: float,
    ) -> bool:
        num_nodes = simulator.num_nodes

        # Step 1: sample and broadcast hash functions.
        def sample_hash(context: NodeContext) -> None:
            own_hash = family.sample(context.rng)
            context.state["hash"] = own_hash
            context.broadcast_bits(
                ("hash", own_hash.encode()), bits=family.description_bits()
            )

        simulator.for_each_node(sample_hash)
        simulator.run_phase("A2:send-hash-functions")

        # Step 2: every node filters its incident edges through each
        # neighbour's hash function and ships the small filtered sets.
        def send_filtered_edges(context: NodeContext) -> None:
            neighbor_hashes = {}
            for sender, payload in context.received():
                _, coefficients = payload
                neighbor_hashes[sender] = family.decode(coefficients)
            context.state["neighbor_hashes"] = neighbor_hashes
            own = context.node_id
            neighbors = context.sorted_neighbors()
            # Heavy-node fan-out: one filtered edge set per neighbour, shipped
            # through the batched plane in a single bulk_send.
            targets: List[int] = []
            payloads: List[Any] = []
            sizes: List[int] = []
            per_edge_bits = edge_bits(num_nodes)
            for target, target_hash in neighbor_hashes.items():
                filtered: List[Edge] = [
                    make_edge(own, other)
                    for other in neighbors
                    if target_hash(other) == 0
                ]
                if len(filtered) > edge_cap:
                    continue
                if not filtered:
                    continue
                targets.append(target)
                payloads.append(("edges", tuple(filtered)))
                sizes.append(len(filtered) * per_edge_bits)
            if targets:
                context.bulk_send(targets, payloads, bits=sizes)

        simulator.for_each_node(send_filtered_edges)
        simulator.run_phase("A2:send-filtered-edges")

        # Step 3: list triangles inside the received edge set.
        def list_local_triangles(context: NodeContext) -> None:
            received_edges: Set[Edge] = set()
            for _, payload in context.received():
                _, edges = payload
                received_edges.update(edges)
            for triangle in _triangles_in_edge_set(received_edges):
                context.output_triangle(*triangle)

        simulator.for_each_node(list_local_triangles)
        return False

    def _stage_hashes(
        self,
        simulator: CongestSimulator,
        family: KWiseIndependentFamily,
    ) -> np.ndarray:
        """Step 1: sample per node and stage every descriptor broadcast.

        The same ``family.sample(rng)`` calls as the reference closure, so
        seeded runs coincide; the whole phase is one columnar batch (one
        message per directed edge, each carrying the sender's k
        coefficients).  Returns the coefficient matrix, which the sender
        programs evaluate locally in place of decoding received payloads.
        """
        num_nodes = simulator.num_nodes
        csr = simulator.graph.csr()
        degrees = np.diff(csr.indptr)
        coefficients = np.empty((num_nodes, family.independence), dtype=np.int64)
        for context in simulator.contexts:
            own_hash = family.sample(context.rng)
            context.state["hash"] = own_hash
            coefficients[context.node_id] = own_hash.coefficients
        schema = HashDescriptorSchema(family.independence, family.prime)
        src = np.repeat(np.arange(num_nodes, dtype=np.int64), degrees)
        if src.shape[0]:
            simulator.stage_columns(
                schema,
                src,
                csr.indices,
                {"coefficient": coefficients[src].ravel()},
                bits=family.description_bits(),
            )
        return coefficients

    def _stage_filtered_edges(
        self,
        simulator: CongestSimulator,
        family: KWiseIndependentFamily,
        coefficients: np.ndarray,
        edge_cap: float,
    ) -> Tuple[Optional[np.ndarray], np.ndarray, np.ndarray]:
        """Step 2 as one array program over the CSR rows.

        Each neighbour's family is evaluated once — on dense graphs all n
        functions over all n vertices in one Horner pass, on sparse ones
        per neighbour-row block on demand — then every node's filtered edge
        batches and cap masks fall out as array reductions, staged as one
        columnar batch for the whole network.

        Returns ``(zero_mask, shipped_senders, shipped_targets)``: the
        all-pairs hash-zero matrix when the dense precompute was used
        (``None`` otherwise) and the directed (sender, target) pairs that
        actually shipped an edge set — the structure the fused receiver
        reconstructs ``F_i`` membership from without re-reading the
        channel.
        """
        num_nodes = simulator.num_nodes
        csr = simulator.graph.csr()
        indptr, indices = csr.indptr, csr.indices
        degrees = np.diff(indptr)
        zero_mask = (
            _hash_zero_matrix(coefficients, family.prime, family.range_size, num_nodes)
            if dense_pair_matrix_worthwhile(num_nodes, degrees)
            else None
        )
        batch_nodes: List[int] = []
        batch_counts: List[int] = []
        target_chunks: List[np.ndarray] = []
        length_chunks: List[np.ndarray] = []
        endpoint_chunks: List[np.ndarray] = []
        for node in range(num_nodes):
            row = indices[indptr[node] : indptr[node + 1]]
            if row.shape[0] == 0:
                continue
            # filters[a, l] — does neighbour ``a``'s hash keep vertex ``l``?
            if zero_mask is not None:
                filters = zero_mask[np.ix_(row, row)]
            else:
                filters = _hash_zero_block(
                    coefficients[row], row, family.prime, family.range_size
                )
            kept_per_target = filters.sum(axis=1)
            shipped = (kept_per_target > 0) & (kept_per_target <= edge_cap)
            if not shipped.any():
                continue
            endpoints = row[np.nonzero(filters[shipped])[1]]
            targets = row[shipped]
            batch_nodes.append(node)
            batch_counts.append(int(targets.shape[0]))
            target_chunks.append(targets)
            length_chunks.append(kept_per_target[shipped])
            endpoint_chunks.append(endpoints)
        if not batch_nodes:
            return zero_mask, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        senders = np.repeat(
            np.asarray(batch_nodes, dtype=np.int64),
            np.asarray(batch_counts, dtype=np.int64),
        )
        targets = np.concatenate(target_chunks)
        endpoints = np.concatenate(endpoint_chunks)
        # Canonical edges {node, l}: every endpoint pairs with its
        # message's sending node.
        edge_peers = np.repeat(senders, np.concatenate(length_chunks))
        simulator.stage_columns(
            A2_EDGE_SCHEMA,
            senders,
            targets,
            {
                "u": np.minimum(edge_peers, endpoints),
                "v": np.maximum(edge_peers, endpoints),
            },
            lengths=np.concatenate(length_chunks),
        )
        return zero_mask, senders, targets

    def _execute_pernode(
        self,
        simulator: CongestSimulator,
        family: KWiseIndependentFamily,
        edge_cap: float,
    ) -> bool:
        """The per-node batched kernel: columnar staging, inbox-view receivers.

        Identical execution to :meth:`_execute_reference` (same per-node RNG
        draws, same messages, same sizes); message production is array work
        but every receiver still consumes its own ``TypedInboxView`` and
        runs its own local CSR oracle.
        """
        num_nodes = simulator.num_nodes
        coefficients = self._stage_hashes(simulator, family)
        simulator.run_phase("A2:send-hash-functions")
        self._stage_filtered_edges(simulator, family, coefficients, edge_cap)
        simulator.run_phase("A2:send-filtered-edges")

        # Step 3: list triangles inside each node's received edge columns.
        # Each inbox defines a small graph F_i; its triangles come from the
        # vectorized CSR oracle, per receiver.  Endpoints are remapped to a
        # compact vertex set first so the per-inbox graph (and the oracle's
        # strategy choice) is sized by the inbox, not by n.
        for context in simulator.contexts:
            view = context.received_columns(A2_EDGE_SCHEMA)
            if view.count == 0:
                continue
            keys = view.column("u") * np.int64(num_nodes) + view.column("v")
            unique_keys = np.unique(keys)
            endpoint_u = unique_keys // num_nodes
            endpoint_v = unique_keys % num_nodes
            vertices = np.unique(np.concatenate((endpoint_u, endpoint_v)))
            local_graph = CSRGraph.from_edge_arrays(
                int(vertices.shape[0]),
                np.searchsorted(vertices, endpoint_u),
                np.searchsorted(vertices, endpoint_v),
            )
            listed = local_graph.triangles()
            if listed.shape[0]:
                context.output_triangles(
                    vertices[listed[:, 0]],
                    vertices[listed[:, 1]],
                    vertices[listed[:, 2]],
                    canonical=True,
                )
        return False

    def _execute_direct(
        self,
        simulator: CongestSimulator,
        family: KWiseIndependentFamily,
        edge_cap: float,
    ) -> bool:
        """The direct-exchange kernel: fused whole-network receivers.

        Same staged traffic as :meth:`_execute_pernode`, but both phases
        run on the direct-exchange path and no per-node inbox objects
        exist.  On dense graphs (where step 2 precomputed the all-pairs
        hash-zero matrix) step 3 does not even group the delivered
        channel: the received set ``F_i`` is a pure function of the
        hash-zero matrix ``Z``, the shipping mask ``S`` and the adjacency
        — an edge ``{u, v}`` is in ``F_i`` iff one endpoint shipped to
        ``i`` and the other hashes to zero — so the kernel enumerates
        candidate triples straight from that structure
        (:meth:`_list_fused_dense`).  On sparse graphs the grouped channel
        columns feed one whole-network grouped oracle call
        (:func:`repro.graphs.csr.triangles_by_group`).
        """
        num_nodes = simulator.num_nodes
        contexts = simulator.contexts
        coefficients = self._stage_hashes(simulator, family)
        simulator.exchange_phase("A2:send-hash-functions")
        zero_mask, senders, targets = self._stage_filtered_edges(
            simulator, family, coefficients, edge_cap
        )
        delivered = simulator.exchange_phase("A2:send-filtered-edges")

        if zero_mask is not None:
            self._list_fused_dense(simulator, zero_mask, senders, targets)
            return False
        channel = delivered.channel(A2_EDGE_SCHEMA)
        if channel.count:
            tri_groups, tri_keys = triangles_by_group(
                channel.element_receivers(),
                channel.data["u"],
                channel.data["v"],
                num_nodes,
            )
            emit_grouped_keys(contexts, tri_groups, tri_keys)
        return False

    def _list_fused_dense(
        self,
        simulator: CongestSimulator,
        zero_mask: np.ndarray,
        senders: np.ndarray,
        targets: np.ndarray,
    ) -> bool:
        """Step 3 fused over the hash-zero structure (dense precompute).

        Every triangle of ``F_i`` has at least two vertices hashing to
        zero under ``h_i`` (each of its edges needs a zero endpoint, and
        one zero vertex cannot cover three edges).  So for receiver ``i``
        the kernel enumerates adjacent zero-pairs ``y < z``, expands their
        common neighbourhoods ``x`` with one boolean row reduction, and
        keeps a candidate exactly when all three edges lie in ``F_i``::

            {u, v} ∈ F_i  ⟺  (S(u) ∧ Z(v)) ∨ (S(v) ∧ Z(u))

        with ``S`` the shipped-to-``i`` mask and ``Z`` the zero mask —
        which for a zero-pair candidate reduces to ``(S(x) ∧ (S(y) ∨
        S(z))) ∨ (Z(x) ∧ S(y) ∧ S(z))``.  Work is proportional to the
        candidate count (a small constant times the listed output), not to
        ``receivers × adjacency-rows`` as a per-receiver scan would be.
        """
        if targets.shape[0] == 0:
            return False
        num_nodes = simulator.num_nodes
        contexts = simulator.contexts
        adjacency = simulator.graph.csr()._bool_matrix()
        shipped = np.zeros((num_nodes, num_nodes), dtype=bool)
        shipped[targets, senders] = True
        # Zero-pair chunks keep the (pairs × n) row intersections within
        # the active chunk_bytes budget; one bulk key append per chunk.
        pair_chunk = chunk_rows(num_nodes)
        for receiver in np.unique(targets).tolist():
            z_row = zero_mask[receiver]
            s_row = shipped[receiver]
            zeros = np.flatnonzero(z_row)
            if zeros.shape[0] < 2:
                continue
            # Adjacent zero-pairs (y < z) with at least one side shipped —
            # the {y, z} edge must itself be in F_i.
            zero_shipped = s_row[zeros]
            pair_matrix = adjacency[np.ix_(zeros, zeros)] & (
                zero_shipped[:, None] | zero_shipped[None, :]
            )
            first, second = np.nonzero(np.triu(pair_matrix, k=1))
            if first.shape[0] == 0:
                continue
            y = zeros[first]
            z = zeros[second]
            # Every kept pair already has S(y) ∨ S(z); the per-candidate
            # test reduces to S(x) ∨ (Z(x) ∧ S(y) ∧ S(z)), applied in
            # matrix form before any candidate is extracted.
            both_shipped = (s_row[y] & s_row[z])[:, None]
            output = contexts[receiver].output_triangle_keys
            for start in range(0, y.shape[0], pair_chunk):
                end = min(start + pair_chunk, y.shape[0])
                y_chunk = y[start:end]
                z_chunk = z[start:end]
                rows = adjacency[y_chunk] & adjacency[z_chunk]
                rows &= s_row[None, :] | (
                    z_row[None, :] & both_shipped[start:end]
                )
                flat = np.flatnonzero(rows.ravel())
                if flat.shape[0] == 0:
                    continue
                pair_index = flat // num_nodes
                x = flat - pair_index * num_nodes
                yy = y_chunk[pair_index]
                zz = z_chunk[pair_index]
                lo = np.minimum(x, yy)
                hi = np.maximum(x, zz)
                mid = x + yy + zz - lo - hi
                output(triangle_keys(lo, mid, hi, num_nodes))
        return False


def _triangles_in_edge_set(edges: Set[Edge]) -> List[Tuple[int, int, int]]:
    """Return all triples whose three edges are all contained in ``edges``.

    The received edge sets are small (each link contributes at most the
    Figure-1 cap), so a forward enumeration over an adjacency map is
    adequate.
    """
    adjacency: Dict[int, Set[int]] = {}
    for u, v in edges:
        adjacency.setdefault(u, set()).add(v)
        adjacency.setdefault(v, set()).add(u)
    triangles: List[Tuple[int, int, int]] = []
    vertices = sorted(adjacency)
    for u in vertices:
        higher_neighbors = sorted(w for w in adjacency[u] if w > u)
        for index, v in enumerate(higher_neighbors):
            for w in higher_neighbors[index + 1:]:
                if w in adjacency[v]:
                    triangles.append((u, v, w))
    return triangles


def _hash_zero_block(
    coefficient_rows: np.ndarray, points: np.ndarray, prime: int, range_size: int
) -> np.ndarray:
    """Return ``Z[i, j] = (h_i(points[j]) == 0)`` for the given functions.

    One Horner pass per coefficient, vectorized over the whole block.
    Intermediate products stay below ``prime²`` (< 2⁶³ for every realistic
    ``n``), so plain int64 arithmetic is exact.  Dispatches to the active
    kernel backend (numpy reference or the numba twin).
    """
    return active_backend().hash_zero_block(
        coefficient_rows, points, int(prime), int(range_size)
    )


def _hash_zero_matrix(
    coefficients: np.ndarray, prime: int, range_size: int, num_nodes: int
) -> np.ndarray:
    """Return the boolean matrix ``Z[a, l] = (h_a(l) == 0)`` for all pairs.

    Rows are chunked so the int64 work matrix stays within the active
    ``chunk_bytes`` budget; used when
    :func:`repro.core.base.dense_pair_matrix_worthwhile` says the all-pairs
    precompute amortises (dense graphs).
    """
    points = np.arange(num_nodes, dtype=np.int64)
    zero = np.empty((num_nodes, num_nodes), dtype=bool)
    row_chunk = chunk_rows(8 * num_nodes)
    for start in range(0, num_nodes, row_chunk):
        end = min(num_nodes, start + row_chunk)
        zero[start:end] = _hash_zero_block(
            coefficients[start:end], points, prime, range_size
        )
    return zero


def expected_rounds(num_nodes: int, epsilon: float) -> float:
    """Return the Proposition-2 round bound ``2(8 + 4n/⌊n^{ε/2}⌋)`` for reference.

    The factor 2 accounts for an edge costing two identifiers on the wire.
    """
    return 2.0 * a2_edge_set_cap(num_nodes, epsilon)


def lemma1_success_probability(num_nodes: int, epsilon: float) -> float:
    """Return Lemma 1's per-common-neighbour success probability ``3/(4 n^ε)``.

    Tests compare the measured per-apex catch rate of A2 on heavy-edge
    gadgets against this analytical floor.
    """
    if not 0.0 <= epsilon <= 1.0:
        raise ValueError(f"epsilon must lie in [0, 1], got {epsilon}")
    threshold = float(num_nodes) ** epsilon
    return 3.0 / (4.0 * max(1.0, threshold))
