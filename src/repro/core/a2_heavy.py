"""Algorithm A2: listing every ε-heavy triangle via 3-wise independent hashing.

Proposition 2 / Figure 1 of the paper.  The protocol has three steps:

1. Every node ``i`` samples a hash function ``h_i : V -> {0, .., ⌊n^{ε/2}⌋-1}``
   from a 3-wise independent family and sends its description (``O(log n)``
   bits) to all neighbours.
2. Every node ``j`` computes, for each neighbour ``a``, the edge set
   ``E_ja = {{j, l} ∈ E : h_a(l) = 0}`` and sends it to ``a`` — but only when
   ``|E_ja| <= 8 + 4n/⌊n^{ε/2}⌋`` (Lemma 1 shows the cap holds with the
   probability the analysis needs).
3. Every node ``i`` collects the received edges into ``F_i`` and outputs all
   triples whose three edges all appear in ``F_i``.

For an ε-heavy triangle ``{j, k, l}`` with heavy edge ``{j, k}``, each of
the ``>= n^ε`` common neighbours ``a`` of ``j`` and ``k`` independently
catches the triangle when ``h_a(k) = h_a(l) = 0`` and the caps hold, which
by Lemma 1 happens with probability at least ``3/(4 n^ε)`` — so *some*
common neighbour catches it with constant probability.  The communication
cost is dominated by step 2: at most ``8 + 4n/⌊n^{ε/2}⌋`` edges per link,
i.e. ``O(n^{1-ε/2})`` rounds.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ..congest.node import NodeContext
from ..congest.simulator import CongestSimulator
from ..congest.wire import edge_bits
from ..graphs.graph import Graph
from ..hashing.kwise import KWiseIndependentFamily
from ..types import Edge, make_edge
from .base import TriangleAlgorithm
from .parameters import a2_edge_set_cap, a2_hash_range


class HeavyHashingLister(TriangleAlgorithm):
    """Algorithm A2 (Proposition 2, Figure 1): list all ε-heavy triangles.

    Parameters
    ----------
    epsilon:
        The heaviness exponent ε.  Only ε-heavy triangles carry a listing
        guarantee; the composite Theorem-2 algorithm pairs A2 with A3.
    independence:
        Independence of the hash family (the analysis needs 3; exposed for
        the ablation that demonstrates pairwise independence is not enough
        for Lemma 1's conditioning argument).
    """

    name = "A2-heavy-hashing"
    model = "CONGEST"

    def __init__(self, epsilon: float, independence: int = 3) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError(f"epsilon must lie in [0, 1], got {epsilon}")
        if independence < 2:
            raise ValueError(f"independence must be at least 2, got {independence}")
        self._epsilon = epsilon
        self._independence = independence

    def describe_parameters(self) -> Dict[str, Any]:
        return {"epsilon": self._epsilon, "independence": self._independence}

    # ------------------------------------------------------------------
    # protocol
    # ------------------------------------------------------------------
    def _execute(self, simulator: CongestSimulator) -> bool:
        num_nodes = simulator.num_nodes
        hash_range = a2_hash_range(num_nodes, self._epsilon)
        edge_cap = a2_edge_set_cap(num_nodes, self._epsilon)
        # The family parameters (domain, range, prime) are functions of the
        # globally known n and ε, so every node derives the same family
        # locally; only the sampled coefficients travel on the wire.
        family = KWiseIndependentFamily(
            domain_size=num_nodes,
            range_size=hash_range,
            independence=self._independence,
        )

        # Step 1: sample and broadcast hash functions.
        def sample_hash(context: NodeContext) -> None:
            own_hash = family.sample(context.rng)
            context.state["hash"] = own_hash
            context.broadcast_bits(
                ("hash", own_hash.encode()), bits=family.description_bits()
            )

        simulator.for_each_node(sample_hash)
        simulator.run_phase("A2:send-hash-functions")

        # Step 2: every node filters its incident edges through each
        # neighbour's hash function and ships the small filtered sets.
        def send_filtered_edges(context: NodeContext) -> None:
            neighbor_hashes = {}
            for sender, payload in context.received():
                _, coefficients = payload
                neighbor_hashes[sender] = family.decode(coefficients)
            context.state["neighbor_hashes"] = neighbor_hashes
            own = context.node_id
            neighbors = context.sorted_neighbors()
            # Heavy-node fan-out: one filtered edge set per neighbour, shipped
            # through the batched plane in a single bulk_send.
            targets: List[int] = []
            payloads: List[Any] = []
            sizes: List[int] = []
            per_edge_bits = edge_bits(num_nodes)
            for target, target_hash in neighbor_hashes.items():
                filtered: List[Edge] = [
                    make_edge(own, other)
                    for other in neighbors
                    if target_hash(other) == 0
                ]
                if len(filtered) > edge_cap:
                    continue
                if not filtered:
                    continue
                targets.append(target)
                payloads.append(("edges", tuple(filtered)))
                sizes.append(len(filtered) * per_edge_bits)
            if targets:
                context.bulk_send(targets, payloads, bits=sizes)

        simulator.for_each_node(send_filtered_edges)
        simulator.run_phase("A2:send-filtered-edges")

        # Step 3: list triangles inside the received edge set.
        def list_local_triangles(context: NodeContext) -> None:
            received_edges: Set[Edge] = set()
            for _, payload in context.received():
                _, edges = payload
                received_edges.update(edges)
            for triangle in _triangles_in_edge_set(received_edges):
                context.output_triangle(*triangle)

        simulator.for_each_node(list_local_triangles)
        return False


def _triangles_in_edge_set(edges: Set[Edge]) -> List[Tuple[int, int, int]]:
    """Return all triples whose three edges are all contained in ``edges``.

    The received edge sets are small (each link contributes at most the
    Figure-1 cap), so a forward enumeration over an adjacency map is
    adequate.
    """
    adjacency: Dict[int, Set[int]] = {}
    for u, v in edges:
        adjacency.setdefault(u, set()).add(v)
        adjacency.setdefault(v, set()).add(u)
    triangles: List[Tuple[int, int, int]] = []
    vertices = sorted(adjacency)
    for u in vertices:
        higher_neighbors = sorted(w for w in adjacency[u] if w > u)
        for index, v in enumerate(higher_neighbors):
            for w in higher_neighbors[index + 1:]:
                if w in adjacency[v]:
                    triangles.append((u, v, w))
    return triangles


def expected_rounds(num_nodes: int, epsilon: float) -> float:
    """Return the Proposition-2 round bound ``2(8 + 4n/⌊n^{ε/2}⌋)`` for reference.

    The factor 2 accounts for an edge costing two identifiers on the wire.
    """
    return 2.0 * a2_edge_set_cap(num_nodes, epsilon)


def lemma1_success_probability(num_nodes: int, epsilon: float) -> float:
    """Return Lemma 1's per-common-neighbour success probability ``3/(4 n^ε)``.

    Tests compare the measured per-apex catch rate of A2 on heavy-edge
    gadgets against this analytical floor.
    """
    if not 0.0 <= epsilon <= 1.0:
        raise ValueError(f"epsilon must lie in [0, 1], got {epsilon}")
    threshold = float(num_nodes) ** epsilon
    return 3.0 / (4.0 * max(1.0, threshold))
