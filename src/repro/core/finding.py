"""Triangle finding in `O(n^{2/3} (log n)^{2/3})` rounds (Theorem 1).

The Theorem-1 algorithm is the sequential composition of Algorithm A1
(which finds *some* ε-heavy triangle with constant probability, if one
exists) and Algorithm A3 (which finds each non-heavy triangle with constant
probability), with ε chosen so that ``n^ε = n^{1/3}/(log n)^{2/3}``.  One
(A1, A3) pass therefore succeeds with constant probability whenever the
graph contains any triangle; repeating the pass a constant number of times
amplifies the success probability to ``1 - δ``.

Because the algorithm is one-sided (it never reports a non-triangle), a
practical run can stop as soon as any pass reports something; the
``stop_on_success`` flag controls whether the driver exploits this or always
performs the full repetition count (the latter is what the worst-case bound
charges, and what the benchmarks report by default so measured rounds
correspond to the theorem's formula).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from ..errors import ProtocolError
from ..graphs.graph import Graph
from .a1_sampling import HeavySamplingFinder
from .a3_light import LightTrianglesLister
from ..congest.backends import validate_backend, validate_chunk_bytes
from .base import combine_results, validate_kernel
from .output import AlgorithmResult
from .parameters import FindingParameters


class TriangleFinding:
    """The Theorem-1 triangle-finding algorithm (A1 + A3, repeated).

    Parameters
    ----------
    repetitions:
        Number of (A1, A3) passes.  ``None`` selects the constant that
        drives the success probability to 0.9 assuming a conservative 0.25
        single-pass success probability.
    budget_constant:
        Constant for A3's round budget.
    stop_on_success:
        Stop repeating as soon as some pass reports a triangle.  Defaults to
        ``False`` so measured costs reflect the worst-case composition the
        theorem describes.
    kernel:
        Execution kernel for the A1/A3 passes: ``"batched"`` (default)
        runs the direct-exchange fused kernels, ``"pernode"`` the previous
        per-node batched generation, ``"reference"`` the per-node
        closures.  Identical executions for the same seed.
    """

    name = "Theorem1-finding"
    model = "CONGEST"

    def __init__(
        self,
        repetitions: Optional[int] = None,
        budget_constant: float = 8.0,
        stop_on_success: bool = False,
        epsilon: Optional[float] = None,
        kernel: str = "batched",
        backend: str = "numpy",
        chunk_bytes: Optional[int] = None,
    ) -> None:
        if repetitions is not None and repetitions < 1:
            raise ProtocolError(
                f"repetitions must be at least 1 (or None for the "
                f"theorem's constant), got {repetitions}"
            )
        if budget_constant <= 0:
            raise ProtocolError(
                f"budget_constant must be positive, got {budget_constant}"
            )
        if epsilon is not None and not 0.0 <= epsilon <= 1.0:
            raise ProtocolError(
                f"epsilon must lie in [0, 1] (or None for the theorem's "
                f"choice), got {epsilon}"
            )
        self._repetitions = repetitions
        self._budget_constant = budget_constant
        self._stop_on_success = stop_on_success
        self._epsilon = epsilon
        self._kernel = validate_kernel(kernel)
        self._backend = validate_backend(backend)
        self._chunk_bytes = validate_chunk_bytes(chunk_bytes)

    def parameters_for(self, graph: Graph) -> FindingParameters:
        """Return the concrete Theorem-1 parameters used on ``graph``.

        Selection reads ``n`` and the degree array from the graph's CSR
        view (see :meth:`FindingParameters.for_graph`).
        """
        return FindingParameters.for_graph(
            graph,
            repetitions=self._repetitions,
            budget_constant=self._budget_constant,
            epsilon=self._epsilon,
        )

    def run(
        self, graph: Graph, seed: Optional[int | np.random.Generator] = None
    ) -> AlgorithmResult:
        """Run the finding algorithm and return the combined result."""
        parameters = self.parameters_for(graph)
        rng = (
            seed
            if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )
        sub_results: List[AlgorithmResult] = []
        for _ in range(parameters.repetitions):
            heavy_pass = HeavySamplingFinder(
                epsilon=parameters.epsilon,
                kernel=self._kernel,
                backend=self._backend,
                chunk_bytes=self._chunk_bytes,
            )
            light_pass = LightTrianglesLister(
                epsilon=parameters.epsilon,
                budget_constant=self._budget_constant,
                kernel=self._kernel,
                backend=self._backend,
                chunk_bytes=self._chunk_bytes,
            )
            heavy_result = heavy_pass.run(graph, seed=rng)
            light_result = light_pass.run(graph, seed=rng)
            sub_results.extend([heavy_result, light_result])
            if self._stop_on_success and (
                heavy_result.found_any() or light_result.found_any()
            ):
                break
        combined = combine_results(
            algorithm=self.name,
            model=self.model,
            results=sub_results,
            parameters=self._describe(parameters),
        )
        return combined

    def _describe(self, parameters: FindingParameters) -> Dict[str, Any]:
        return {
            "epsilon": parameters.epsilon,
            "heaviness_threshold": parameters.heaviness_threshold,
            "sample_cap": parameters.sample_cap,
            "repetitions": parameters.repetitions,
            "round_budget_per_pass": parameters.round_budget,
            "stop_on_success": self._stop_on_success,
            "kernel": self._kernel,
            "backend": self._backend,
            "chunk_bytes": self._chunk_bytes,
        }


def theorem1_round_bound(num_nodes: int) -> float:
    """Return the Theorem-1 closed-form round bound ``n^{2/3} (log n)^{2/3}``.

    This is the reference curve the scaling benchmark compares measured
    rounds against (constants omitted, base-2 logarithm).
    """
    import math

    n = float(max(2, num_nodes))
    return n ** (2.0 / 3.0) * math.log2(n) ** (2.0 / 3.0)
