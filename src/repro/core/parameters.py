"""Parameter selection for the paper's algorithms.

Every algorithm in Section 3 is parameterised by the heaviness exponent
``ε`` (and, for Algorithm A3, the goodness threshold ``r`` and a round
budget).  The theorems fix ε as a function of ``n``:

* Theorem 1 (finding):   ``n^ε = n^{1/3} / (log n)^{2/3}``,
* Theorem 2 (listing):   ``n^ε = n^{1/2} / (log n)^{2}``,

and the component analyses use

* Proposition 1 (A1): sample cap ``4 n^{1-ε}``,
* Proposition 2 (A2): hash range ``⌊n^{ε/2}⌋`` and edge-set cap
  ``8 + 4n / ⌊n^{ε/2}⌋``,
* Proposition 3 (A3): landmark probability ``1 / (9 n^ε)``, goodness
  threshold ``r = sqrt(54 n^{1+ε} log n)`` and round budget
  ``c (n^{1-ε} + n^{(1+ε)/2} log n)``.

The paper is asymptotic and leaves logarithm bases and constants free; this
module fixes concrete, documented choices (base-2 logarithms, explicit
constants) and clamps the formulas so they remain meaningful at the small
``n`` a Python simulator can reach.  All experiments read their parameters
from here so the choices live in exactly one place.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace as dataclasses_replace
from typing import TYPE_CHECKING

from ..errors import AnalysisError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..graphs.graph import Graph


def _log(n: int) -> float:
    """The logarithm used throughout the parameter formulas (base 2).

    Clamped below at 1.0 so tiny networks do not blow up the formulas
    (``log 2 = 1``; the paper's asymptotics only make sense for large n).
    """
    return max(1.0, math.log2(max(2, n)))


def heaviness_threshold_finding(num_nodes: int) -> float:
    """Return the Theorem-1 heaviness threshold ``n^ε = n^{1/3}/(log n)^{2/3}``.

    Clamped below at 1.0: a threshold under one triangle is meaningless.
    """
    if num_nodes < 1:
        raise AnalysisError(f"num_nodes must be positive, got {num_nodes}")
    value = num_nodes ** (1.0 / 3.0) / _log(num_nodes) ** (2.0 / 3.0)
    return max(1.0, value)


def heaviness_threshold_listing(num_nodes: int) -> float:
    """Return the Theorem-2 heaviness threshold ``n^ε = n^{1/2}/(log n)^{2}``.

    Clamped below at 1.0.
    """
    if num_nodes < 1:
        raise AnalysisError(f"num_nodes must be positive, got {num_nodes}")
    value = math.sqrt(num_nodes) / _log(num_nodes) ** 2
    return max(1.0, value)


def epsilon_from_threshold(num_nodes: int, threshold: float) -> float:
    """Convert a heaviness threshold ``n^ε`` back to the exponent ε.

    The exponent is clamped to ``[0, 1]`` which is the domain required by the
    ε-heavy definition.
    """
    if threshold < 1.0:
        raise AnalysisError(f"threshold must be at least 1, got {threshold}")
    if num_nodes < 2:
        return 0.0
    epsilon = math.log(threshold) / math.log(num_nodes)
    return min(1.0, max(0.0, epsilon))


def finding_epsilon(num_nodes: int) -> float:
    """Return the ε used by the Theorem-1 finding algorithm."""
    return epsilon_from_threshold(num_nodes, heaviness_threshold_finding(num_nodes))


def listing_epsilon(num_nodes: int) -> float:
    """Return the ε used by the Theorem-2 listing algorithm."""
    return epsilon_from_threshold(num_nodes, heaviness_threshold_listing(num_nodes))


def finding_epsilon_asymptotic() -> float:
    """Return the asymptotic Theorem-1 exponent ``ε = 1/3`` (log factors dropped).

    The paper's exact choice ``n^ε = n^{1/3}/(log n)^{2/3}`` is only
    meaningful once ``n^{1/3}`` dominates ``(log n)^{2/3}``; at the network
    sizes a Python simulator can reach the clamped formula collapses to
    ``ε = 0`` and hides the polynomial exponent the theorem is about.  The
    scaling experiments therefore use this asymptotic exponent (the choice
    only differs from the paper's by polylogarithmic factors).
    """
    return 1.0 / 3.0


def listing_epsilon_asymptotic() -> float:
    """Return the asymptotic Theorem-2 exponent ``ε = 1/2`` (log factors dropped).

    See :func:`finding_epsilon_asymptotic` for why the experiments prefer
    the asymptotic exponent at simulator-scale ``n``.
    """
    return 0.5


def a1_sampling_probability(num_nodes: int, epsilon: float) -> float:
    """Return A1's per-neighbour sampling probability ``n^{-ε}`` (clamped to 1)."""
    _validate_epsilon(epsilon)
    if num_nodes < 1:
        raise AnalysisError(f"num_nodes must be positive, got {num_nodes}")
    return min(1.0, float(num_nodes) ** (-epsilon))


def a1_sample_cap(num_nodes: int, epsilon: float) -> float:
    """Return A1's sample-size cap ``4 n^{1-ε}`` (Proposition 1)."""
    _validate_epsilon(epsilon)
    return 4.0 * float(num_nodes) ** (1.0 - epsilon)


def a2_hash_range(num_nodes: int, epsilon: float) -> int:
    """Return A2's hash range size ``⌊n^{ε/2}⌋`` (Figure 1), at least 1."""
    _validate_epsilon(epsilon)
    return max(1, math.floor(float(num_nodes) ** (epsilon / 2.0)))


def a2_edge_set_cap(num_nodes: int, epsilon: float) -> float:
    """Return A2's per-neighbour edge-set cap ``8 + 4n/⌊n^{ε/2}⌋`` (Figure 1)."""
    return 8.0 + 4.0 * num_nodes / a2_hash_range(num_nodes, epsilon)


def a3_landmark_probability(num_nodes: int, epsilon: float) -> float:
    """Return A3's landmark-selection probability ``1 / (9 n^ε)`` (Lemma 2)."""
    _validate_epsilon(epsilon)
    if num_nodes < 1:
        raise AnalysisError(f"num_nodes must be positive, got {num_nodes}")
    return min(1.0, 1.0 / (9.0 * float(num_nodes) ** epsilon))


def a3_goodness_threshold(num_nodes: int, epsilon: float) -> float:
    """Return A3's goodness threshold ``r = sqrt(54 n^{1+ε} log n)`` (Lemma 3)."""
    _validate_epsilon(epsilon)
    return math.sqrt(54.0 * float(num_nodes) ** (1.0 + epsilon) * _log(num_nodes))


def a3_round_budget(num_nodes: int, epsilon: float, budget_constant: float = 8.0) -> int:
    """Return A3's round budget ``c (n^{1-ε} + n^{(1+ε)/2} log n)``.

    The paper requires "some large enough constant c"; the default of 8 is
    comfortably above what the simulator needs on the workloads in the test
    suite while still aborting runaway executions.
    """
    _validate_epsilon(epsilon)
    if budget_constant <= 0:
        raise AnalysisError(f"budget_constant must be positive, got {budget_constant}")
    n = float(num_nodes)
    budget = budget_constant * (n ** (1.0 - epsilon) + n ** ((1.0 + epsilon) / 2.0) * _log(num_nodes))
    return max(1, math.ceil(budget))


def listing_repetitions(num_nodes: int, repetition_constant: float = 1.0) -> int:
    """Return the Theorem-2 repetition count ``⌈c log n⌉``.

    The paper's proof needs a "large constant" c to drive the per-triangle
    failure probability below ``1/n^4``; for experiments the constant is
    configurable because the asymptotically safe value makes small-n
    simulations needlessly slow.  The default of 1 already achieves empirical
    full recall on the workloads in the benchmark suite.
    """
    if repetition_constant <= 0:
        raise AnalysisError(
            f"repetition_constant must be positive, got {repetition_constant}"
        )
    return max(1, math.ceil(repetition_constant * _log(num_nodes)))


def finding_repetitions(success_probability: float = 0.9, single_run_success: float = 0.25) -> int:
    """Return how many (A1, A3) repetitions drive finding success to a target.

    Theorem 1 amplifies a constant single-run success probability to
    ``1 - δ`` by ``c`` independent repetitions; this helper computes the
    smallest c for a given (assumed) single-run success probability.
    """
    if not 0.0 < success_probability < 1.0:
        raise AnalysisError(
            f"success_probability must lie in (0, 1), got {success_probability}"
        )
    if not 0.0 < single_run_success < 1.0:
        raise AnalysisError(
            f"single_run_success must lie in (0, 1), got {single_run_success}"
        )
    failure_target = 1.0 - success_probability
    repetitions = math.log(failure_target) / math.log(1.0 - single_run_success)
    return max(1, math.ceil(repetitions))


@dataclass(frozen=True)
class FindingParameters:
    """The full parameter set of the Theorem-1 finding algorithm."""

    num_nodes: int
    epsilon: float
    heaviness_threshold: float
    sampling_probability: float
    sample_cap: float
    landmark_probability: float
    goodness_threshold: float
    round_budget: int
    repetitions: int

    @classmethod
    def for_graph_size(
        cls,
        num_nodes: int,
        repetitions: int | None = None,
        budget_constant: float = 8.0,
        epsilon: float | None = None,
    ) -> "FindingParameters":
        """Instantiate the Theorem-1 parameters for an n-node network.

        ``epsilon`` overrides the paper's formula (used by the scaling
        experiments, which prefer the asymptotic exponent — see
        :func:`finding_epsilon_asymptotic`).
        """
        if epsilon is None:
            epsilon = finding_epsilon(num_nodes)
        _validate_epsilon(epsilon)
        return cls(
            num_nodes=num_nodes,
            epsilon=epsilon,
            heaviness_threshold=float(num_nodes) ** epsilon,
            sampling_probability=a1_sampling_probability(num_nodes, epsilon),
            sample_cap=a1_sample_cap(num_nodes, epsilon),
            landmark_probability=a3_landmark_probability(num_nodes, epsilon),
            goodness_threshold=a3_goodness_threshold(num_nodes, epsilon),
            round_budget=a3_round_budget(num_nodes, epsilon, budget_constant),
            repetitions=repetitions if repetitions is not None else finding_repetitions(),
        )

    @classmethod
    def for_graph(
        cls,
        graph: "Graph",
        repetitions: int | None = None,
        budget_constant: float = 8.0,
        epsilon: float | None = None,
    ) -> "FindingParameters":
        """Instantiate the Theorem-1 parameters for a concrete workload.

        Reads ``n`` and the degree array from the graph's immutable CSR
        view and tightens the *recorded* sample cap with the observed
        maximum degree: a node can never sample more neighbours than it
        has, so ``min(4 n^{1-ε}, d_max)`` bounds the same executions while
        keeping the cap reported in experiment records meaningful on
        sparse workloads.  (A1 itself recomputes its cap from ε and ``n``;
        the clamp only ever lowers the cap into the region where it
        provably cannot bind, so execution is unchanged by construction.)
        """
        csr = graph.csr()
        parameters = cls.for_graph_size(
            csr.num_nodes,
            repetitions=repetitions,
            budget_constant=budget_constant,
            epsilon=epsilon,
        )
        d_max = csr.max_degree()
        if d_max and d_max < parameters.sample_cap:
            parameters = dataclasses_replace(parameters, sample_cap=float(d_max))
        return parameters


@dataclass(frozen=True)
class ListingParameters:
    """The full parameter set of the Theorem-2 listing algorithm."""

    num_nodes: int
    epsilon: float
    heaviness_threshold: float
    hash_range: int
    edge_set_cap: float
    landmark_probability: float
    goodness_threshold: float
    round_budget: int
    repetitions: int

    @classmethod
    def for_graph_size(
        cls,
        num_nodes: int,
        repetitions: int | None = None,
        repetition_constant: float = 1.0,
        budget_constant: float = 8.0,
        epsilon: float | None = None,
    ) -> "ListingParameters":
        """Instantiate the Theorem-2 parameters for an n-node network.

        ``epsilon`` overrides the paper's formula (used by the scaling
        experiments, which prefer the asymptotic exponent — see
        :func:`listing_epsilon_asymptotic`).
        """
        if epsilon is None:
            epsilon = listing_epsilon(num_nodes)
        _validate_epsilon(epsilon)
        return cls(
            num_nodes=num_nodes,
            epsilon=epsilon,
            heaviness_threshold=float(num_nodes) ** epsilon,
            hash_range=a2_hash_range(num_nodes, epsilon),
            edge_set_cap=a2_edge_set_cap(num_nodes, epsilon),
            landmark_probability=a3_landmark_probability(num_nodes, epsilon),
            goodness_threshold=a3_goodness_threshold(num_nodes, epsilon),
            round_budget=a3_round_budget(num_nodes, epsilon, budget_constant),
            repetitions=(
                repetitions
                if repetitions is not None
                else listing_repetitions(num_nodes, repetition_constant)
            ),
        )

    @classmethod
    def for_graph(
        cls,
        graph: "Graph",
        repetitions: int | None = None,
        repetition_constant: float = 1.0,
        budget_constant: float = 8.0,
        epsilon: float | None = None,
    ) -> "ListingParameters":
        """Instantiate the Theorem-2 parameters for a concrete workload.

        Reads ``n`` and the degree array from the graph's immutable CSR
        view and tightens the *recorded* per-link edge-set cap with the
        observed maximum degree: a node's filtered edge set is a subset of
        its incident edges, so ``min(8 + 4n/⌊n^{ε/2}⌋, d_max)`` bounds the
        same executions while keeping the cap reported in experiment
        records meaningful on sparse workloads.  (A2 itself recomputes its
        cap from ε and ``n``; the clamp only ever lowers the cap into the
        region where it provably cannot bind, so execution is unchanged by
        construction.)
        """
        csr = graph.csr()
        parameters = cls.for_graph_size(
            csr.num_nodes,
            repetitions=repetitions,
            repetition_constant=repetition_constant,
            budget_constant=budget_constant,
            epsilon=epsilon,
        )
        d_max = csr.max_degree()
        if d_max and d_max < parameters.edge_set_cap:
            parameters = dataclasses_replace(parameters, edge_set_cap=float(d_max))
        return parameters


def _validate_epsilon(epsilon: float) -> None:
    if not 0.0 <= epsilon <= 1.0:
        raise AnalysisError(f"epsilon must lie in [0, 1], got {epsilon}")
