"""Triangle listing in `O(n^{3/4} log n)` rounds (Theorem 2).

The Theorem-2 algorithm repeats ``⌈c log n⌉`` times the sequential
composition of Algorithm A2 (which lists each ε-heavy triangle with constant
probability) and Algorithm A3 (which lists each non-heavy triangle with
constant probability), with ε chosen so that ``n^ε = n^{1/2}/(log n)^2``.
Each triangle is therefore reported in each pass with constant probability,
and after ``⌈c log n⌉`` independent passes it is missed with probability at
most ``1/n^4``; a union bound over at most ``n^3`` triangles gives overall
success probability ``1 - 1/n``.

As required by the paper's output model, the final output of each node is
the union of its outputs across the passes.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from ..errors import ProtocolError
from ..graphs.graph import Graph
from .a2_heavy import HeavyHashingLister
from .a3_light import LightTrianglesLister
from ..congest.backends import validate_backend, validate_chunk_bytes
from .base import combine_results, validate_kernel
from .output import AlgorithmResult
from .parameters import ListingParameters


class TriangleListing:
    """The Theorem-2 triangle-listing algorithm ((A2, A3) × ⌈c log n⌉).

    Parameters
    ----------
    repetitions:
        Explicit repetition count.  ``None`` selects ``⌈c log2 n⌉`` with the
        given ``repetition_constant``.
    repetition_constant:
        The constant ``c`` in ``⌈c log n⌉`` when ``repetitions`` is None.
    budget_constant:
        Constant for A3's round budget.
    kernel:
        Execution kernel for the A2/A3 passes: ``"batched"`` (default)
        runs the direct-exchange fused kernels, ``"pernode"`` the previous
        per-node batched generation, ``"reference"`` the per-node
        closures.  Identical executions for the same seed.
    """

    name = "Theorem2-listing"
    model = "CONGEST"

    def __init__(
        self,
        repetitions: Optional[int] = None,
        repetition_constant: float = 1.0,
        budget_constant: float = 8.0,
        epsilon: Optional[float] = None,
        kernel: str = "batched",
        backend: str = "numpy",
        chunk_bytes: Optional[int] = None,
    ) -> None:
        if repetitions is not None and repetitions < 1:
            raise ProtocolError(
                f"repetitions must be at least 1 (or None for the "
                f"theorem's ⌈c log n⌉ choice), got {repetitions}"
            )
        if repetition_constant <= 0:
            raise ProtocolError(
                f"repetition_constant must be positive, got {repetition_constant}"
            )
        if budget_constant <= 0:
            raise ProtocolError(
                f"budget_constant must be positive, got {budget_constant}"
            )
        if epsilon is not None and not 0.0 <= epsilon <= 1.0:
            raise ProtocolError(
                f"epsilon must lie in [0, 1] (or None for the theorem's "
                f"choice), got {epsilon}"
            )
        self._repetitions = repetitions
        self._repetition_constant = repetition_constant
        self._budget_constant = budget_constant
        self._epsilon = epsilon
        self._kernel = validate_kernel(kernel)
        self._backend = validate_backend(backend)
        self._chunk_bytes = validate_chunk_bytes(chunk_bytes)

    def parameters_for(self, graph: Graph) -> ListingParameters:
        """Return the concrete Theorem-2 parameters used on ``graph``.

        Selection reads ``n`` and the degree array from the graph's CSR
        view (see :meth:`ListingParameters.for_graph`).
        """
        return ListingParameters.for_graph(
            graph,
            repetitions=self._repetitions,
            repetition_constant=self._repetition_constant,
            budget_constant=self._budget_constant,
            epsilon=self._epsilon,
        )

    def run(
        self, graph: Graph, seed: Optional[int | np.random.Generator] = None
    ) -> AlgorithmResult:
        """Run the listing algorithm and return the combined result."""
        parameters = self.parameters_for(graph)
        rng = (
            seed
            if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )
        sub_results: List[AlgorithmResult] = []
        for _ in range(parameters.repetitions):
            heavy_pass = HeavyHashingLister(
                epsilon=parameters.epsilon,
                kernel=self._kernel,
                backend=self._backend,
                chunk_bytes=self._chunk_bytes,
            )
            light_pass = LightTrianglesLister(
                epsilon=parameters.epsilon,
                budget_constant=self._budget_constant,
                kernel=self._kernel,
                backend=self._backend,
                chunk_bytes=self._chunk_bytes,
            )
            sub_results.append(heavy_pass.run(graph, seed=rng))
            sub_results.append(light_pass.run(graph, seed=rng))
        return combine_results(
            algorithm=self.name,
            model=self.model,
            results=sub_results,
            parameters=self._describe(parameters),
        )

    def _describe(self, parameters: ListingParameters) -> Dict[str, Any]:
        return {
            "epsilon": parameters.epsilon,
            "heaviness_threshold": parameters.heaviness_threshold,
            "hash_range": parameters.hash_range,
            "edge_set_cap": parameters.edge_set_cap,
            "repetitions": parameters.repetitions,
            "round_budget_per_pass": parameters.round_budget,
            "kernel": self._kernel,
            "backend": self._backend,
            "chunk_bytes": self._chunk_bytes,
        }


def theorem2_round_bound(num_nodes: int) -> float:
    """Return the Theorem-2 closed-form round bound ``n^{3/4} log n``.

    Reference curve for the scaling benchmark (constants omitted, base-2
    logarithm).
    """
    import math

    n = float(max(2, num_nodes))
    return n ** (3.0 / 4.0) * math.log2(n)
