"""The paper's contribution: distributed triangle finding and listing.

This package contains the three component algorithms (A1, A2, A3 /
``A(X, r)``), their compositions into the Theorem-1 finding and Theorem-2
listing algorithms, the baselines they are compared against, and the
lower-bound accounting machinery of Section 4.
"""

from .a1_sampling import HeavySamplingFinder
from .a2_heavy import HeavyHashingLister
from .a3_light import LightTrianglesLister, run_axr
from .base import TriangleAlgorithm, combine_results
from .baselines import LocalListing, NaiveTwoHopListing, naive_round_bound
from .clique_dolev import DolevCliqueListing, dolev_round_bound
from .counting import CountingResult, TriangleCounting
from .finding import TriangleFinding, theorem1_round_bound
from .listing import TriangleListing, theorem2_round_bound
from .lower_bounds import (
    InformationAccounting,
    account_information,
    expected_triangles_gnp_half,
    node_receive_capacity_bits,
    proposition5_asymptotic_curve,
    proposition5_information_bound,
    proposition5_round_lower_bound,
    theorem3_asymptotic_curve,
    theorem3_information_bound,
    theorem3_round_lower_bound,
)
from .output import AlgorithmResult, TriangleOutput
from .parameters import (
    FindingParameters,
    ListingParameters,
    a1_sample_cap,
    a1_sampling_probability,
    a2_edge_set_cap,
    a2_hash_range,
    a3_goodness_threshold,
    a3_landmark_probability,
    a3_round_budget,
    finding_epsilon,
    finding_epsilon_asymptotic,
    finding_repetitions,
    heaviness_threshold_finding,
    heaviness_threshold_listing,
    listing_epsilon,
    listing_epsilon_asymptotic,
    listing_repetitions,
)

__all__ = [
    "HeavySamplingFinder",
    "HeavyHashingLister",
    "LightTrianglesLister",
    "run_axr",
    "TriangleAlgorithm",
    "combine_results",
    "LocalListing",
    "NaiveTwoHopListing",
    "naive_round_bound",
    "DolevCliqueListing",
    "dolev_round_bound",
    "CountingResult",
    "TriangleCounting",
    "TriangleFinding",
    "theorem1_round_bound",
    "TriangleListing",
    "theorem2_round_bound",
    "InformationAccounting",
    "account_information",
    "expected_triangles_gnp_half",
    "node_receive_capacity_bits",
    "proposition5_asymptotic_curve",
    "proposition5_information_bound",
    "proposition5_round_lower_bound",
    "theorem3_asymptotic_curve",
    "theorem3_information_bound",
    "theorem3_round_lower_bound",
    "AlgorithmResult",
    "TriangleOutput",
    "FindingParameters",
    "ListingParameters",
    "a1_sample_cap",
    "a1_sampling_probability",
    "a2_edge_set_cap",
    "a2_hash_range",
    "a3_goodness_threshold",
    "a3_landmark_probability",
    "a3_round_budget",
    "finding_epsilon",
    "finding_epsilon_asymptotic",
    "finding_repetitions",
    "heaviness_threshold_finding",
    "heaviness_threshold_listing",
    "listing_epsilon",
    "listing_epsilon_asymptotic",
    "listing_repetitions",
]
