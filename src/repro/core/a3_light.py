"""Algorithm A3: listing the triangles that are *not* ε-heavy.

Proposition 3 / Figure 2 of the paper — the main technical contribution of
the upper-bound section.  The algorithm has two layers:

``A(X, r)`` (Figure 2)
    Given a landmark set ``X ⊆ V`` (each node knows whether it is a
    landmark) and a threshold ``r``, list every triangle whose three edges
    lie in ``∆(X)`` — the set of vertex pairs with no common neighbour
    inside ``X``.  The procedure works on a shrinking active set ``U``
    (initially ``V``):

    1. every node announces whether it is in ``X`` (one bit),
    2. every node sends ``N(k) ∩ X`` to all neighbours (≤ ``|X|`` rounds) —
       afterwards a node can test ``{j, l} ∈ ∆(X)`` for any two of *its own*
       neighbours ``j, l``,
    4.1. every node ``k ∈ U`` computes ``S(j, k) = {l ∈ U : {j,l} ∈ ∆(X),
       {k,l} ∈ E}`` for each neighbour ``j ∈ U`` and ships it to ``j``
       whenever ``|S(j, k)| ≤ r``; the receiver lists the triangles this
       reveals,
    4.2. a node ``j`` is *r-good* when at most ``r`` of its neighbours kept
       ``S(j, k)`` to themselves (``|S(j,k)| > r``),
    4.3. every r-good node ``j`` sends that set of withholding neighbours,
       ``V(j)``, to its neighbours, which list the triangles it reveals,
    4.4/4.5. the r-good nodes retire from ``U`` and everyone learns the new
       membership; the loop repeats on the residual graph.

    Lemma 3 shows that for a random ``X`` at least half the nodes of any
    ``U`` are r-good (w.h.p.), so the loop terminates after ``O(log n)``
    iterations and the total cost is ``O(|X| + r log n)`` rounds.

``A3`` (Proposition 3)
    Pick ``X`` by including each node independently with probability
    ``1/(9 n^ε)`` and run ``A(X, r)`` with ``r = sqrt(54 n^{1+ε} log n)``,
    aborting if the round budget ``c (n^{1-ε} + n^{(1+ε)/2} log n)`` is
    exceeded.  Lemma 2 shows every non-heavy triangle has all three edges in
    ``∆(X)`` with probability ≥ 2/3, so each such triangle is listed with
    constant probability.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Set

import numpy as np

from ..congest.backends import active_backend, chunk_rows
from ..congest.node import NodeContext, emit_grouped_keys
from ..congest.simulator import CongestSimulator
from ..congest.wire import (
    A3_IN_U_SCHEMA,
    A3_IN_X_SCHEMA,
    A3_NX_SCHEMA,
    A3_S_SCHEMA,
    A3_V_SCHEMA,
    id_bits,
)
from ..errors import RoundLimitExceededError
from ..types import triangle_keys
from .base import TriangleAlgorithm, dense_pair_matrix_worthwhile, validate_kernel
from .parameters import (
    a3_goodness_threshold,
    a3_landmark_probability,
    a3_round_budget,
)


def _axr_max_iterations(num_nodes: int) -> int:
    """Default while-loop cap: twice the Lemma-3 ``O(log n)`` guarantee."""
    return 2 * max(1, math.ceil(math.log2(max(2, num_nodes)))) + 2


def run_axr(
    simulator: CongestSimulator,
    goodness_threshold: float,
    max_iterations: Optional[int] = None,
    kernel: str = "batched",
) -> bool:
    """Run Algorithm ``A(X, r)`` (Figure 2) on ``simulator``.

    Preconditions: every node context's ``state["in_X"]`` has been set (the
    landmark indicator is each node's private knowledge, exactly as the
    paper requires).

    Parameters
    ----------
    simulator:
        The CONGEST simulator to drive.  Its round limit, if any, is
        honoured: budget exhaustion propagates as
        :class:`~repro.errors.RoundLimitExceededError` to the caller.
    goodness_threshold:
        The threshold ``r``.
    max_iterations:
        Safety cap on while-loop iterations; defaults to ``2 log2 n + 2``
        (twice the Lemma-3 guarantee, to accommodate unlucky landmark sets
        without looping forever).
    kernel:
        ``"batched"`` (default) stages every phase's traffic as columnar
        batches, evaluates the ∆(X) tests as one disjointness matrix, and
        consumes the S/V/announcement phases on the direct-exchange path
        (whole-network edge-membership oracle calls, no per-node inboxes);
        ``"pernode"`` keeps the previous batched generation's per-node
        inbox views and receiver loops; ``"reference"`` runs the per-node
        closures.  All kernels execute identically (same rounds, bits and
        outputs).

    Returns
    -------
    bool
        ``True`` when the loop stopped early because no node was r-good in
        some iteration (no further progress possible), ``False`` otherwise.
    """
    validate_kernel(kernel)
    if kernel == "batched":
        return _run_axr_direct(simulator, goodness_threshold, max_iterations)
    if kernel == "pernode":
        return _run_axr_pernode(simulator, goodness_threshold, max_iterations)
    return _run_axr_reference(simulator, goodness_threshold, max_iterations)


def _run_axr_reference(
    simulator: CongestSimulator,
    goodness_threshold: float,
    max_iterations: Optional[int] = None,
) -> bool:
    """The per-node closure implementation of ``A(X, r)`` (Figure 2)."""
    num_nodes = simulator.num_nodes
    node_id_bits = id_bits(num_nodes)
    if max_iterations is None:
        max_iterations = _axr_max_iterations(num_nodes)

    # Step 1: announce landmark membership.
    def announce_landmark(context: NodeContext) -> None:
        context.broadcast(("in_X", bool(context.state.get("in_X", False))), bits=1)

    simulator.for_each_node(announce_landmark)
    simulator.run_phase("A(X,r):1-announce-X")

    def record_landmark_neighbors(context: NodeContext) -> None:
        landmark_neighbors: Set[int] = set()
        for sender, payload in context.received():
            _, is_landmark = payload
            if is_landmark:
                landmark_neighbors.add(sender)
        if context.state.get("in_X", False):
            # A node's own membership also matters when it tests pairs of
            # its neighbours: it is a common neighbour of each such pair.
            context.state["self_is_landmark"] = True
        context.state["landmark_neighbors"] = landmark_neighbors

    simulator.for_each_node(record_landmark_neighbors)

    # Step 2: ship N(k) ∩ X to every neighbour.
    def send_landmark_neighborhood(context: NodeContext) -> None:
        landmark_neighbors = sorted(context.state["landmark_neighbors"])
        if context.state.get("in_X", False):
            # From a neighbour's perspective, "N(k) ∩ X" is what it needs to
            # evaluate ∆(X); k itself being a landmark is visible to the
            # neighbour already (step 1), so only the neighbourhood is sent.
            pass
        payload_bits = max(1, len(landmark_neighbors) * node_id_bits)
        context.broadcast(("NX", tuple(landmark_neighbors)), bits=payload_bits)

    simulator.for_each_node(send_landmark_neighborhood)
    simulator.run_phase("A(X,r):2-send-X-neighbourhoods")

    def record_neighbor_landmark_sets(context: NodeContext) -> None:
        per_neighbor: Dict[int, frozenset] = {}
        for sender, payload in context.received():
            _, landmark_ids = payload
            per_neighbor[sender] = frozenset(landmark_ids)
        context.state["neighbor_landmark_sets"] = per_neighbor
        context.state["in_U"] = True
        context.state["neighbors_in_U"] = set(context.neighbors)

    simulator.for_each_node(record_neighbor_landmark_sets)

    def pair_in_delta(context: NodeContext, j: int, l: int) -> bool:
        """Evaluate ``{j, l} ∈ ∆(X)`` from this node's local knowledge.

        Both ``j`` and ``l`` are neighbours of the evaluating node, which
        therefore knows ``N(j) ∩ X`` and ``N(l) ∩ X`` (step 2): the pair is
        in ``∆(X)`` exactly when those sets are disjoint.
        """
        sets = context.state["neighbor_landmark_sets"]
        nj = sets.get(j, frozenset())
        nl = sets.get(l, frozenset())
        return not (nj & nl)

    truncated_by_progress = False
    for _ in range(max_iterations):
        any_active = any(ctx.state["in_U"] for ctx in simulator.contexts)
        if not any_active:
            break

        # Step 4.1 — compute and ship the S(j, k) sets.
        def compute_and_send_s(context: NodeContext) -> None:
            if not context.state["in_U"]:
                return
            active_neighbors = context.state["neighbors_in_U"]
            own_active_neighbors = sorted(active_neighbors)
            for j in own_active_neighbors:
                s_set: List[int] = [
                    l
                    for l in own_active_neighbors
                    if l != j and pair_in_delta(context, j, l)
                ]
                if len(s_set) <= goodness_threshold:
                    payload_bits = max(1, len(s_set) * node_id_bits)
                    context.send(j, ("S", tuple(s_set)), bits=payload_bits)

        simulator.for_each_node(compute_and_send_s)
        simulator.run_phase("A(X,r):4.1-send-S")

        # Receivers list revealed triangles and compute V(j) (step 4.2).
        def process_s_and_decide_goodness(context: NodeContext) -> None:
            if not context.state["in_U"]:
                context.state["is_good"] = False
                return
            received_from: Set[int] = set()
            for sender, payload in context.received():
                _, s_set = payload
                received_from.add(sender)
                for third in s_set:
                    if third in context.neighbors and third != context.node_id:
                        context.output_triangle(context.node_id, sender, third)
            withholding = {
                k
                for k in context.state["neighbors_in_U"]
                if k not in received_from
            }
            context.state["withholding_neighbors"] = withholding
            context.state["is_good"] = len(withholding) <= goodness_threshold

        simulator.for_each_node(process_s_and_decide_goodness)

        # Step 4.3 — r-good nodes ship V(j).
        def send_withholding_sets(context: NodeContext) -> None:
            if not context.state["in_U"] or not context.state["is_good"]:
                return
            withholding = sorted(context.state["withholding_neighbors"])
            if not withholding:
                return
            payload_bits = max(1, len(withholding) * node_id_bits)
            for neighbor in context.state["neighbors_in_U"]:
                context.send(neighbor, ("V", tuple(withholding)), bits=payload_bits)

        simulator.for_each_node(send_withholding_sets)
        simulator.run_phase("A(X,r):4.3-send-V")

        def process_withholding_sets(context: NodeContext) -> None:
            for sender, payload in context.received():
                tag, withheld = payload
                if tag != "V":
                    continue
                for third in withheld:
                    if third in context.neighbors and third != context.node_id:
                        context.output_triangle(context.node_id, sender, third)

        simulator.for_each_node(process_withholding_sets)

        # Steps 4.4 / 4.5 — good nodes retire; everyone announces membership.
        retired_this_round = [
            ctx.node_id
            for ctx in simulator.contexts
            if ctx.state["in_U"] and ctx.state["is_good"]
        ]

        def retire_and_announce(context: NodeContext) -> None:
            if context.state["in_U"] and context.state["is_good"]:
                context.state["in_U"] = False
            context.broadcast(("in_U", context.state["in_U"]), bits=1)

        simulator.for_each_node(retire_and_announce)
        simulator.run_phase("A(X,r):4.5-announce-U")

        def update_neighbor_membership(context: NodeContext) -> None:
            still_active: Set[int] = set()
            for sender, payload in context.received():
                _, in_u = payload
                if in_u:
                    still_active.add(sender)
            context.state["neighbors_in_U"] = still_active

        simulator.for_each_node(update_neighbor_membership)

        if not retired_this_round:
            # No node was r-good: the configuration is now static and more
            # iterations cannot reveal anything new (the landmark set failed
            # Lemma 3's guarantee).  Stop rather than loop until the budget.
            truncated_by_progress = True
            break

    return truncated_by_progress


def _landmark_incidence(
    indptr: np.ndarray, indices: np.ndarray, in_x: np.ndarray
) -> Optional[np.ndarray]:
    """Return ``B[v, i] = (landmark i ∈ N(v))``, or ``None`` for empty X."""
    num_nodes = in_x.shape[0]
    landmarks = np.flatnonzero(in_x)
    if landmarks.shape[0] == 0:
        return None
    return active_backend().landmark_incidence(
        indptr, indices, landmarks, num_nodes
    )


def _make_disjointness(
    incidence: Optional[np.ndarray], num_nodes: int, degrees: np.ndarray
):
    """Return ``(block, full)`` evaluators of ``D[j, l] = ({j, l} ∈ ∆(X))``.

    This is the test every node evaluates from its step-2 knowledge: the
    landmark neighbourhoods of ``j`` and ``l`` are disjoint.  With
    ``B[v, i]`` marking landmark ``i`` adjacent to ``v``, intersection
    sizes are ``B·Bᵀ`` products over the (small) landmark dimension — done
    once for all pairs when the n×n precompute amortises (dense graphs),
    or per neighbour-row block on demand (sparse ones, where most pairs
    are never consulted).

    ``block(vertices)`` returns the pair submatrix over ``vertices``;
    ``full`` is the whole n×n matrix when the dense precompute was used
    (consumed row-wise by the direct kernel's receiver-major step 4.1) and
    ``None`` otherwise.
    """
    if dense_pair_matrix_worthwhile(num_nodes, degrees):
        if incidence is None:
            disjoint = np.ones((num_nodes, num_nodes), dtype=bool)
        else:
            # Stream the B·Bᵀ product in bounded row blocks: the boolean
            # result is n² bytes, but the int64 product intermediate is 8×
            # that — chunking keeps it within the active chunk_bytes budget
            # instead of materialising the full n×n int64 matrix.
            disjoint = np.empty((num_nodes, num_nodes), dtype=bool)
            transposed = incidence.T
            row_block = chunk_rows(8 * num_nodes)
            for start in range(0, num_nodes, row_block):
                end = min(num_nodes, start + row_block)
                disjoint[start:end] = (incidence[start:end] @ transposed) == 0

        def block(vertices: np.ndarray) -> np.ndarray:
            return disjoint[np.ix_(vertices, vertices)]

        return block, disjoint
    if incidence is None:
        return (
            lambda vertices: np.ones(
                (vertices.shape[0], vertices.shape[0]), dtype=bool
            ),
            None,
        )

    def block(vertices: np.ndarray) -> np.ndarray:
        rows = incidence[vertices]
        return (rows @ rows.T) == 0

    return block, None


def _run_axr_pernode(
    simulator: CongestSimulator,
    goodness_threshold: float,
    max_iterations: Optional[int] = None,
) -> bool:
    """The per-node batched kernel: columnar phases, matrix ∆(X), inbox views.

    Phase for phase the same execution as :func:`_run_axr_reference` (the
    differential suite enforces identical round counts, link-bit maxima and
    outputs); message production runs as array programs over the CSR rows
    but every receiver still consumes its own typed inbox view.
    """
    num_nodes = simulator.num_nodes
    node_id_bits = id_bits(num_nodes)
    if max_iterations is None:
        max_iterations = _axr_max_iterations(num_nodes)
    csr = simulator.graph.csr()
    indptr, indices = csr.indptr, csr.indices
    degrees = np.diff(indptr)
    contexts = simulator.contexts
    all_nodes = np.arange(num_nodes, dtype=np.int64)
    broadcast_src = np.repeat(all_nodes, degrees)

    in_x = np.fromiter(
        (bool(context.state.get("in_X", False)) for context in contexts),
        dtype=bool,
        count=num_nodes,
    )

    # Step 1: announce landmark membership (one bit per incident edge).
    if broadcast_src.shape[0]:
        simulator.stage_columns(
            A3_IN_X_SCHEMA,
            broadcast_src,
            indices,
            {"flag": in_x[broadcast_src].astype(np.int64)},
        )
    simulator.run_phase("A(X,r):1-announce-X")

    # Step 2: ship N(k) ∩ X to every neighbour.  Every node's landmark
    # neighbourhood is its sorted CSR row filtered through the step-1
    # flags, tiled once per neighbour.
    landmark_rows = [
        indices[indptr[node] : indptr[node + 1]][
            in_x[indices[indptr[node] : indptr[node + 1]]]
        ]
        for node in range(num_nodes)
    ]
    landmark_counts = np.asarray(
        [row.shape[0] for row in landmark_rows], dtype=np.int64
    )
    if broadcast_src.shape[0]:
        tiled = [
            np.tile(landmark_rows[node], int(degrees[node]))
            for node in range(num_nodes)
            if degrees[node]
        ]
        simulator.stage_columns(
            A3_NX_SCHEMA,
            broadcast_src,
            indices,
            {
                "member": np.concatenate(tiled)
                if tiled
                else np.empty(0, dtype=np.int64)
            },
            lengths=landmark_counts[broadcast_src],
        )
    simulator.run_phase("A(X,r):2-send-X-neighbourhoods")

    # The ∆(X) membership test, as a per-block evaluator (precomputed for
    # all pairs on dense graphs, on demand on sparse ones).
    disjoint_block, _ = _make_disjointness(
        _landmark_incidence(indptr, indices, in_x), num_nodes, degrees
    )

    in_u = np.ones(num_nodes, dtype=bool)
    truncated_by_progress = False
    for _ in range(max_iterations):
        if not in_u.any():
            break
        active_nodes = np.flatnonzero(in_u)
        active_rows = {
            int(node): indices[indptr[node] : indptr[node + 1]][
                in_u[indices[indptr[node] : indptr[node + 1]]]
            ]
            for node in active_nodes.tolist()
        }

        # Step 4.1 — compute and ship the S(j, k) sets.
        sender_nodes: List[int] = []
        sender_counts: List[int] = []
        target_chunks: List[np.ndarray] = []
        length_chunks: List[np.ndarray] = []
        member_chunks: List[np.ndarray] = []
        for node in active_nodes.tolist():
            active_neighbors = active_rows[node]
            if active_neighbors.shape[0] == 0:
                continue
            candidate = disjoint_block(active_neighbors)
            np.fill_diagonal(candidate, False)
            set_sizes = candidate.sum(axis=1)
            shipped = set_sizes <= goodness_threshold
            if not shipped.any():
                continue
            sender_nodes.append(node)
            targets = active_neighbors[shipped]
            sender_counts.append(int(targets.shape[0]))
            target_chunks.append(targets)
            length_chunks.append(set_sizes[shipped])
            member_chunks.append(
                active_neighbors[np.nonzero(candidate[shipped])[1]]
            )
        if sender_nodes:
            lengths = np.concatenate(length_chunks)
            simulator.stage_columns(
                A3_S_SCHEMA,
                np.repeat(
                    np.asarray(sender_nodes, dtype=np.int64),
                    np.asarray(sender_counts, dtype=np.int64),
                ),
                np.concatenate(target_chunks),
                {
                    "member": np.concatenate(member_chunks)
                    if lengths.sum()
                    else np.empty(0, dtype=np.int64)
                },
                lengths=lengths,
                bits=np.maximum(lengths * node_id_bits, 1),
            )
        simulator.run_phase("A(X,r):4.1-send-S")

        # Receivers list revealed triangles and compute V(j) (step 4.2).
        is_good = np.zeros(num_nodes, dtype=bool)
        withholding_sets: Dict[int, np.ndarray] = {}
        for node in active_nodes.tolist():
            context = contexts[node]
            row = indices[indptr[node] : indptr[node + 1]]
            view = context.received_columns(A3_S_SCHEMA)
            if view.count:
                thirds = view.column("member")
                senders_per_third = np.repeat(view.senders, view.lengths)
                revealed = (thirds != node) & np.isin(thirds, row)
                if revealed.any():
                    context.output_triangles(
                        np.full(int(revealed.sum()), node, dtype=np.int64),
                        senders_per_third[revealed],
                        thirds[revealed],
                    )
            active_neighbors = active_rows[node]
            withheld = active_neighbors[
                np.isin(active_neighbors, view.senders, invert=True)
            ]
            withholding_sets[node] = withheld
            is_good[node] = withheld.shape[0] <= goodness_threshold

        # Step 4.3 — r-good nodes ship V(j) to their active neighbours.
        sender_nodes = []
        sender_counts = []
        target_chunks = []
        member_chunks = []
        set_size_list: List[int] = []
        for node in active_nodes.tolist():
            if not is_good[node]:
                continue
            withheld = withholding_sets[node]
            if withheld.shape[0] == 0:
                continue
            active_neighbors = active_rows[node]
            if active_neighbors.shape[0] == 0:
                continue
            sender_nodes.append(node)
            sender_counts.append(int(active_neighbors.shape[0]))
            target_chunks.append(active_neighbors)
            member_chunks.append(np.tile(withheld, active_neighbors.shape[0]))
            set_size_list.append(int(withheld.shape[0]))
        if sender_nodes:
            counts = np.asarray(sender_counts, dtype=np.int64)
            sizes = np.asarray(set_size_list, dtype=np.int64)
            simulator.stage_columns(
                A3_V_SCHEMA,
                np.repeat(np.asarray(sender_nodes, dtype=np.int64), counts),
                np.concatenate(target_chunks),
                {"member": np.concatenate(member_chunks)},
                lengths=np.repeat(sizes, counts),
                bits=np.repeat(np.maximum(sizes * node_id_bits, 1), counts),
            )
        simulator.run_phase("A(X,r):4.3-send-V")

        for node in active_nodes.tolist():
            context = contexts[node]
            view = context.received_columns(A3_V_SCHEMA)
            if view.count == 0:
                continue
            row = indices[indptr[node] : indptr[node + 1]]
            thirds = view.column("member")
            senders_per_third = np.repeat(view.senders, view.lengths)
            revealed = (thirds != node) & np.isin(thirds, row)
            if revealed.any():
                context.output_triangles(
                    np.full(int(revealed.sum()), node, dtype=np.int64),
                    senders_per_third[revealed],
                    thirds[revealed],
                )

        # Steps 4.4 / 4.5 — good nodes retire; everyone announces membership.
        retired_any = bool((in_u & is_good).any())
        in_u = in_u & ~is_good
        if broadcast_src.shape[0]:
            simulator.stage_columns(
                A3_IN_U_SCHEMA,
                broadcast_src,
                indices,
                {"flag": in_u[broadcast_src].astype(np.int64)},
            )
        simulator.run_phase("A(X,r):4.5-announce-U")

        if not retired_any:
            # No node was r-good: the configuration is now static and more
            # iterations cannot reveal anything new (the landmark set failed
            # Lemma 3's guarantee).  Stop rather than loop until the budget.
            truncated_by_progress = True
            break

    return truncated_by_progress


#: Approximate bytes of intermediates per element in the fused receiver
#: sweeps (receivers/senders/thirds/keys int64 plus the hit masks): the
#: per-block element budget is the active ``chunk_bytes`` divided by this.
#: Chunks keep every intermediate array cache-resident — on the dense
#: workloads a phase carries tens of millions of elements, and streaming
#: ten full-size temporaries through DRAM measures ~5x slower than the
#: same arithmetic over cache-sized blocks.
_FUSED_SWEEP_BYTES_PER_ELEMENT = 16


def _fused_chunk_elements() -> int:
    return chunk_rows(_FUSED_SWEEP_BYTES_PER_ELEMENT, minimum=4096)


def _emit_revealed_triangles(simulator, csr, channel) -> None:
    """List the triangles one delivered S/V channel reveals, fused.

    A message element ``third`` from sender ``k`` reveals the triangle
    ``{receiver, k, third}`` exactly when ``third`` is a neighbour of the
    receiver (steps 4.1/4.3 of Figure 2).  The membership test is the
    vectorized adjacency oracle (:meth:`~repro.graphs.csr.CSRGraph.has_edges`,
    whose self-pairs are always ``False``, covering the ``third ≠
    receiver`` guard); hit triples are canonicalised arithmetically into
    triangle keys (the three vertices are pairwise distinct: the sender
    neighbours the receiver and the third neighbours both).  The sweep
    runs over message-aligned element blocks so every temporary stays
    cache-resident, emitting each block's grouped hits as bulk key
    appends.
    """
    if channel.count == 0:
        return
    num_nodes = simulator.num_nodes
    contexts = simulator.contexts
    thirds = channel.data["member"]
    offsets = channel.offsets
    dst = channel.dst
    src = channel.src
    lengths = channel.lengths
    message_count = channel.count
    message_start = 0
    chunk_elements = _fused_chunk_elements()
    while message_start < message_count:
        element_start = int(offsets[message_start])
        message_end = int(
            np.searchsorted(
                offsets, element_start + chunk_elements, side="left"
            )
        )
        message_end = max(message_end, message_start + 1)
        message_end = min(message_end, message_count)
        element_end = int(offsets[message_end])
        if element_end == element_start:
            message_start = message_end
            continue
        block_lengths = lengths[message_start:message_end]
        block_thirds = thirds[element_start:element_end]
        block_receivers = np.repeat(dst[message_start:message_end], block_lengths)
        revealed = csr.has_edges(block_receivers, block_thirds)
        hits = np.flatnonzero(revealed)
        if hits.shape[0]:
            block_senders = np.repeat(src[message_start:message_end], block_lengths)
            hit_receivers = block_receivers[hits]
            hit_senders = block_senders[hits]
            hit_thirds = block_thirds[hits]
            low = np.minimum(hit_senders, hit_thirds)
            high = np.maximum(hit_senders, hit_thirds)
            lo = np.minimum(low, hit_receivers)
            hi = np.maximum(high, hit_receivers)
            mid = hit_receivers + hit_senders + hit_thirds - lo - hi
            keys = triangle_keys(lo, mid, hi, num_nodes)
            emit_grouped_keys(contexts, hit_receivers, keys)
        message_start = message_end


def _run_axr_direct(
    simulator: CongestSimulator,
    goodness_threshold: float,
    max_iterations: Optional[int] = None,
) -> bool:
    """The direct-exchange kernel for ``A(X, r)``: fused receivers throughout.

    Same staged traffic, phase for phase, as :func:`_run_axr_pernode` — the
    differential suite pins all three kernels together — but every phase
    runs through :meth:`~repro.congest.simulator.CongestSimulator.exchange_phase`:

    * the ``in_X``/``in_U`` announcements and the ``N(k) ∩ X``
      neighbourhoods are staged for accounting and never grouped, let
      alone delivered per node (the kernel already holds the flag arrays
      they communicate);
    * S and V processing consume the destination-grouped channel columns
      with one whole-network edge-membership oracle call each
      (:func:`_emit_revealed_triangles`);
    * the withholding sets ``V(j)`` of step 4.2 fall out of one sorted-key
      membership test between the active directed edges and the received
      (receiver, sender) pairs — no per-node ``np.isin`` scans.
    """
    num_nodes = simulator.num_nodes
    node_id_bits = id_bits(num_nodes)
    if max_iterations is None:
        max_iterations = _axr_max_iterations(num_nodes)
    csr = simulator.graph.csr()
    indptr, indices = csr.indptr, csr.indices
    degrees = np.diff(indptr)
    contexts = simulator.contexts
    all_nodes = np.arange(num_nodes, dtype=np.int64)
    broadcast_src = np.repeat(all_nodes, degrees)
    n64 = np.int64(num_nodes)

    in_x = np.fromiter(
        (bool(context.state.get("in_X", False)) for context in contexts),
        dtype=bool,
        count=num_nodes,
    )

    # Step 1: announce landmark membership (one bit per incident edge).
    if broadcast_src.shape[0]:
        simulator.stage_columns(
            A3_IN_X_SCHEMA,
            broadcast_src,
            indices,
            {"flag": in_x[broadcast_src].astype(np.int64)},
        )
    simulator.exchange_phase("A(X,r):1-announce-X")

    # Step 2: ship N(k) ∩ X to every neighbour.
    landmark_rows = [
        indices[indptr[node] : indptr[node + 1]][
            in_x[indices[indptr[node] : indptr[node + 1]]]
        ]
        for node in range(num_nodes)
    ]
    landmark_counts = np.asarray(
        [row.shape[0] for row in landmark_rows], dtype=np.int64
    )
    if broadcast_src.shape[0]:
        tiled = [
            np.tile(landmark_rows[node], int(degrees[node]))
            for node in range(num_nodes)
            if degrees[node]
        ]
        simulator.stage_columns(
            A3_NX_SCHEMA,
            broadcast_src,
            indices,
            {
                "member": np.concatenate(tiled)
                if tiled
                else np.empty(0, dtype=np.int64)
            },
            lengths=landmark_counts[broadcast_src],
        )
    simulator.exchange_phase("A(X,r):2-send-X-neighbourhoods")

    disjoint_block, disjoint_full = _make_disjointness(
        _landmark_incidence(indptr, indices, in_x), num_nodes, degrees
    )
    # The receiver-major step-4.1 build needs row access to both the ∆(X)
    # matrix and the boolean adjacency; both exist on dense graphs only.
    adjacency = (
        csr._bool_matrix()
        if disjoint_full is not None and csr._use_dense()
        else None
    )

    in_u = np.ones(num_nodes, dtype=bool)
    truncated_by_progress = False
    for _ in range(max_iterations):
        if not in_u.any():
            break
        active_nodes = np.flatnonzero(in_u)
        active_rows = {
            int(node): indices[indptr[node] : indptr[node + 1]][
                in_u[indices[indptr[node] : indptr[node + 1]]]
            ]
            for node in active_nodes.tolist()
        }

        if adjacency is not None:
            # Step 4.1, receiver-major: for receiver ``j`` the messages
            # S(j, k) over all active neighbours ``k`` are the rows of one
            # boolean product — adjacency rows of the k's AND-ed with
            # ``j``'s ∆(X) row restricted to active l ≠ j.  Row sums give
            # |S(j, k)| (the shipping test *and* the withheld pairs fall
            # out of the same pass), and the flat nonzero positions are
            # the member column, already in destination-ascending staged
            # order — the delivered channel groups with zero copies.  The
            # staged message multiset is identical to the pernode kernel's
            # sender-major build.
            stage_src_chunks: List[np.ndarray] = []
            stage_dst_chunks: List[np.ndarray] = []
            stage_length_chunks: List[np.ndarray] = []
            stage_member_chunks: List[np.ndarray] = []
            withheld_j_chunks: List[np.ndarray] = []
            withheld_k_chunks: List[np.ndarray] = []
            for receiver in active_nodes.tolist():
                sender_row = active_rows[receiver]
                if sender_row.shape[0] == 0:
                    continue
                member_mask = disjoint_full[receiver] & in_u
                member_mask[receiver] = False
                rows = adjacency[sender_row] & member_mask[None, :]
                counts = rows.sum(axis=1)
                shipped = counts <= goodness_threshold
                if not shipped.all():
                    kept_back = sender_row[~shipped]
                    withheld_j_chunks.append(
                        np.full(kept_back.shape[0], receiver, dtype=np.int64)
                    )
                    withheld_k_chunks.append(kept_back)
                if shipped.any():
                    flat = np.flatnonzero(rows[shipped].ravel())
                    stage_src_chunks.append(sender_row[shipped])
                    stage_dst_chunks.append(
                        np.full(int(shipped.sum()), receiver, dtype=np.int64)
                    )
                    stage_length_chunks.append(counts[shipped])
                    stage_member_chunks.append(flat % np.int64(num_nodes))
            if stage_src_chunks:
                lengths = np.concatenate(stage_length_chunks)
                simulator.stage_columns(
                    A3_S_SCHEMA,
                    np.concatenate(stage_src_chunks),
                    np.concatenate(stage_dst_chunks),
                    {"member": np.concatenate(stage_member_chunks)},
                    lengths=lengths,
                    bits=np.maximum(lengths * node_id_bits, 1),
                )
            withheld_j = (
                np.concatenate(withheld_j_chunks)
                if withheld_j_chunks
                else np.empty(0, dtype=np.int64)
            )
            withheld_k = (
                np.concatenate(withheld_k_chunks)
                if withheld_k_chunks
                else np.empty(0, dtype=np.int64)
            )
        else:
            # Step 4.1, sender-major (sparse fallback — identical to the
            # pernode kernel's build).
            sender_nodes: List[int] = []
            sender_counts: List[int] = []
            target_chunks: List[np.ndarray] = []
            length_chunks: List[np.ndarray] = []
            member_chunks: List[np.ndarray] = []
            for node in active_nodes.tolist():
                active_neighbors = active_rows[node]
                if active_neighbors.shape[0] == 0:
                    continue
                candidate = disjoint_block(active_neighbors)
                np.fill_diagonal(candidate, False)
                set_sizes = candidate.sum(axis=1)
                shipped = set_sizes <= goodness_threshold
                if not shipped.any():
                    continue
                sender_nodes.append(node)
                targets = active_neighbors[shipped]
                sender_counts.append(int(targets.shape[0]))
                target_chunks.append(targets)
                length_chunks.append(set_sizes[shipped])
                member_chunks.append(
                    active_neighbors[np.nonzero(candidate[shipped])[1]]
                )
            if sender_nodes:
                lengths = np.concatenate(length_chunks)
                simulator.stage_columns(
                    A3_S_SCHEMA,
                    np.repeat(
                        np.asarray(sender_nodes, dtype=np.int64),
                        np.asarray(sender_counts, dtype=np.int64),
                    ),
                    np.concatenate(target_chunks),
                    {
                        "member": np.concatenate(member_chunks)
                        if lengths.sum()
                        else np.empty(0, dtype=np.int64)
                    },
                    lengths=lengths,
                    bits=np.maximum(lengths * node_id_bits, 1),
                )
            withheld_j = withheld_k = None
        delivered = simulator.exchange_phase("A(X,r):4.1-send-S")
        s_channel = delivered.channel(A3_S_SCHEMA)

        # Receivers list revealed triangles (step 4.2, fused).
        _emit_revealed_triangles(simulator, csr, s_channel)

        if withheld_j is None:
            # Withholding sets V(j), fused: among the active→active
            # directed edges (j, k), exactly those without a received
            # (j ← k) S message were withheld.  Both sides reduce to
            # sorted int64 key arrays.
            pair_mask = in_u[broadcast_src] & in_u[indices]
            pair_j = broadcast_src[pair_mask]
            pair_k = indices[pair_mask]
            if s_channel.count:
                received_keys = np.sort(s_channel.dst * n64 + s_channel.src)
                query_keys = pair_j * n64 + pair_k
                positions = np.searchsorted(received_keys, query_keys)
                received = np.zeros(query_keys.shape, dtype=bool)
                in_range = positions < received_keys.shape[0]
                received[in_range] = (
                    received_keys[positions[in_range]] == query_keys[in_range]
                )
            else:
                received = np.zeros(pair_j.shape, dtype=bool)
            withheld_j = pair_j[~received]
            withheld_k = pair_k[~received]
        withheld_counts = np.bincount(withheld_j, minlength=num_nodes)
        is_good = np.zeros(num_nodes, dtype=bool)
        is_good[active_nodes] = withheld_counts[active_nodes] <= goodness_threshold

        # Step 4.3 — r-good nodes ship V(j) to their active neighbours.
        # ``withheld_j`` is ascending (CSR order), so the staged batch
        # matches the pernode kernel's node-ascending build exactly.
        sender_nodes = []
        sender_counts = []
        target_chunks = []
        member_chunks = []
        set_size_list: List[int] = []
        if withheld_j.shape[0]:
            group_starts = np.flatnonzero(
                np.concatenate(([True], withheld_j[1:] != withheld_j[:-1]))
            ).tolist()
            group_bounds = group_starts[1:] + [int(withheld_j.shape[0])]
            for which, start in enumerate(group_starts):
                node = int(withheld_j[start])
                if not is_good[node]:
                    continue
                withheld = withheld_k[start : group_bounds[which]]
                active_neighbors = active_rows[node]
                sender_nodes.append(node)
                sender_counts.append(int(active_neighbors.shape[0]))
                target_chunks.append(active_neighbors)
                member_chunks.append(np.tile(withheld, active_neighbors.shape[0]))
                set_size_list.append(int(withheld.shape[0]))
        if sender_nodes:
            counts = np.asarray(sender_counts, dtype=np.int64)
            sizes = np.asarray(set_size_list, dtype=np.int64)
            simulator.stage_columns(
                A3_V_SCHEMA,
                np.repeat(np.asarray(sender_nodes, dtype=np.int64), counts),
                np.concatenate(target_chunks),
                {"member": np.concatenate(member_chunks)},
                lengths=np.repeat(sizes, counts),
                bits=np.repeat(np.maximum(sizes * node_id_bits, 1), counts),
            )
        delivered = simulator.exchange_phase("A(X,r):4.3-send-V")
        _emit_revealed_triangles(simulator, csr, delivered.channel(A3_V_SCHEMA))

        # Steps 4.4 / 4.5 — good nodes retire; everyone announces membership.
        retired_any = bool((in_u & is_good).any())
        in_u = in_u & ~is_good
        if broadcast_src.shape[0]:
            simulator.stage_columns(
                A3_IN_U_SCHEMA,
                broadcast_src,
                indices,
                {"flag": in_u[broadcast_src].astype(np.int64)},
            )
        simulator.exchange_phase("A(X,r):4.5-announce-U")

        if not retired_any:
            # No node was r-good: the configuration is now static and more
            # iterations cannot reveal anything new (the landmark set failed
            # Lemma 3's guarantee).  Stop rather than loop until the budget.
            truncated_by_progress = True
            break

    return truncated_by_progress


class LightTrianglesLister(TriangleAlgorithm):
    """Algorithm A3 (Proposition 3): list every triangle that is not ε-heavy.

    Parameters
    ----------
    epsilon:
        The heaviness exponent ε.
    budget_constant:
        The constant ``c`` in the round budget
        ``c (n^{1-ε} + n^{(1+ε)/2} log n)``.
    landmark_probability:
        Override for the landmark sampling probability (default
        ``1/(9 n^ε)``); exposed for ablations.
    goodness_threshold:
        Override for ``r`` (default ``sqrt(54 n^{1+ε} log n)``).
    enforce_budget:
        When ``False`` the round budget is not enforced (useful for studying
        the untruncated behaviour of unlucky runs).
    kernel:
        ``"batched"`` (default) runs the direct-exchange fused ``A(X, r)``
        kernel; ``"pernode"`` the previous per-node batched generation;
        ``"reference"`` the per-node closures.  Identical executions for
        the same seed.
    """

    name = "A3-light-listing"
    model = "CONGEST"

    def __init__(
        self,
        epsilon: float,
        budget_constant: float = 8.0,
        landmark_probability: Optional[float] = None,
        goodness_threshold: Optional[float] = None,
        enforce_budget: bool = True,
        kernel: str = "batched",
        backend: str = "numpy",
        chunk_bytes: Optional[int] = None,
    ) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError(f"epsilon must lie in [0, 1], got {epsilon}")
        self._epsilon = epsilon
        self._budget_constant = budget_constant
        self._landmark_probability = landmark_probability
        self._goodness_threshold = goodness_threshold
        self._enforce_budget = enforce_budget
        self._kernel = validate_kernel(kernel)
        self._set_tuning(backend, chunk_bytes)
        self._num_nodes_hint: Optional[int] = None

    def describe_parameters(self) -> Dict[str, Any]:
        return {
            "epsilon": self._epsilon,
            "budget_constant": self._budget_constant,
            "landmark_probability": self._landmark_probability,
            "goodness_threshold": self._goodness_threshold,
            "enforce_budget": self._enforce_budget,
            "kernel": self._kernel,
            "backend": self.backend,
            "chunk_bytes": self.chunk_bytes,
        }

    def _build_simulator(self, graph, seed):  # type: ignore[override]
        round_limit = None
        if self._enforce_budget:
            round_limit = a3_round_budget(
                graph.num_nodes, self._epsilon, self._budget_constant
            )
        return CongestSimulator(graph, seed=seed, round_limit=round_limit)

    def _execute(self, simulator: CongestSimulator) -> bool:
        num_nodes = simulator.num_nodes
        probability = (
            self._landmark_probability
            if self._landmark_probability is not None
            else a3_landmark_probability(num_nodes, self._epsilon)
        )
        threshold = (
            self._goodness_threshold
            if self._goodness_threshold is not None
            else a3_goodness_threshold(num_nodes, self._epsilon)
        )

        def select_landmark(context: NodeContext) -> None:
            context.state["in_X"] = bool(context.rng.random() < probability)

        simulator.for_each_node(select_landmark)
        try:
            return run_axr(simulator, threshold, kernel=self._kernel)
        except RoundLimitExceededError:
            # The paper's A3 stops as soon as the budget is exceeded and
            # keeps whatever has been output so far.
            return True


def expected_rounds(num_nodes: int, epsilon: float) -> float:
    """Return the Proposition-3 round bound ``n^{1-ε} + n^{(1+ε)/2} log n``."""
    if not 0.0 <= epsilon <= 1.0:
        raise ValueError(f"epsilon must lie in [0, 1], got {epsilon}")
    n = float(num_nodes)
    log_n = max(1.0, math.log2(max(2, num_nodes)))
    return n ** (1.0 - epsilon) + n ** ((1.0 + epsilon) / 2.0) * log_n
