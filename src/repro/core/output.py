"""Algorithm output and result structures.

Section 2 of the paper describes the output of a finding/listing algorithm
as an n-tuple ``T = (T_0, ..., T_{n-1})`` where ``T_i`` is the set of
triples output by node ``i``.  The algorithm *solves finding* when the union
intersects ``T(G)`` (and ``T(G)`` is non-empty), and *solves listing* when
the union equals ``T(G)``.  Outputs must be one-sided: every reported triple
must actually be a triangle of ``G``.

:class:`TriangleOutput` captures the tuple; :class:`AlgorithmResult` bundles
it with the execution cost and parameters so experiments can report both
correctness and round complexity from a single object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, Mapping, Optional

from ..congest.metrics import AlgorithmCost, ExecutionMetrics
from ..errors import VerificationError
from ..graphs.graph import Graph
from ..graphs.triangles import list_triangles
from ..types import NodeId, Triangle


@dataclass(frozen=True)
class TriangleOutput:
    """The per-node output tuple ``(T_0, ..., T_{n-1})``."""

    per_node: Mapping[NodeId, FrozenSet[Triangle]]

    @classmethod
    def from_simulator_outputs(
        cls, outputs: Mapping[NodeId, Iterable[Triangle]]
    ) -> "TriangleOutput":
        """Build an output tuple from the simulator's collected node outputs."""
        return cls({node: frozenset(triples) for node, triples in outputs.items()})

    def union(self) -> FrozenSet[Triangle]:
        """Return ``T``, the union of all per-node outputs."""
        combined: set[Triangle] = set()
        for triples in self.per_node.values():
            combined.update(triples)
        return frozenset(combined)

    def node_output(self, node: NodeId) -> FrozenSet[Triangle]:
        """Return ``T_i`` for a single node (empty when the node output nothing)."""
        return self.per_node.get(node, frozenset())

    def total_reported(self) -> int:
        """Return the total number of (node, triple) report events."""
        return sum(len(triples) for triples in self.per_node.values())

    def busiest_node(self) -> Optional[NodeId]:
        """Return ``w(T)``: the node whose output set is largest (ties: lowest id).

        Returns ``None`` when every node output the empty set.  This is the
        node the lower-bound argument of Theorem 3 focuses on.
        """
        best_node: Optional[NodeId] = None
        best_size = 0
        for node in sorted(self.per_node):
            size = len(self.per_node[node])
            if size > best_size:
                best_size = size
                best_node = node
        return best_node

    def is_empty(self) -> bool:
        """Return ``True`` when no node output any triple."""
        return all(not triples for triples in self.per_node.values())

    def merged_with(self, other: "TriangleOutput") -> "TriangleOutput":
        """Return the node-wise union of two output tuples.

        Used when an algorithm repeats a sub-algorithm several times and the
        final output of each node is the union over repetitions.
        """
        nodes = set(self.per_node) | set(other.per_node)
        return TriangleOutput(
            {
                node: self.node_output(node) | other.node_output(node)
                for node in nodes
            }
        )


@dataclass
class AlgorithmResult:
    """Everything produced by one run of a distributed triangle algorithm."""

    algorithm: str
    model: str
    output: TriangleOutput
    cost: AlgorithmCost
    metrics: ExecutionMetrics
    parameters: Dict[str, Any] = field(default_factory=dict)
    truncated: bool = False

    @property
    def rounds(self) -> int:
        """The measured round complexity of the run."""
        return self.cost.rounds

    def triangles_found(self) -> FrozenSet[Triangle]:
        """Return the union of all reported triples."""
        return self.output.union()

    def found_any(self) -> bool:
        """Return ``True`` when at least one triple was reported."""
        return not self.output.is_empty()

    def check_soundness(self, graph: Graph) -> None:
        """Raise :class:`VerificationError` if any reported triple is not a triangle.

        One-sidedness is an unconditional requirement of the output model
        (Section 2), so a violation is a bug, not a statistical failure.
        """
        for node, triples in self.output.per_node.items():
            for a, b, c in triples:
                if not (graph.has_edge(a, b) and graph.has_edge(a, c) and graph.has_edge(b, c)):
                    raise VerificationError(
                        f"node {node} reported ({a}, {b}, {c}) which is not a "
                        f"triangle of the input graph"
                    )

    def listing_recall(self, graph: Graph) -> float:
        """Return the fraction of ``T(G)`` present in the reported union.

        1.0 means the run solved the listing problem on this instance;
        recall below 1.0 quantifies how far a single (un-amplified) run is
        from full listing.
        """
        truth = set(list_triangles(graph))
        if not truth:
            return 1.0
        return len(self.triangles_found() & truth) / len(truth)

    def missed_triangles(self, graph: Graph) -> FrozenSet[Triangle]:
        """Return the triangles of ``G`` absent from the reported union."""
        truth = frozenset(list_triangles(graph))
        return truth - self.triangles_found()

    def solves_finding(self, graph: Graph) -> bool:
        """Return ``True`` when this run solves the finding problem on ``graph``.

        Finding requires a reported triangle when ``T(G)`` is non-empty and
        an empty output otherwise (the "not found" answer).
        """
        self.check_soundness(graph)
        truth = list_triangles(graph)
        if truth:
            return self.found_any()
        return not self.found_any()

    def solves_listing(self, graph: Graph) -> bool:
        """Return ``True`` when this run solves the listing problem on ``graph``."""
        self.check_soundness(graph)
        return self.listing_recall(graph) == 1.0

    def summary(self) -> str:
        """Return a one-line human-readable summary of the run."""
        return (
            f"{self.algorithm} [{self.model}]: rounds={self.cost.rounds}, "
            f"reported={len(self.triangles_found())} distinct triangles"
            + (", truncated" if self.truncated else "")
        )
