"""Algorithm output and result structures.

Section 2 of the paper describes the output of a finding/listing algorithm
as an n-tuple ``T = (T_0, ..., T_{n-1})`` where ``T_i`` is the set of
triples output by node ``i``.  The algorithm *solves finding* when the union
intersects ``T(G)`` (and ``T(G)`` is non-empty), and *solves listing* when
the union equals ``T(G)``.  Outputs must be one-sided: every reported triple
must actually be a triangle of ``G``.

:class:`TriangleOutput` captures the tuple; :class:`AlgorithmResult` bundles
it with the execution cost and parameters so experiments can report both
correctness and round complexity from a single object.

The output tuple is **columnar and lazy**: bulk-emitting kernels hand over
per-node int64 triangle-key chunks (:func:`repro.types.triangle_keys`), and
the per-node frozensets of canonical tuples — millions of Python objects on
dense workloads — are only materialised for the nodes a consumer actually
reads.  Counts, the union and node-wise merging all run as numpy key
reductions, so an end-to-end run never builds a tuple it does not return.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set

import numpy as np

from ..congest.metrics import AlgorithmCost, ExecutionMetrics
from ..errors import VerificationError
from ..graphs.graph import Graph
from ..graphs.triangles import list_triangles
from ..types import NodeId, Triangle, decode_triangle_keys, triangle_keys

_EMPTY_KEYS = np.empty(0, dtype=np.int64)


def _encode_triples(triples: Iterable[Triangle], num_nodes: int) -> np.ndarray:
    """Encode an iterable of canonical tuples into sorted unique keys."""
    rows = np.asarray(sorted(triples), dtype=np.int64)
    if rows.shape[0] == 0:
        return _EMPTY_KEYS
    return triangle_keys(rows[:, 0], rows[:, 1], rows[:, 2], num_nodes)


def _decode_keys(keys: np.ndarray, num_nodes: int) -> FrozenSet[Triangle]:
    """Decode unique triangle keys into a frozenset of canonical tuples."""
    a, b, c = decode_triangle_keys(keys, num_nodes)
    return frozenset(zip(a.tolist(), b.tolist(), c.tolist()))


class _LazyPerNode(Mapping):
    """Read-only mapping view over a :class:`TriangleOutput`'s node sets.

    Keeps the historical ``output.per_node`` contract (a mapping of node id
    to frozenset) while materialising each node's tuple set only on access.
    """

    __slots__ = ("_output",)

    def __init__(self, output: "TriangleOutput") -> None:
        self._output = output

    def __getitem__(self, node: NodeId) -> FrozenSet[Triangle]:
        if node not in self._output._nodes:
            raise KeyError(node)
        return self._output.node_output(node)

    def __iter__(self):
        return iter(sorted(self._output._nodes))

    def __len__(self) -> int:
        return len(self._output._nodes)


class TriangleOutput:
    """The per-node output tuple ``(T_0, ..., T_{n-1})``.

    Construct from a mapping of materialised frozensets (the historical
    form, still used by hand-written tests and tiny runs) or through
    :meth:`from_contexts` /  :meth:`from_simulator_outputs`, which capture
    the simulator contexts' columnar key chunks without materialising
    anything.
    """

    __slots__ = ("num_nodes", "_nodes", "_sets", "_chunks", "_node_keys", "_cache")

    def __init__(
        self, per_node: Optional[Mapping[NodeId, FrozenSet[Triangle]]] = None
    ) -> None:
        #: Network size used for key encoding (0 = derive from data).
        self.num_nodes = 0
        self._nodes: Set[NodeId] = set()
        # Per-node materialised tuple sets (legacy form / scalar outputs).
        self._sets: Dict[NodeId, FrozenSet[Triangle]] = {}
        # Per-node lists of (possibly duplicated) int64 key chunks.
        self._chunks: Dict[NodeId, List[np.ndarray]] = {}
        # Per-node deduplicated key arrays (computed on demand).
        self._node_keys: Dict[NodeId, np.ndarray] = {}
        # Per-node materialised frozensets (computed on demand).
        self._cache: Dict[NodeId, FrozenSet[Triangle]] = {}
        if per_node:
            for node, triples in per_node.items():
                frozen = (
                    triples if isinstance(triples, frozenset) else frozenset(triples)
                )
                self._nodes.add(node)
                if frozen:
                    self._sets[node] = frozen
                    self._cache[node] = frozen
            self.num_nodes = _key_space(self._sets.values())

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_simulator_outputs(
        cls, outputs: Mapping[NodeId, Iterable[Triangle]]
    ) -> "TriangleOutput":
        """Build an output tuple from collected (materialised) node outputs."""
        return cls(
            {node: frozenset(triples) for node, triples in outputs.items()}
        )

    @classmethod
    def from_contexts(cls, contexts: Sequence[Any], num_nodes: int) -> "TriangleOutput":
        """Capture the contexts' output accumulators without materialising.

        Each context contributes its scalar tuple set (frozen here — small
        for the bulk-emitting kernels, exactly the old per-node copy for the
        reference closures) and its raw key chunks (adopted by reference, no
        copies, no decoding).
        """
        output = cls()
        output.num_nodes = num_nodes
        for context in contexts:
            scalar, chunks = context.output_state()
            node = context.node_id
            output._nodes.add(node)
            if scalar:
                output._sets[node] = frozenset(scalar)
            if chunks:
                output._chunks[node] = list(chunks)
        return output

    # ------------------------------------------------------------------
    # per-node access
    # ------------------------------------------------------------------
    @property
    def per_node(self) -> Mapping[NodeId, FrozenSet[Triangle]]:
        """Mapping view of the tuple (lazy per-node materialisation)."""
        return _LazyPerNode(self)

    def node_keys(self, node: NodeId) -> np.ndarray:
        """Return ``T_i`` as a sorted, deduplicated int64 key array.

        The fast comparison door: differential tests and benchmarks check
        per-node equality over these arrays without building tuples.
        """
        keys = self._node_keys.get(node)
        if keys is not None:
            return keys
        pieces = []
        chunks = self._chunks.get(node)
        if chunks:
            pieces.extend(chunks)
        triples = self._sets.get(node)
        if triples:
            pieces.append(_encode_triples(triples, self._key_space()))
        keys = (
            np.unique(np.concatenate(pieces)) if pieces else _EMPTY_KEYS
        )
        self._node_keys[node] = keys
        return keys

    def node_output(self, node: NodeId) -> FrozenSet[Triangle]:
        """Return ``T_i`` for a single node (empty when the node output nothing)."""
        cached = self._cache.get(node)
        if cached is not None:
            return cached
        if node in self._chunks:
            result = _decode_keys(self.node_keys(node), self._key_space())
        else:
            result = self._sets.get(node, frozenset())
        self._cache[node] = result
        return result

    def _key_space(self) -> int:
        """The ``n`` used for key encoding (derived lazily for legacy data)."""
        if self.num_nodes == 0:
            self.num_nodes = _key_space(self._sets.values())
        return self.num_nodes

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------
    def union_keys(self) -> np.ndarray:
        """Return the union ``T`` as a sorted unique int64 key array."""
        pieces = [self.node_keys(node) for node in self._nodes]
        pieces = [piece for piece in pieces if piece.shape[0]]
        if not pieces:
            return _EMPTY_KEYS
        return np.unique(np.concatenate(pieces))

    def union(self) -> FrozenSet[Triangle]:
        """Return ``T``, the union of all per-node outputs."""
        return _decode_keys(self.union_keys(), self._key_space())

    def total_reported(self) -> int:
        """Return the total number of (node, triple) report events."""
        return sum(int(self.node_keys(node).shape[0]) for node in self._nodes)

    def busiest_node(self) -> Optional[NodeId]:
        """Return ``w(T)``: the node whose output set is largest (ties: lowest id).

        Returns ``None`` when every node output the empty set.  This is the
        node the lower-bound argument of Theorem 3 focuses on.
        """
        best_node: Optional[NodeId] = None
        best_size = 0
        for node in sorted(self._nodes):
            size = int(self.node_keys(node).shape[0])
            if size > best_size:
                best_size = size
                best_node = node
        return best_node

    def is_empty(self) -> bool:
        """Return ``True`` when no node output any triple."""
        return not self._sets and not self._chunks

    def __eq__(self, other: Any) -> bool:
        """Structural equality: same nodes, same per-node triple sets.

        Preserves the semantics of the frozen-dataclass era (two outputs
        compare equal iff their ``per_node`` mappings would) without
        materialising tuples when both sides share a key encoding.
        """
        if not isinstance(other, TriangleOutput):
            return NotImplemented
        if self._nodes != other._nodes:
            return False
        same_key_space = self._key_space() == other._key_space()
        for node in self._nodes:
            if same_key_space:
                if not np.array_equal(self.node_keys(node), other.node_keys(node)):
                    return False
            elif self.node_output(node) != other.node_output(node):
                return False
        return True

    #: Lazily materialised and mutable under the hood, so not hashable.
    __hash__ = None

    def merged_with(self, other: "TriangleOutput") -> "TriangleOutput":
        """Return the node-wise union of two output tuples.

        Used when an algorithm repeats a sub-algorithm several times and the
        final output of each node is the union over repetitions.  Chunk
        lists concatenate by reference — no key array is copied or decoded
        here.
        """
        merged = TriangleOutput()
        merged.num_nodes = max(self._key_space(), other._key_space())
        merged._nodes = self._nodes | other._nodes
        for node in merged._nodes:
            mine, theirs = self._sets.get(node), other._sets.get(node)
            if mine and theirs:
                merged._sets[node] = mine | theirs
            elif mine or theirs:
                merged._sets[node] = mine or theirs
            chunk_lists = (self._chunks.get(node), other._chunks.get(node))
            if chunk_lists[0] or chunk_lists[1]:
                merged._chunks[node] = list(chunk_lists[0] or ()) + list(
                    chunk_lists[1] or ()
                )
        return merged


def _key_space(collections: Iterable[Iterable[Triangle]]) -> int:
    """Smallest ``n`` whose key encoding covers every vertex seen (min 1)."""
    largest = 0
    for triples in collections:
        for triple in triples:
            if triple[2] > largest:
                largest = triple[2]
    return largest + 1


@dataclass
class AlgorithmResult:
    """Everything produced by one run of a distributed triangle algorithm."""

    algorithm: str
    model: str
    output: TriangleOutput
    cost: AlgorithmCost
    metrics: ExecutionMetrics
    parameters: Dict[str, Any] = field(default_factory=dict)
    truncated: bool = False

    @property
    def rounds(self) -> int:
        """The measured round complexity of the run."""
        return self.cost.rounds

    def triangles_found(self) -> FrozenSet[Triangle]:
        """Return the union of all reported triples."""
        return self.output.union()

    def found_any(self) -> bool:
        """Return ``True`` when at least one triple was reported."""
        return not self.output.is_empty()

    def check_soundness(self, graph: Graph) -> None:
        """Raise :class:`VerificationError` if any reported triple is not a triangle.

        One-sidedness is an unconditional requirement of the output model
        (Section 2), so a violation is a bug, not a statistical failure.
        """
        for node, triples in self.output.per_node.items():
            for a, b, c in triples:
                if not (graph.has_edge(a, b) and graph.has_edge(a, c) and graph.has_edge(b, c)):
                    raise VerificationError(
                        f"node {node} reported ({a}, {b}, {c}) which is not a "
                        f"triangle of the input graph"
                    )

    def listing_recall(self, graph: Graph) -> float:
        """Return the fraction of ``T(G)`` present in the reported union.

        1.0 means the run solved the listing problem on this instance;
        recall below 1.0 quantifies how far a single (un-amplified) run is
        from full listing.
        """
        truth = set(list_triangles(graph))
        if not truth:
            return 1.0
        return len(self.triangles_found() & truth) / len(truth)

    def missed_triangles(self, graph: Graph) -> FrozenSet[Triangle]:
        """Return the triangles of ``G`` absent from the reported union."""
        truth = frozenset(list_triangles(graph))
        return truth - self.triangles_found()

    def solves_finding(self, graph: Graph) -> bool:
        """Return ``True`` when this run solves the finding problem on ``graph``.

        Finding requires a reported triangle when ``T(G)`` is non-empty and
        an empty output otherwise (the "not found" answer).
        """
        self.check_soundness(graph)
        truth = list_triangles(graph)
        if truth:
            return self.found_any()
        return not self.found_any()

    def solves_listing(self, graph: Graph) -> bool:
        """Return ``True`` when this run solves the listing problem on ``graph``."""
        self.check_soundness(graph)
        return self.listing_recall(graph) == 1.0

    def summary(self) -> str:
        """Return a one-line human-readable summary of the run."""
        return (
            f"{self.algorithm} [{self.model}]: rounds={self.cost.rounds}, "
            f"reported={len(self.triangles_found())} distinct triangles"
            + (", truncated" if self.truncated else "")
        )
