"""Algorithm A1: finding an ε-heavy triangle by neighbourhood sampling.

Proposition 1 of the paper.  The protocol is a single communication phase:

1. Every node ``j`` builds a random sample ``S_j ⊆ N(j)`` by keeping each
   neighbour independently with probability ``n^{-ε}``.
2. If ``|S_j| <= 4 n^{1-ε}`` the node sends ``S_j`` to every neighbour
   (otherwise it stays silent — an oversized sample would blow the round
   budget, and the analysis shows the cap is met with constant probability).
3. Every neighbour ``k`` of ``j`` computes ``N(k) ∩ S_j`` locally and
   outputs the triangle ``{j, k, l}`` for every ``l`` in the intersection.

If some edge ``{j, k}`` is contained in at least ``n^ε`` triangles, then
with constant probability the sample of ``j`` hits one of the ``n^ε``
common neighbours and is small enough to be sent, so *some* ε-heavy triangle
is reported.  The communication cost is at most ``4 n^{1-ε}`` node
identifiers per edge, i.e. ``O(n^{1-ε})`` rounds.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional

from ..congest.node import NodeContext
from ..congest.simulator import CongestSimulator
from ..congest.wire import id_bits
from .base import TriangleAlgorithm
from .parameters import a1_sample_cap, a1_sampling_probability


class HeavySamplingFinder(TriangleAlgorithm):
    """Algorithm A1 (Proposition 1): sample neighbourhoods to hit a heavy edge.

    Parameters
    ----------
    epsilon:
        The heaviness exponent ε.  The triangle guarantee only covers
        ε-heavy triangles; the composite finding algorithm pairs A1 with A3,
        which covers the rest.
    sample_cap_constant:
        The constant in the sample-size cap ``4 n^{1-ε}``; exposed so the
        ablation benchmarks can study its effect.
    """

    name = "A1-heavy-sampling"
    model = "CONGEST"

    def __init__(self, epsilon: float, sample_cap_constant: float = 4.0) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError(f"epsilon must lie in [0, 1], got {epsilon}")
        if sample_cap_constant <= 0:
            raise ValueError(
                f"sample_cap_constant must be positive, got {sample_cap_constant}"
            )
        self._epsilon = epsilon
        self._sample_cap_constant = sample_cap_constant

    def describe_parameters(self) -> Dict[str, Any]:
        return {
            "epsilon": self._epsilon,
            "sample_cap_constant": self._sample_cap_constant,
        }

    # ------------------------------------------------------------------
    # protocol
    # ------------------------------------------------------------------
    def _execute(self, simulator: CongestSimulator) -> bool:
        num_nodes = simulator.num_nodes
        probability = a1_sampling_probability(num_nodes, self._epsilon)
        cap = (
            self._sample_cap_constant / 4.0
        ) * a1_sample_cap(num_nodes, self._epsilon)

        def sample_and_send(context: NodeContext) -> None:
            neighbors = context.sorted_neighbors()
            if not neighbors:
                return
            mask = context.rng.random(len(neighbors)) < probability
            sample: List[int] = [
                neighbor for neighbor, keep in zip(neighbors, mask) if keep
            ]
            context.state["sample"] = sample
            if len(sample) > cap:
                return
            if not sample:
                return
            payload_bits = len(sample) * id_bits(num_nodes)
            for neighbor in neighbors:
                context.send(neighbor, ("sample", tuple(sample)), bits=payload_bits)

        simulator.for_each_node(sample_and_send)
        simulator.run_phase("A1:send-samples")

        def detect(context: NodeContext) -> None:
            own_neighbors = context.neighbors
            for sender, payload in context.received():
                _, sample = payload
                for candidate in sample:
                    if candidate == context.node_id:
                        continue
                    if candidate in own_neighbors:
                        context.output_triangle(sender, context.node_id, candidate)

        simulator.for_each_node(detect)
        return False


def expected_rounds(num_nodes: int, epsilon: float) -> float:
    """Return the Proposition-1 round bound ``4 n^{1-ε}`` for reference plots."""
    return a1_sample_cap(num_nodes, epsilon)


def single_run_success_probability(edge_support: int, num_nodes: int, epsilon: float) -> float:
    """Return a lower bound on A1's hit probability for one heavy edge.

    For an edge shared by ``edge_support >= n^ε`` triangles, the probability
    that the sample of one endpoint contains at least one of the common
    neighbours is ``1 - (1 - n^{-ε})^{edge_support}``; this helper exposes
    that quantity (ignoring the sample-cap event, which only costs a
    constant factor) so tests can compare measured hit rates against it.
    """
    probability = a1_sampling_probability(num_nodes, epsilon)
    if edge_support <= 0:
        return 0.0
    return 1.0 - (1.0 - probability) ** edge_support
