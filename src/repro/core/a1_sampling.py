"""Algorithm A1: finding an ε-heavy triangle by neighbourhood sampling.

Proposition 1 of the paper.  The protocol is a single communication phase:

1. Every node ``j`` builds a random sample ``S_j ⊆ N(j)`` by keeping each
   neighbour independently with probability ``n^{-ε}``.
2. If ``|S_j| <= 4 n^{1-ε}`` the node sends ``S_j`` to every neighbour
   (otherwise it stays silent — an oversized sample would blow the round
   budget, and the analysis shows the cap is met with constant probability).
3. Every neighbour ``k`` of ``j`` computes ``N(k) ∩ S_j`` locally and
   outputs the triangle ``{j, k, l}`` for every ``l`` in the intersection.

If some edge ``{j, k}`` is contained in at least ``n^ε`` triangles, then
with constant probability the sample of ``j`` hits one of the ``n^ε``
common neighbours and is small enough to be sent, so *some* ε-heavy triangle
is reported.  The communication cost is at most ``4 n^{1-ε}`` node
identifiers per edge, i.e. ``O(n^{1-ε})`` rounds.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional

import numpy as np

from ..congest.node import NodeContext, emit_grouped_keys
from ..congest.simulator import CongestSimulator
from ..congest.wire import A1_SAMPLE_SCHEMA, id_bits
from ..types import triangle_keys
from .a3_light import _fused_chunk_elements
from .base import TriangleAlgorithm, validate_kernel
from .parameters import a1_sample_cap, a1_sampling_probability


class HeavySamplingFinder(TriangleAlgorithm):
    """Algorithm A1 (Proposition 1): sample neighbourhoods to hit a heavy edge.

    Parameters
    ----------
    epsilon:
        The heaviness exponent ε.  The triangle guarantee only covers
        ε-heavy triangles; the composite finding algorithm pairs A1 with A3,
        which covers the rest.
    sample_cap_constant:
        The constant in the sample-size cap ``4 n^{1-ε}``; exposed so the
        ablation benchmarks can study its effect.
    kernel:
        ``"batched"`` (default) stages every node's sample broadcast as one
        columnar batch and runs detection as a single whole-network
        membership test over the direct-exchange channel arrays;
        ``"pernode"`` keeps the per-node inbox views and receiver loops of
        the previous batched generation; ``"reference"`` runs the per-node
        closures.  Identical executions for the same seed.
    """

    name = "A1-heavy-sampling"
    model = "CONGEST"

    def __init__(
        self,
        epsilon: float,
        sample_cap_constant: float = 4.0,
        kernel: str = "batched",
        backend: str = "numpy",
        chunk_bytes: Optional[int] = None,
    ) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError(f"epsilon must lie in [0, 1], got {epsilon}")
        if sample_cap_constant <= 0:
            raise ValueError(
                f"sample_cap_constant must be positive, got {sample_cap_constant}"
            )
        self._epsilon = epsilon
        self._sample_cap_constant = sample_cap_constant
        self._kernel = validate_kernel(kernel)
        self._set_tuning(backend, chunk_bytes)

    def describe_parameters(self) -> Dict[str, Any]:
        return {
            "epsilon": self._epsilon,
            "sample_cap_constant": self._sample_cap_constant,
            "kernel": self._kernel,
            "backend": self.backend,
            "chunk_bytes": self.chunk_bytes,
        }

    # ------------------------------------------------------------------
    # protocol
    # ------------------------------------------------------------------
    def _execute(self, simulator: CongestSimulator) -> bool:
        num_nodes = simulator.num_nodes
        probability = a1_sampling_probability(num_nodes, self._epsilon)
        cap = (
            self._sample_cap_constant / 4.0
        ) * a1_sample_cap(num_nodes, self._epsilon)
        if self._kernel == "batched":
            return self._execute_direct(simulator, probability, cap)
        if self._kernel == "pernode":
            return self._execute_pernode(simulator, probability, cap)
        return self._execute_reference(simulator, probability, cap)

    def _execute_reference(
        self, simulator: CongestSimulator, probability: float, cap: float
    ) -> bool:
        num_nodes = simulator.num_nodes

        def sample_and_send(context: NodeContext) -> None:
            neighbors = context.sorted_neighbors()
            if not neighbors:
                return
            mask = context.rng.random(len(neighbors)) < probability
            sample: List[int] = [
                neighbor for neighbor, keep in zip(neighbors, mask) if keep
            ]
            context.state["sample"] = sample
            if len(sample) > cap:
                return
            if not sample:
                return
            payload_bits = len(sample) * id_bits(num_nodes)
            for neighbor in neighbors:
                context.send(neighbor, ("sample", tuple(sample)), bits=payload_bits)

        simulator.for_each_node(sample_and_send)
        simulator.run_phase("A1:send-samples")

        def detect(context: NodeContext) -> None:
            own_neighbors = context.neighbors
            for sender, payload in context.received():
                _, sample = payload
                for candidate in sample:
                    if candidate == context.node_id:
                        continue
                    if candidate in own_neighbors:
                        context.output_triangle(sender, context.node_id, candidate)

        simulator.for_each_node(detect)
        return False

    def _stage_samples(
        self, simulator: CongestSimulator, probability: float, cap: float
    ) -> None:
        """Draw every node's sample and stage the broadcasts columnar.

        Per-node randomness is drawn exactly as the reference closure draws
        it (one ``rng.random(degree)`` mask over the sorted neighbour row),
        so seeded runs coincide; the whole phase's traffic lands on the
        plane in one ``stage_columns`` call.  Shared by the ``pernode`` and
        direct-exchange kernels, which differ only in consumption.
        """
        num_nodes = simulator.num_nodes
        csr = simulator.graph.csr()
        indptr, indices = csr.indptr, csr.indices
        contexts = simulator.contexts
        node_id_bits = id_bits(num_nodes)

        sender_nodes: List[int] = []
        sender_degrees: List[int] = []
        sample_chunks: List[np.ndarray] = []
        for context in contexts:
            node = context.node_id
            row = indices[indptr[node] : indptr[node + 1]]
            if row.shape[0] == 0:
                continue
            mask = context.rng.random(row.shape[0]) < probability
            sample = row[mask]
            context.state["sample"] = sample.tolist()
            if sample.shape[0] == 0 or sample.shape[0] > cap:
                continue
            sender_nodes.append(node)
            sender_degrees.append(int(row.shape[0]))
            sample_chunks.append(sample)
        if sender_nodes:
            senders = np.asarray(sender_nodes, dtype=np.int64)
            degrees = np.asarray(sender_degrees, dtype=np.int64)
            sizes = np.asarray(
                [chunk.shape[0] for chunk in sample_chunks], dtype=np.int64
            )
            # One message per (sender, neighbour) pair, each carrying the
            # sender's whole sample.
            simulator.stage_columns(
                A1_SAMPLE_SCHEMA,
                np.repeat(senders, degrees),
                np.concatenate(
                    [
                        indices[indptr[node] : indptr[node + 1]]
                        for node in sender_nodes
                    ]
                ),
                {
                    "member": np.concatenate(
                        [
                            np.tile(chunk, degree)
                            for chunk, degree in zip(sample_chunks, sender_degrees)
                        ]
                    )
                },
                lengths=np.repeat(sizes, degrees),
                bits=np.repeat(sizes * node_id_bits, degrees),
            )

    def _execute_pernode(
        self, simulator: CongestSimulator, probability: float, cap: float
    ) -> bool:
        """Columnar staging + per-node inbox-view detection loops."""
        csr = simulator.graph.csr()
        indptr, indices = csr.indptr, csr.indices
        self._stage_samples(simulator, probability, cap)
        simulator.run_phase("A1:send-samples")

        for context in simulator.contexts:
            view = context.received_columns(A1_SAMPLE_SCHEMA)
            if view.count == 0:
                continue
            node = context.node_id
            row = indices[indptr[node] : indptr[node + 1]]
            candidates = view.column("member")
            senders_per_candidate = np.repeat(view.senders, view.lengths)
            hits = (candidates != node) & np.isin(candidates, row)
            if hits.any():
                context.output_triangles(
                    senders_per_candidate[hits],
                    np.full(int(hits.sum()), node, dtype=np.int64),
                    candidates[hits],
                )
        return False

    def _execute_direct(
        self, simulator: CongestSimulator, probability: float, cap: float
    ) -> bool:
        """The direct-exchange kernel: fused whole-network detection.

        Same staged traffic as :meth:`_execute_pernode`; delivery comes
        back as destination-grouped channel arrays and the ``N(k) ∩ S_j``
        test runs as a vectorized edge-membership query over the
        (receiver, candidate) elements — no per-node inboxes or loops,
        only a per-receiver output emit over the grouped hits.  The sweep
        streams message-aligned element blocks bounded by the active
        ``chunk_bytes`` budget, so peak memory stays flat however large
        the phase's traffic is.
        """
        num_nodes = simulator.num_nodes
        csr = simulator.graph.csr()
        contexts = simulator.contexts
        self._stage_samples(simulator, probability, cap)
        delivered = simulator.exchange_phase("A1:send-samples")
        channel = delivered.channel(A1_SAMPLE_SCHEMA)
        if channel.count == 0:
            return False
        candidates = channel.data["member"]
        offsets = channel.offsets
        dst = channel.dst
        src = channel.src
        lengths = channel.lengths
        message_count = channel.count
        chunk_elements = _fused_chunk_elements()
        message_start = 0
        while message_start < message_count:
            element_start = int(offsets[message_start])
            message_end = int(
                np.searchsorted(offsets, element_start + chunk_elements, side="left")
            )
            message_end = max(message_end, message_start + 1)
            message_end = min(message_end, message_count)
            element_end = int(offsets[message_end])
            if element_end == element_start:
                message_start = message_end
                continue
            block_lengths = lengths[message_start:message_end]
            block_candidates = candidates[element_start:element_end]
            block_receivers = np.repeat(dst[message_start:message_end], block_lengths)
            mask = (block_candidates != block_receivers) & csr.has_edges(
                block_receivers, block_candidates
            )
            hits = np.flatnonzero(mask)
            if hits.shape[0]:
                block_senders = np.repeat(
                    src[message_start:message_end], block_lengths
                )
                hit_receivers = block_receivers[hits]
                hit_senders = block_senders[hits]
                hit_candidates = block_candidates[hits]
                low = np.minimum(hit_senders, hit_candidates)
                high = np.maximum(hit_senders, hit_candidates)
                lo = np.minimum(low, hit_receivers)
                hi = np.maximum(high, hit_receivers)
                mid = hit_receivers + hit_senders + hit_candidates - lo - hi
                keys = triangle_keys(lo, mid, hi, num_nodes)
                emit_grouped_keys(contexts, hit_receivers, keys)
            message_start = message_end
        return False


def expected_rounds(num_nodes: int, epsilon: float) -> float:
    """Return the Proposition-1 round bound ``4 n^{1-ε}`` for reference plots."""
    return a1_sample_cap(num_nodes, epsilon)


def single_run_success_probability(edge_support: int, num_nodes: int, epsilon: float) -> float:
    """Return a lower bound on A1's hit probability for one heavy edge.

    For an edge shared by ``edge_support >= n^ε`` triangles, the probability
    that the sample of one endpoint contains at least one of the common
    neighbours is ``1 - (1 - n^{-ε})^{edge_support}``; this helper exposes
    that quantity (ignoring the sample-cap event, which only costs a
    constant factor) so tests can compare measured hit rates against it.
    """
    probability = a1_sampling_probability(num_nodes, epsilon)
    if edge_support <= 0:
        return 0.0
    return 1.0 - (1.0 - probability) ** edge_support
