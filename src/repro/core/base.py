"""Common machinery shared by the distributed triangle algorithms.

Every algorithm in this package follows the same shape: build a simulator
for the input graph, run a phase-structured node program against the node
contexts, collect the per-node outputs, and wrap everything in an
:class:`~repro.core.output.AlgorithmResult`.  The small base class below
captures that shape so the individual algorithm modules contain only the
protocol logic from the paper.

The simulators handed to :meth:`TriangleAlgorithm._execute` are policy
layers over the shared :class:`~repro.congest.runtime.CongestRuntime`
kernel, so algorithm steps with heavy fan-out should prefer the batched
:meth:`~repro.congest.node.NodeContext.bulk_send` /
:meth:`~repro.congest.node.NodeContext.broadcast_bits` context methods over
per-message ``send`` loops.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Optional

import numpy as np

from ..congest.backends import (
    VALID_BACKENDS,
    use_backend,
    validate_backend,
    validate_chunk_bytes,
)
from ..congest.metrics import AlgorithmCost, ExecutionMetrics
from ..congest.simulator import CongestSimulator
from ..graphs.graph import Graph
from .output import AlgorithmResult, TriangleOutput


#: The execution kernels every protocol offers:
#:
#: * ``"batched"`` (default) — whole-network array programs on the
#:   **direct-exchange** path: one columnar staging call per message kind
#:   per phase, delivery consumed straight off the destination-grouped
#:   channel arrays, receiver processing fused into whole-network
#:   CSR-oracle calls.
#: * ``"pernode"`` — the previous generation of batched kernels, kept as
#:   the benchmark baseline for the direct-exchange path: staging is
#:   columnar but each node still receives an inbox view and runs its own
#:   receiver loop.
#: * ``"reference"`` — the paper-shaped per-node closures over object
#:   payloads, the semantic ground truth.
#:
#: All three produce identical executions for the same seed; the
#: differential suite enforces this on every workload family.
VALID_KERNELS = ("batched", "pernode", "reference")

#: Memory ceiling for a precomputed n×n pair matrix (bool entries).
DENSE_PAIR_MATRIX_MAX_BYTES = 1 << 28


def dense_pair_matrix_worthwhile(num_nodes: int, degrees: "np.ndarray") -> bool:
    """Should a batched kernel precompute an all-pairs n×n matrix?

    The batched kernels only ever read pair entries ``(a, l)`` with both
    endpoints in some node's neighbour row, i.e. ``Σ deg²`` entries in
    total.  Precomputing the full matrix amortises shared pairs on dense
    graphs but wastes O(n²) work and memory on sparse ones, so it is used
    only when the matrix is modest in absolute terms *and* a sizeable
    fraction of it is actually consumed; otherwise the kernels evaluate
    each neighbour-row block on demand.
    """
    matrix_bytes = num_nodes * num_nodes
    if matrix_bytes > DENSE_PAIR_MATRIX_MAX_BYTES:
        return False
    consumed = int((degrees.astype(np.int64) ** 2).sum())
    return matrix_bytes <= 4 * max(consumed, 1)


def validate_kernel(kernel: str) -> str:
    """Validate and return an execution-kernel name.

    Raises
    ------
    ValueError
        For anything other than ``"batched"``, ``"pernode"`` or
        ``"reference"``.
    """
    if kernel not in VALID_KERNELS:
        raise ValueError(
            f"kernel must be one of {VALID_KERNELS}, got {kernel!r}"
        )
    return kernel


class TriangleAlgorithm(abc.ABC):
    """Abstract base class for distributed triangle finding/listing algorithms.

    Subclasses implement :meth:`_execute`, which receives a freshly built
    simulator and must drive the protocol phases.  The public :meth:`run`
    method handles seeding, output collection and result packaging.
    """

    #: Human-readable algorithm name, shown in experiment tables.
    name: str = "abstract"
    #: The communication model the algorithm runs in.
    model: str = "CONGEST"
    #: Inner-loop backend (``"numpy"`` or ``"numba"``); constructors that
    #: accept ``backend=`` overwrite this with the validated value.
    backend: str = "numpy"
    #: Bound on chunked-evaluation working sets; ``None`` keeps the
    #: process-wide default (:data:`repro.congest.backends.DEFAULT_CHUNK_BYTES`).
    chunk_bytes: Optional[int] = None

    def _set_tuning(
        self, backend: str = "numpy", chunk_bytes: Optional[int] = None
    ) -> None:
        """Validate and store the ``backend=``/``chunk_bytes=`` knobs.

        Called from subclass constructors, mirroring ``validate_kernel`` for
        the ``kernel=`` knob.  :meth:`run` activates the stored settings for
        the duration of the execution.
        """
        self.backend = validate_backend(backend)
        self.chunk_bytes = validate_chunk_bytes(chunk_bytes)

    @abc.abstractmethod
    def _execute(self, simulator: CongestSimulator) -> bool:
        """Run the protocol on ``simulator``.

        Returns
        -------
        bool
            ``True`` when the run was truncated (round budget exhausted
            before the protocol finished), ``False`` otherwise.
        """

    def _build_simulator(
        self, graph: Graph, seed: Optional[int | np.random.Generator]
    ) -> CongestSimulator:
        """Build the simulator this algorithm runs on (CONGEST by default)."""
        return CongestSimulator(graph, seed=seed, round_limit=self._round_limit())

    def _round_limit(self) -> Optional[int]:
        """Return the round budget, if the algorithm has one."""
        return None

    def describe_parameters(self) -> Dict[str, Any]:
        """Return the algorithm parameters recorded in results."""
        return {}

    def run(
        self, graph: Graph, seed: Optional[int | np.random.Generator] = None
    ) -> AlgorithmResult:
        """Run the algorithm on ``graph`` and return the packaged result."""
        with use_backend(self.backend, self.chunk_bytes):
            simulator = self._build_simulator(graph, seed)
            truncated = self._execute(simulator)
        output = TriangleOutput.from_contexts(simulator.contexts, simulator.num_nodes)
        return AlgorithmResult(
            algorithm=self.name,
            model=simulator.model_name,
            output=output,
            cost=AlgorithmCost.from_metrics(simulator.metrics),
            metrics=simulator.metrics,
            parameters=self.describe_parameters(),
            truncated=truncated,
        )


def combine_results(
    algorithm: str,
    model: str,
    results: list[AlgorithmResult],
    parameters: Optional[Dict[str, Any]] = None,
) -> AlgorithmResult:
    """Combine sequentially-composed sub-runs into a single result.

    The composite output is the node-wise union of the sub-run outputs and
    the composite cost is the sum of the sub-run costs, which is exactly how
    the paper composes A1/A2/A3 into the Theorem 1 and Theorem 2 algorithms
    (the sub-algorithms run one after the other on the same network).
    """
    if not results:
        raise ValueError("combine_results needs at least one sub-result")
    merged_metrics = ExecutionMetrics()
    merged_output = results[0].output
    truncated = results[0].truncated
    merged_metrics.merge(results[0].metrics)
    for result in results[1:]:
        merged_output = merged_output.merged_with(result.output)
        merged_metrics.merge(result.metrics)
        truncated = truncated or result.truncated
    return AlgorithmResult(
        algorithm=algorithm,
        model=model,
        output=merged_output,
        cost=AlgorithmCost.from_metrics(merged_metrics),
        metrics=merged_metrics,
        parameters=parameters or {},
        truncated=truncated,
    )
