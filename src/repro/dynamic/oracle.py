"""Incremental triangle maintenance over :class:`~repro.dynamic.delta.DeltaGraph`.

Full recomputation after a batch costs the whole ``edge_support`` pass —
O(Σ_e |N(u) ∩ N(v)|), seconds at n=4000.  A batch of k edge updates only
ever creates or destroys triangles *containing a batch edge*, so the
oracle walks just those:

* **destroyed** — triangles of the pre-batch snapshot G containing at least
  one deleted edge: for each deleted ``(u, v)``, every common neighbour
  ``w`` in G closes one,
* **created** — triangles of the post-batch snapshot G' containing at least
  one inserted edge, enumerated the same way on G'.

A triangle touching several batch edges would be enumerated once per such
edge; the *min-index rule* keeps exactly one copy — a triangle is charged
to the lowest-index batch edge it contains.  Each batch therefore costs
O(Σ deg(endpoint)) intersection work, independent of m.

From those exact sets the oracle maintains, in lockstep with the delta
layer's versions:

* the global triangle count,
* per-node triangle counts,
* the ``edge_support`` index (common-neighbour count per live edge),

and returns a :class:`BatchDelta` per batch — the effective edge changes
plus the created/destroyed triangle lists, which is the streaming
``listing`` mode of the serving layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..errors import GraphError
from ..graphs.csr import CSRGraph
from ..graphs.graph import Graph
from ..types import Edge, Triangle
from .delta import DeltaGraph, DeltaSnapshot, decode_edge_keys

__all__ = ["BatchDelta", "IncrementalTriangleOracle"]


@dataclass(frozen=True)
class BatchDelta:
    """The exact effect of one applied batch.

    ``inserted``/``deleted`` hold the *effective* edge changes (requests
    that were no-ops are dropped); ``created``/``destroyed`` list the
    triangles that appeared/disappeared, in canonical sorted order.
    """

    version: int
    inserted: Tuple[Edge, ...]
    deleted: Tuple[Edge, ...]
    created: Tuple[Triangle, ...]
    destroyed: Tuple[Triangle, ...]
    triangles_after: int
    compacted: bool

    def to_dict(self, *, include_triangles: bool = True) -> dict:
        doc = {
            "version": self.version,
            "inserted": [list(e) for e in self.inserted],
            "deleted": [list(e) for e in self.deleted],
            "created_count": len(self.created),
            "destroyed_count": len(self.destroyed),
            "triangles_after": self.triangles_after,
            "compacted": self.compacted,
        }
        if include_triangles:
            doc["created"] = [list(t) for t in self.created]
            doc["destroyed"] = [list(t) for t in self.destroyed]
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "BatchDelta":
        return cls(
            version=int(doc["version"]),
            inserted=tuple((int(u), int(v)) for u, v in doc["inserted"]),
            deleted=tuple((int(u), int(v)) for u, v in doc["deleted"]),
            created=tuple(tuple(int(x) for x in t) for t in doc.get("created", ())),
            destroyed=tuple(tuple(int(x) for x in t) for t in doc.get("destroyed", ())),
            triangles_after=int(doc["triangles_after"]),
            compacted=bool(doc["compacted"]),
        )


def _affected_triangles(
    snapshot: DeltaSnapshot, keys: np.ndarray, num_nodes: int
) -> List[Triangle]:
    """Triangles of ``snapshot`` containing at least one edge from ``keys``.

    Applies the min-index rule so each triangle appears exactly once even
    when two or three of its edges are in the batch.
    """
    n = max(num_nodes, 1)
    key_list = keys.tolist()
    index = {key: i for i, key in enumerate(key_list)}
    out: List[Triangle] = []
    for i, key in enumerate(key_list):
        u, v = key // n, key % n
        for w in snapshot.common_neighbors(u, v).tolist():
            lo_uw, hi_uw = (u, w) if u < w else (w, u)
            lo_vw, hi_vw = (v, w) if v < w else (w, v)
            j = index.get(lo_uw * n + hi_uw)
            if j is not None and j < i:
                continue
            j = index.get(lo_vw * n + hi_vw)
            if j is not None and j < i:
                continue
            a, b, c = sorted((u, v, w))
            out.append((a, b, c))
    out.sort()
    return out


class IncrementalTriangleOracle:
    """Maintains triangle counts and edge support under batched updates."""

    __slots__ = ("_graph", "_total", "_node_counts", "_support")

    def __init__(
        self,
        base: "Graph | CSRGraph",
        *,
        compact_threshold: int | None = None,
    ) -> None:
        self._graph = DeltaGraph(base, compact_threshold=compact_threshold)
        csr = self._graph.snapshot.base
        support = csr.edge_support()
        keys = csr._edge_key_array()
        self._support: Dict[int, int] = dict(zip(keys.tolist(), support.tolist()))
        self._node_counts = csr.local_triangle_counts().astype(np.int64, copy=True)
        self._total = csr.count_triangles()

    # -- read side ---------------------------------------------------------

    @property
    def graph(self) -> DeltaGraph:
        return self._graph

    @property
    def snapshot(self) -> DeltaSnapshot:
        return self._graph.snapshot

    @property
    def version(self) -> int:
        return self._graph.version

    @property
    def num_nodes(self) -> int:
        return self._graph.num_nodes

    @property
    def num_edges(self) -> int:
        return self._graph.num_edges

    @property
    def total_triangles(self) -> int:
        return self._total

    def node_count(self, node: int) -> int:
        if not 0 <= node < self._graph.num_nodes:
            raise GraphError(
                f"node {node} out of range for graph with {self._graph.num_nodes} nodes"
            )
        return int(self._node_counts[node])

    def node_counts(self) -> np.ndarray:
        return self._node_counts.copy()

    def support(self, u: int, v: int) -> Optional[int]:
        """Support of edge ``(u, v)``, or ``None`` when the edge is absent."""
        snap = self._graph.snapshot
        key = snap.edge_key(u, v)
        return self._support.get(key)

    def support_map(self) -> Dict[Edge, int]:
        n = max(self._graph.num_nodes, 1)
        return {(key // n, key % n): value for key, value in self._support.items()}

    # -- write side --------------------------------------------------------

    def apply_batch(
        self,
        insert: Iterable[Edge] = (),
        delete: Iterable[Edge] = (),
    ) -> BatchDelta:
        """Apply one batch and incrementally update every maintained index."""
        snap_before = self._graph.snapshot
        snap_after, ins_keys, del_keys = self._graph.apply_batch(insert, delete)
        num_nodes = snap_after.num_nodes
        n = max(num_nodes, 1)

        destroyed = _affected_triangles(snap_before, del_keys, num_nodes)
        created = _affected_triangles(snap_after, ins_keys, num_nodes)

        del_set = set(del_keys.tolist())
        for key in del_set:
            del self._support[key]
        for key in ins_keys.tolist():
            self._support[key] = 0

        for a, b, c in destroyed:
            self._total -= 1
            self._node_counts[a] -= 1
            self._node_counts[b] -= 1
            self._node_counts[c] -= 1
            for x, y in ((a, b), (a, c), (b, c)):
                key = x * n + y
                if key not in del_set:
                    self._support[key] -= 1
        for a, b, c in created:
            self._total += 1
            self._node_counts[a] += 1
            self._node_counts[b] += 1
            self._node_counts[c] += 1
            for x, y in ((a, b), (a, c), (b, c)):
                self._support[x * n + y] += 1

        return BatchDelta(
            version=snap_after.version,
            inserted=tuple(decode_edge_keys(ins_keys, num_nodes)),
            deleted=tuple(decode_edge_keys(del_keys, num_nodes)),
            created=tuple(created),
            destroyed=tuple(destroyed),
            triangles_after=self._total,
            compacted=snap_after.base is not snap_before.base,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IncrementalTriangleOracle(version={self.version}, "
            f"triangles={self._total}, edges={self.num_edges})"
        )
