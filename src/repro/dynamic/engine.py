"""Versioned query engine tying the incremental oracle to the query specs.

:class:`TriangleQueryEngine` is the single authority the serving layer and
the CLI talk to.  It owns one :class:`IncrementalTriangleOracle` and an
append-only journal of :class:`BatchDelta` records, and serializes every
``apply_batch``/``query`` under one re-entrant lock: a reader either sees
the state before a batch or after it, never a half-applied update, and
every :class:`~repro.api.queries.QueryResult` is stamped with the exact
snapshot version it was computed against.

The journal backs the ``delta-since`` query kind.  It is bounded
(``journal_limit`` batches); asking for history older than the oldest
retained batch raises :class:`~repro.errors.AnalysisError` telling the
client to refresh from a full query instead.  When ``listing`` is enabled
the journal keeps the created/destroyed triangle lists per batch, i.e. the
streaming listing mode; otherwise only counts are retained.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, Optional

import numpy as np

from ..api.queries import QueryResult, QuerySpec
from ..errors import AnalysisError, GraphError
from ..graphs.csr import CSRGraph
from ..graphs.graph import Graph
from ..types import Edge
from .delta import DeltaSnapshot
from .oracle import BatchDelta, IncrementalTriangleOracle

__all__ = ["DEFAULT_JOURNAL_LIMIT", "TriangleQueryEngine"]

DEFAULT_JOURNAL_LIMIT = 4096


class TriangleQueryEngine:
    """Apply update batches and answer registered query kinds, atomically."""

    def __init__(
        self,
        base: "Graph | CSRGraph",
        *,
        listing: bool = False,
        compact_threshold: Optional[int] = None,
        journal_limit: int = DEFAULT_JOURNAL_LIMIT,
    ) -> None:
        if journal_limit < 1:
            raise GraphError("journal_limit must be at least 1")
        self._oracle = IncrementalTriangleOracle(base, compact_threshold=compact_threshold)
        self._listing = bool(listing)
        self._journal: List[BatchDelta] = []
        self._journal_limit = int(journal_limit)
        self._lock = threading.RLock()
        self._batches_applied = 0
        self._queries_answered = 0

    # -- introspection -----------------------------------------------------

    @property
    def listing(self) -> bool:
        return self._listing

    @property
    def oracle(self) -> IncrementalTriangleOracle:
        return self._oracle

    @property
    def version(self) -> int:
        return self._oracle.version

    @property
    def snapshot(self) -> DeltaSnapshot:
        return self._oracle.snapshot

    @property
    def batches_applied(self) -> int:
        return self._batches_applied

    @property
    def queries_answered(self) -> int:
        return self._queries_answered

    def status(self) -> Dict[str, Any]:
        with self._lock:
            snap = self._oracle.snapshot
            return {
                "version": snap.version,
                "num_nodes": snap.num_nodes,
                "num_edges": snap.num_edges,
                "triangles": self._oracle.total_triangles,
                "overlay_size": snap.overlay_size,
                "compactions": self._oracle.graph.compactions,
                "batches_applied": self._batches_applied,
                "queries_answered": self._queries_answered,
                "journal_from_version": self._journal_from_version(),
                "listing": self._listing,
            }

    def _journal_from_version(self) -> int:
        """Oldest ``since`` version the journal can still answer."""
        if not self._journal:
            return self._oracle.version
        return self._journal[0].version - 1

    # -- ingest ------------------------------------------------------------

    def apply_batch(self, insert: Iterable[Edge] = (), delete: Iterable[Edge] = ()) -> BatchDelta:
        with self._lock:
            delta = self._oracle.apply_batch(insert, delete)
            self._journal.append(delta)
            if len(self._journal) > self._journal_limit:
                del self._journal[: len(self._journal) - self._journal_limit]
            self._batches_applied += 1
            return delta

    # -- queries -----------------------------------------------------------

    def query(self, spec: QuerySpec) -> QueryResult:
        if not isinstance(spec, QuerySpec):
            raise AnalysisError(f"query() expects a QuerySpec, got {type(spec).__name__}")
        with self._lock:
            handler = getattr(self, "_answer_" + spec.kind.replace("-", "_"))
            payload = handler(spec.params)
            self._queries_answered += 1
            return QueryResult(kind=spec.kind, version=self._oracle.version, payload=payload)

    def _answer_count(self, params: Dict[str, Any]) -> Dict[str, Any]:
        snap = self._oracle.snapshot
        return {
            "triangles": self._oracle.total_triangles,
            "num_nodes": snap.num_nodes,
            "num_edges": snap.num_edges,
        }

    def _answer_node_counts(self, params: Dict[str, Any]) -> Dict[str, Any]:
        num_nodes = self._oracle.num_nodes
        nodes = params.get("nodes")
        if nodes is None:
            nodes = list(range(num_nodes))
        for node in nodes:
            if node >= num_nodes:
                raise AnalysisError(
                    f"node {node} out of range for graph with {num_nodes} nodes"
                )
        counts = self._oracle.node_counts()
        return {
            "nodes": [int(n) for n in nodes],
            "counts": [int(counts[n]) for n in nodes],
        }

    def _answer_edge_support(self, params: Dict[str, Any]) -> Dict[str, Any]:
        num_nodes = self._oracle.num_nodes
        support: List[Optional[int]] = []
        edges: List[List[int]] = []
        for u, v in params["edges"]:
            if u == v or u >= num_nodes or v >= num_nodes:
                raise AnalysisError(
                    f"edge ({u}, {v}) is not a valid edge of a graph with {num_nodes} nodes"
                )
            lo, hi = (u, v) if u < v else (v, u)
            edges.append([int(lo), int(hi)])
            value = self._oracle.support(lo, hi)
            support.append(None if value is None else int(value))
        return {"edges": edges, "support": support}

    def _answer_delta_since(self, params: Dict[str, Any]) -> Dict[str, Any]:
        since = params["version"]
        current = self._oracle.version
        if since > current:
            raise AnalysisError(
                f"delta-since version {since} is ahead of the current version {current}"
            )
        oldest = self._journal_from_version()
        if since < oldest:
            raise AnalysisError(
                f"delta-since version {since} predates the retained journal "
                f"(oldest available: {oldest}); refresh with a full query instead"
            )
        batches = [
            delta.to_dict(include_triangles=self._listing)
            for delta in self._journal
            if delta.version > since
        ]
        return {"from_version": since, "batches": batches}

    # -- verification ------------------------------------------------------

    def verify_against_recompute(self) -> Dict[str, Any]:
        """Differentially pin the incremental state against a fresh CSR.

        Recomputes triangle count, per-node counts and edge support from a
        compaction of the current snapshot and compares exactly.  Raises
        :class:`AnalysisError` on any mismatch; returns a small summary
        otherwise.  Used by tests and the serving layer's self-check.
        """
        with self._lock:
            snap = self._oracle.snapshot
            fresh = snap.compact()
            problems: List[str] = []
            if fresh.count_triangles() != self._oracle.total_triangles:
                problems.append(
                    f"total {self._oracle.total_triangles} != recomputed {fresh.count_triangles()}"
                )
            if not np.array_equal(
                fresh.local_triangle_counts().astype(np.int64), self._oracle.node_counts()
            ):
                problems.append("per-node triangle counts diverged")
            n = max(snap.num_nodes, 1)
            fresh_keys = fresh._edge_key_array()
            fresh_support = dict(zip(fresh_keys.tolist(), fresh.edge_support().tolist()))
            incremental = {
                lo * n + hi: value for (lo, hi), value in self._oracle.support_map().items()
            }
            if fresh_support != incremental:
                problems.append("edge_support index diverged")
            if problems:
                raise AnalysisError(
                    "incremental oracle diverged from recompute at version "
                    f"{snap.version}: " + "; ".join(problems)
                )
            return {
                "version": snap.version,
                "triangles": self._oracle.total_triangles,
                "num_edges": snap.num_edges,
            }
