"""Socket front end for the triangle query engine.

Reuses the ``repro.service`` wire plane wholesale — length-prefixed
canonical-JSON frames, ``service.json`` discovery under a root directory,
unix socket with TCP-loopback fallback — so a resident ``repro query
--serve`` process looks exactly like the experiment dispatcher to tooling,
just with different verbs:

==============  =====================================================
frame            reply
==============  =====================================================
``hello``        ``welcome`` (protocol + service identity check)
``query``        ``query-result`` carrying a ``QueryResult`` document
``apply``        ``applied`` carrying the batch's ``BatchDelta``
``status``       ``status-reply`` with engine counters
``verify``       ``verified`` after a differential recompute check
``shutdown``     ``ok``, then the server winds down
==============  =====================================================

Malformed input answers an ``error`` frame and keeps the connection open
(one bad query must not kill an ingest channel sharing the service).  The
engine lock provides the consistency story: queries and batch applications
interleave atomically, and every reply carries the snapshot version it was
computed at.
"""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..api.queries import QueryResult, QuerySpec
from ..errors import ReproError, ServiceError
from ..service.protocol import (
    PROTOCOL_VERSION,
    ServiceClient,
    bind_service_socket,
    recv_frame,
    remove_service_info,
    send_frame,
    write_service_info,
)
from .engine import TriangleQueryEngine

__all__ = ["QueryClient", "QueryServer", "SERVICE_NAME"]

#: Value of the ``service`` field in ``service.json`` and ``welcome``
#: frames, so clients cannot accidentally talk triangle queries to an
#: experiment dispatcher (whose discovery file lacks the marker).
SERVICE_NAME = "query"


class QueryServer:
    """Serve one :class:`TriangleQueryEngine` over the service wire plane."""

    def __init__(
        self,
        root: "str | Path",
        engine: TriangleQueryEngine,
        *,
        source: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.root = Path(root)
        self.engine = engine
        self.source = dict(source or {})
        self.address = None
        self._listener = None
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()
        self._started_unix: Optional[float] = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        self._listener, self.address = bind_service_socket(self.root)
        self._listener.listen(16)
        self._started_unix = time.time()
        write_service_info(
            self.root,
            {
                "service": SERVICE_NAME,
                "address": self.address.to_dict(),
                "pid": os.getpid(),
                "protocol": PROTOCOL_VERSION,
                "started_unix": self._started_unix,
                "source": self.source,
            },
        )
        accept = threading.Thread(target=self._accept_loop, name="query-accept", daemon=True)
        accept.start()
        self._threads.append(accept)

    def wait(self) -> None:
        """Block until a ``shutdown`` frame (or :meth:`request_stop`)."""
        self._stop.wait()

    def request_stop(self) -> None:
        self._stop.set()

    def stop(self) -> None:
        """Stop accepting, close the listener, remove the discovery file."""
        self._stop.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - close can hardly fail
                pass
            self._listener = None
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads.clear()
        remove_service_info(self.root)

    def __enter__(self) -> "QueryServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- wire loop ---------------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        self._listener.settimeout(0.2)
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except TimeoutError:
                continue
            except OSError:
                break
            worker = threading.Thread(
                target=self._serve_connection, args=(conn,), name="query-conn", daemon=True
            )
            worker.start()

    def _serve_connection(self, conn) -> None:
        try:
            conn.settimeout(None)
            hello = recv_frame(conn)
            if (
                hello is None
                or hello.get("type") != "hello"
                or hello.get("protocol") != PROTOCOL_VERSION
            ):
                send_frame(conn, {"type": "error", "error": f"bad hello: {hello!r}"})
                return
            send_frame(
                conn,
                {
                    "type": "welcome",
                    "service": SERVICE_NAME,
                    "protocol": PROTOCOL_VERSION,
                    "version": self.engine.version,
                },
            )
            while not self._stop.is_set():
                frame = recv_frame(conn)
                if frame is None:
                    return
                try:
                    reply = self._handle(frame)
                except ReproError as exc:
                    reply = {"type": "error", "error": str(exc)}
                send_frame(conn, reply)
                if frame.get("type") == "shutdown" and reply.get("type") == "ok":
                    self._stop.set()
                    return
        except (OSError, ServiceError):
            pass
        finally:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    def _handle(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        kind = frame.get("type")
        if kind == "query":
            spec = QuerySpec.from_dict(frame.get("spec"))
            result = self.engine.query(spec)
            return {"type": "query-result", "result": result.to_dict()}
        if kind == "apply":
            insert = frame.get("insert", [])
            delete = frame.get("delete", [])
            if not isinstance(insert, list) or not isinstance(delete, list):
                raise ServiceError("apply frame needs 'insert' and 'delete' edge lists")
            delta = self.engine.apply_batch(insert=insert, delete=delete)
            return {
                "type": "applied",
                "version": delta.version,
                "delta": delta.to_dict(include_triangles=self.engine.listing),
            }
        if kind == "status":
            status = self.engine.status()
            status.update(
                {
                    "type": "status-reply",
                    "service": SERVICE_NAME,
                    "pid": os.getpid(),
                    "uptime_seconds": (
                        0.0 if self._started_unix is None else time.time() - self._started_unix
                    ),
                    "source": self.source,
                }
            )
            return status
        if kind == "verify":
            summary = self.engine.verify_against_recompute()
            summary["type"] = "verified"
            return summary
        if kind == "shutdown":
            return {"type": "ok"}
        return {"type": "error", "error": f"unknown frame type {kind!r}"}


class QueryClient(ServiceClient):
    """Typed client for :class:`QueryServer` roots.

    Inherits the handshake, retry-connect and request/reply machinery from
    :class:`~repro.service.protocol.ServiceClient`; refuses to talk to a
    root whose ``service.json`` is not a query service.
    """

    def __init__(self, root: "str | Path", timeout: float = 30.0) -> None:
        super().__init__(root, timeout=timeout)
        if self.service_info.get("service") != SERVICE_NAME:
            self.close()
            raise ServiceError(
                f"{self.root} is not a triangle query service "
                f"(service.json says {self.service_info.get('service')!r})"
            )

    def query(self, spec: QuerySpec) -> QueryResult:
        reply = self.request({"type": "query", "spec": spec.to_dict()})
        return QueryResult.from_dict(reply["result"])

    def apply(self, insert=(), delete=()) -> Dict[str, Any]:
        """Apply one batch; returns the server's ``BatchDelta`` document."""
        reply = self.request(
            {
                "type": "apply",
                "insert": [list(edge) for edge in insert],
                "delete": [list(edge) for edge in delete],
            }
        )
        return reply["delta"]

    def verify(self) -> Dict[str, Any]:
        """Ask the server to differentially verify against a recompute."""
        return self.request({"type": "verify"})
