"""Handlers behind ``repro query``.

The argument surface lives in :mod:`repro.api.cli` (so ``repro --help``
never imports this layer); this module does the work.  ``repro query`` has
three shapes:

* **one-shot** — ``repro query --graph FILE`` / ``--workload NAME``: build
  the graph in-process, optionally apply update batches, answer one query,
  exit.  No sockets involved.
* **serve** — ``repro query ROOT --serve --graph FILE``: run a resident
  :class:`~repro.dynamic.serving.QueryServer` in the foreground, discovery
  via ``ROOT/service.json``, stopped by Ctrl-C/SIGTERM or ``--stop``.
* **client** — ``repro query ROOT [--kind ... | --spec FILE] [--apply ...]``:
  talk to a running server; batches go down the same connection as queries,
  so an ingest script and a reader see the server's monotone versions.

Everything follows the CLI conventions: ``--json`` everywhere, malformed
specs/batches fail as :class:`~repro.errors.ReproError` → exit 2.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..api.queries import QueryResult, QuerySpec
from ..errors import AnalysisError
from .engine import TriangleQueryEngine
from .serving import QueryClient, QueryServer

__all__ = ["cmd_query"]


def _emit_json(payload: Any) -> None:
    print(json.dumps(payload, indent=2, sort_keys=True))


# ---------------------------------------------------------------------------
# spec / batch assembly
# ---------------------------------------------------------------------------


def _spec_from_args(args: argparse.Namespace) -> Optional[QuerySpec]:
    """Build the QuerySpec, or ``None`` when the invocation is apply-only."""
    if args.spec and args.kind:
        raise AnalysisError("--spec and --kind are mutually exclusive")
    if args.spec:
        try:
            text = Path(args.spec).read_text(encoding="utf-8")
        except OSError as exc:
            raise AnalysisError(f"cannot read query spec file {args.spec!r}: {exc}") from exc
        return QuerySpec.from_json(text)
    if args.kind:
        params: Dict[str, Any] = {}
        if args.params:
            try:
                params = json.loads(args.params)
            except json.JSONDecodeError as exc:
                raise AnalysisError(f"--params must be a JSON object: {exc}") from exc
            if not isinstance(params, dict):
                raise AnalysisError(f"--params must be a JSON object, got {params!r}")
        return QuerySpec(kind=args.kind, params=params)
    if args.params:
        raise AnalysisError("--params needs --kind")
    if args.apply or args.apply_edges:
        return None  # apply-only invocation
    return QuerySpec(kind="count")


def _load_batch_file(path: str) -> Tuple[List[List[int]], List[List[int]]]:
    """Read one ``{"insert": [[u,v],...], "delete": [...]}`` batch file."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as exc:
        raise AnalysisError(f"cannot read batch file {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise AnalysisError(f"batch file {path!r} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise AnalysisError(f"batch file {path!r} must hold a JSON object")
    unknown = set(payload) - {"insert", "delete"}
    if unknown:
        raise AnalysisError(
            f"batch file {path!r} has unknown fields {sorted(unknown)} "
            "(accepts 'insert' and 'delete')"
        )
    insert = payload.get("insert", [])
    delete = payload.get("delete", [])
    if not isinstance(insert, list) or not isinstance(delete, list):
        raise AnalysisError(f"batch file {path!r}: 'insert'/'delete' must be lists of [u, v] pairs")
    return insert, delete


def _batches_from_args(args: argparse.Namespace) -> List[Tuple[List, List]]:
    """One ``(insert, delete)`` batch per ``--apply``/``--apply-edges`` flag."""
    batches: List[Tuple[List, List]] = []
    for path in args.apply or ():
        batches.append(_load_batch_file(path))
    for path in args.apply_edges or ():
        from ..graphs.io import read_edge_stream

        batches.append(([edge for edge in read_edge_stream(path)], []))
    return batches


# ---------------------------------------------------------------------------
# graph sources
# ---------------------------------------------------------------------------


def _build_engine(args: argparse.Namespace) -> Tuple[TriangleQueryEngine, Dict[str, Any]]:
    if args.graph and args.workload:
        raise AnalysisError("--graph and --workload are mutually exclusive")
    if args.graph:
        from ..graphs.io import read_edge_list

        graph = read_edge_list(args.graph)
        source: Dict[str, Any] = {"graph": str(args.graph)}
    elif args.workload:
        from ..api.registry import get_workload

        params: Dict[str, Any] = {}
        if args.workload_params:
            try:
                params = json.loads(args.workload_params)
            except json.JSONDecodeError as exc:
                raise AnalysisError(f"--workload-params must be a JSON object: {exc}") from exc
            if not isinstance(params, dict):
                raise AnalysisError(f"--workload-params must be a JSON object, got {params!r}")
        graph = get_workload(args.workload).build(params, seed=args.seed)
        source = {"workload": args.workload, "params": params, "seed": args.seed}
    else:
        raise AnalysisError(
            "a graph source is required here: --graph FILE or --workload NAME "
            "(client mode needs a ROOT with a running 'repro query --serve')"
        )
    engine = TriangleQueryEngine(
        graph,
        listing=args.listing,
        compact_threshold=args.compact_threshold,
    )
    return engine, source


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------


def _print_result(result: QueryResult) -> None:
    payload = result.payload
    if result.kind == "count":
        print(
            f"triangles={payload['triangles']} (version {result.version}, "
            f"n={payload['num_nodes']}, m={payload['num_edges']})"
        )
    elif result.kind == "node-counts":
        print(f"per-node triangle counts at version {result.version}:")
        for node, count in zip(payload["nodes"], payload["counts"]):
            print(f"  {node}\t{count}")
    elif result.kind == "edge-support":
        print(f"edge support at version {result.version}:")
        for (u, v), support in zip(payload["edges"], payload["support"]):
            shown = "absent" if support is None else support
            print(f"  ({u}, {v})\t{shown}")
    elif result.kind == "delta-since":
        batches = payload["batches"]
        print(
            f"{len(batches)} batch(es) applied since version "
            f"{payload['from_version']} (now at {result.version}):"
        )
        for batch in batches:
            line = (
                f"  v{batch['version']}: +{len(batch['inserted'])} edges, "
                f"-{len(batch['deleted'])} edges, "
                f"+{batch['created_count']}/-{batch['destroyed_count']} triangles"
            )
            if batch.get("compacted"):
                line += " [compacted]"
            print(line)
    else:  # pragma: no cover - every registered kind is rendered above
        _emit_json(result.to_dict())


def _print_applied(applied: List[Dict[str, Any]]) -> None:
    for delta in applied:
        line = (
            f"applied batch -> version {delta['version']}: "
            f"+{len(delta['inserted'])}/-{len(delta['deleted'])} edges, "
            f"+{delta['created_count']}/-{delta['destroyed_count']} triangles "
            f"({delta['triangles_after']} total)"
        )
        if delta.get("compacted"):
            line += " [compacted]"
        print(line)


# ---------------------------------------------------------------------------
# the three shapes
# ---------------------------------------------------------------------------


def _cmd_query_stop(args: argparse.Namespace) -> int:
    root = Path(args.root)
    with QueryClient(root) as client:
        client.shutdown()
    if args.json:
        _emit_json({"root": str(root), "stopped": True})
    else:
        print(f"asked the query service in {root} to shut down")
    return 0


def _cmd_query_serve(args: argparse.Namespace) -> int:
    root = Path(args.root)
    engine, source = _build_engine(args)
    server = QueryServer(root, engine, source=source)
    server.start()
    try:
        signal.signal(signal.SIGTERM, lambda *_: server.request_stop())
    except ValueError:
        pass  # not the main thread (embedding); rely on client shutdown
    if args.json:
        _emit_json(
            {
                "root": str(root),
                "address": server.address.to_dict(),
                "version": engine.version,
                "triangles": engine.oracle.total_triangles,
                "source": source,
            }
        )
        sys.stdout.flush()
    else:
        print(
            f"repro query service listening at {server.address.describe()} "
            f"({engine.oracle.total_triangles} triangles at version "
            f"{engine.version}); stop with Ctrl-C or 'repro query {root} --stop'",
            file=sys.stderr,
        )
    try:
        server.wait()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def _cmd_query_oneshot(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args)
    batches = _batches_from_args(args)
    engine, _source = _build_engine(args)
    applied = [
        engine.apply_batch(insert=insert, delete=delete).to_dict(
            include_triangles=args.listing
        )
        for insert, delete in batches
    ]
    result = engine.query(spec) if spec is not None else None
    if args.json:
        payload: Dict[str, Any] = {"version": engine.version}
        if applied:
            payload["applied"] = applied
        if result is not None:
            payload["result"] = result.to_dict()
        _emit_json(payload)
        return 0
    if applied:
        _print_applied(applied)
    if result is not None:
        _print_result(result)
    return 0


def _cmd_query_client(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args)
    batches = _batches_from_args(args)
    with QueryClient(Path(args.root)) as client:
        applied = [
            client.apply(insert=insert, delete=delete) for insert, delete in batches
        ]
        result = client.query(spec) if spec is not None else None
    if args.json:
        payload: Dict[str, Any] = {"root": str(args.root)}
        if applied:
            payload["applied"] = applied
        if result is not None:
            payload["result"] = result.to_dict()
            payload["version"] = result.version
        elif applied:
            payload["version"] = applied[-1]["version"]
        _emit_json(payload)
        return 0
    if applied:
        _print_applied(applied)
    if result is not None:
        _print_result(result)
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    """Dispatch ``repro query`` to its one-shot/serve/client shape."""
    if args.stop and args.serve:
        raise AnalysisError("--stop and --serve are mutually exclusive")
    if args.stop:
        if not args.root:
            raise AnalysisError("--stop needs the service ROOT directory")
        return _cmd_query_stop(args)
    if args.serve:
        if not args.root:
            raise AnalysisError("--serve needs a ROOT directory for service.json")
        return _cmd_query_serve(args)
    if args.graph or args.workload:
        if args.root:
            raise AnalysisError(
                "a graph source (--graph/--workload) answers in-process; "
                "drop ROOT, or drop the source to query the service at ROOT"
            )
        return _cmd_query_oneshot(args)
    if not args.root:
        raise AnalysisError(
            "nothing to query: give a ROOT with a running service, or a "
            "graph source (--graph FILE / --workload NAME) for one-shot mode"
        )
    return _cmd_query_client(args)
