"""Delta layer over the immutable CSR substrate.

The batch pipeline builds one :class:`~repro.graphs.csr.CSRGraph` per
workload and never mutates it.  Online serving needs the opposite: a graph
that absorbs a stream of edge insert/delete batches while readers keep
asking triangle questions.  Rebuilding the CSR arrays per batch is O(m);
this module instead layers a small sorted overlay on top of the frozen
base:

* ``added_keys`` — canonical edge keys present in the snapshot but not in
  the base CSR,
* ``removed_keys`` — tombstones: base edges deleted from the snapshot.

Both arrays are sorted ``int64`` and disjoint from each other, so
membership tests are ``searchsorted`` and the effective edge set is a pair
of set operations away.  Once the overlay grows past a threshold the
snapshot is *compacted* back into a fresh ``CSRGraph``; because edge keys
are canonical (``u < v``, sorted ascending) compaction is byte-deterministic
— the same logical graph always produces identical CSR arrays no matter
which batch sequence produced it.

:class:`DeltaSnapshot` is immutable and safe to hand to concurrent readers;
:class:`DeltaGraph` owns the current snapshot and serializes batch
application, bumping a monotone version per batch so readers can pin the
exact state an answer was computed against.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from ..errors import GraphError
from ..graphs.csr import CSRGraph
from ..graphs.graph import Graph
from ..types import Edge

__all__ = [
    "DEFAULT_COMPACT_THRESHOLD",
    "DeltaGraph",
    "DeltaSnapshot",
    "canonical_batch_keys",
    "decode_edge_keys",
]

#: Overlay size (``len(added) + len(removed)``) above which ``apply_batch``
#: folds the overlay into a fresh CSR base.  Kept deliberately modest: the
#: per-batch oracle walk touches overlay adjacency dicts, and a bounded
#: overlay keeps those dicts cache-resident.
DEFAULT_COMPACT_THRESHOLD = 4096

_EMPTY_KEYS = np.empty(0, dtype=np.int64)
_EMPTY_KEYS.setflags(write=False)


def _frozen_keys(array: np.ndarray) -> np.ndarray:
    out = np.ascontiguousarray(array, dtype=np.int64)
    if out is array:
        out = array.copy()
    out.setflags(write=False)
    return out


def in_sorted(haystack: np.ndarray, needles: np.ndarray) -> np.ndarray:
    """Vectorized membership of ``needles`` in a sorted ``haystack``."""
    needles = np.asarray(needles, dtype=np.int64)
    out = np.zeros(needles.shape, dtype=bool)
    if haystack.size == 0 or needles.size == 0:
        return out
    pos = np.searchsorted(haystack, needles)
    valid = pos < haystack.size
    out[valid] = haystack[pos[valid]] == needles[valid]
    return out


def canonical_batch_keys(edges: Iterable[Tuple[int, int]], num_nodes: int) -> np.ndarray:
    """Validate and canonicalize a batch of edges into sorted unique keys.

    Raises :class:`~repro.errors.GraphError` on self-loops or endpoints
    outside ``[0, num_nodes)``.  Duplicate pairs within a batch collapse to
    one key — applying ``(u, v)`` twice in one batch is idempotent.
    """
    pairs = list(edges)
    if not pairs:
        return _EMPTY_KEYS
    try:
        arr = np.asarray(pairs, dtype=np.int64)
    except (TypeError, ValueError, OverflowError) as exc:
        raise GraphError(f"edge batch must be a sequence of integer (u, v) pairs: {exc}") from exc
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise GraphError("edge batch must be a sequence of (u, v) pairs")
    u = arr[:, 0]
    v = arr[:, 1]
    if u.size and (int(arr.min()) < 0 or int(arr.max()) >= num_nodes):
        raise GraphError(
            f"edge endpoint out of range for graph with {num_nodes} nodes"
        )
    if bool((u == v).any()):
        raise GraphError("self-loops are not allowed in edge batches")
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    keys = lo * np.int64(max(num_nodes, 1)) + hi
    return _frozen_keys(np.unique(keys))


def decode_edge_keys(keys: np.ndarray, num_nodes: int) -> List[Edge]:
    """Decode sorted canonical edge keys back into ``(u, v)`` tuples."""
    n = max(num_nodes, 1)
    return [(int(k) // n, int(k) % n) for k in np.asarray(keys, dtype=np.int64)]


def _overlay_adjacency(keys: np.ndarray, num_nodes: int) -> Dict[int, np.ndarray]:
    """Symmetric per-node adjacency for a (small) overlay key array."""
    n = max(num_nodes, 1)
    lists: Dict[int, List[int]] = {}
    for key in keys.tolist():
        u, v = key // n, key % n
        lists.setdefault(u, []).append(v)
        lists.setdefault(v, []).append(u)
    out: Dict[int, np.ndarray] = {}
    for node, neigh in lists.items():
        arr = np.array(sorted(neigh), dtype=np.int64)
        arr.setflags(write=False)
        out[node] = arr
    return out


class DeltaSnapshot:
    """An immutable, versioned view of base CSR plus an edge overlay.

    The overlay invariants (established by :class:`DeltaGraph`, assumed
    here): ``added_keys`` and ``removed_keys`` are sorted, unique, mutually
    disjoint; ``added_keys`` is disjoint from the base edge set and
    ``removed_keys`` is a subset of it.
    """

    __slots__ = (
        "base",
        "version",
        "added_keys",
        "removed_keys",
        "_added_adj",
        "_removed_adj",
        "__weakref__",
    )

    def __init__(
        self,
        base: CSRGraph,
        version: int,
        added_keys: np.ndarray | None = None,
        removed_keys: np.ndarray | None = None,
    ) -> None:
        self.base = base
        self.version = int(version)
        self.added_keys = _frozen_keys(added_keys if added_keys is not None else _EMPTY_KEYS)
        self.removed_keys = _frozen_keys(removed_keys if removed_keys is not None else _EMPTY_KEYS)
        self._added_adj = _overlay_adjacency(self.added_keys, base.num_nodes)
        self._removed_adj = _overlay_adjacency(self.removed_keys, base.num_nodes)

    # -- basic shape -------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self.base.num_nodes

    @property
    def num_edges(self) -> int:
        return self.base.num_edges - int(self.removed_keys.size) + int(self.added_keys.size)

    @property
    def overlay_size(self) -> int:
        return int(self.added_keys.size) + int(self.removed_keys.size)

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.base.num_nodes:
            raise GraphError(f"node {node} out of range for graph with {self.base.num_nodes} nodes")

    # -- queries -----------------------------------------------------------

    def edge_key(self, u: int, v: int) -> int:
        self._check_node(u)
        self._check_node(v)
        if u == v:
            raise GraphError("self-loops have no edge key")
        lo, hi = (u, v) if u < v else (v, u)
        return lo * max(self.base.num_nodes, 1) + hi

    def has_edge(self, u: int, v: int) -> bool:
        if u == v:
            return False
        key = np.array([self.edge_key(u, v)], dtype=np.int64)
        if bool(in_sorted(self.added_keys, key)[0]):
            return True
        if bool(in_sorted(self.removed_keys, key)[0]):
            return False
        return self.base.has_edge(u, v)

    def neighbors(self, node: int) -> np.ndarray:
        """Sorted effective neighbourhood: base row minus tombstones plus adds."""
        self._check_node(node)
        row = self.base.neighbor_slice(node)
        removed = self._removed_adj.get(node)
        if removed is not None:
            row = np.setdiff1d(row, removed, assume_unique=True)
        added = self._added_adj.get(node)
        if added is not None:
            row = np.union1d(row, added)
        return row

    def degree(self, node: int) -> int:
        self._check_node(node)
        removed = self._removed_adj.get(node)
        added = self._added_adj.get(node)
        return (
            self.base.degree(node)
            - (0 if removed is None else int(removed.size))
            + (0 if added is None else int(added.size))
        )

    def common_neighbors(self, u: int, v: int) -> np.ndarray:
        return np.intersect1d(self.neighbors(u), self.neighbors(v), assume_unique=True)

    # -- materialization ---------------------------------------------------

    def edge_keys(self) -> np.ndarray:
        """Sorted canonical keys of the effective edge set."""
        base_keys = self.base._edge_key_array()
        if self.removed_keys.size:
            base_keys = np.setdiff1d(base_keys, self.removed_keys, assume_unique=True)
        if self.added_keys.size:
            return np.union1d(base_keys, self.added_keys)
        return base_keys

    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        keys = self.edge_keys()
        n = np.int64(max(self.base.num_nodes, 1))
        return keys // n, keys % n

    def compact(self) -> CSRGraph:
        """Fold the overlay into a fresh CSR.

        Deterministic: the effective key set is canonical and sorted, so the
        resulting CSR arrays are byte-identical for any batch history that
        reaches the same logical graph.
        """
        edge_u, edge_v = self.edge_arrays()
        return CSRGraph.from_edge_arrays(self.base.num_nodes, edge_u, edge_v)

    def materialize(self) -> Graph:
        """Build a mutable :class:`Graph` with the effective edge set."""
        edge_u, edge_v = self.edge_arrays()
        return Graph.from_edge_arrays(self.base.num_nodes, edge_u, edge_v, deduplicate=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DeltaSnapshot(version={self.version}, nodes={self.num_nodes}, "
            f"edges={self.num_edges}, overlay=+{self.added_keys.size}/-{self.removed_keys.size})"
        )


class DeltaGraph:
    """Mutable front over :class:`DeltaSnapshot` with batched updates.

    ``apply_batch`` is the only mutator.  It canonicalizes the batch,
    reduces it to its *effective* part (inserts already present and deletes
    already absent are dropped), produces a new immutable snapshot with the
    version bumped by one, and compacts when the overlay exceeds the
    threshold.  Readers grab ``.snapshot`` once and work on a consistent
    frozen state for as long as they like.
    """

    __slots__ = ("_snapshot", "_compact_threshold", "_compactions", "_lock")

    def __init__(
        self,
        base: "Graph | CSRGraph",
        *,
        compact_threshold: int | None = None,
    ) -> None:
        csr = base.csr() if isinstance(base, Graph) else base
        if not isinstance(csr, CSRGraph):
            raise GraphError(f"DeltaGraph needs a Graph or CSRGraph base, got {type(base).__name__}")
        if compact_threshold is None:
            compact_threshold = DEFAULT_COMPACT_THRESHOLD
        if compact_threshold < 1:
            raise GraphError("compact_threshold must be at least 1")
        self._snapshot = DeltaSnapshot(csr, 0)
        self._compact_threshold = int(compact_threshold)
        self._compactions = 0
        self._lock = threading.Lock()

    @property
    def snapshot(self) -> DeltaSnapshot:
        return self._snapshot

    @property
    def version(self) -> int:
        return self._snapshot.version

    @property
    def num_nodes(self) -> int:
        return self._snapshot.num_nodes

    @property
    def num_edges(self) -> int:
        return self._snapshot.num_edges

    @property
    def compact_threshold(self) -> int:
        return self._compact_threshold

    @property
    def compactions(self) -> int:
        return self._compactions

    def apply_batch(
        self,
        insert: Iterable[Tuple[int, int]] = (),
        delete: Iterable[Tuple[int, int]] = (),
    ) -> Tuple[DeltaSnapshot, np.ndarray, np.ndarray]:
        """Apply one insert/delete batch and return the new snapshot.

        Returns ``(snapshot, inserted_keys, deleted_keys)`` where the key
        arrays hold only the *effective* part of the batch.  Asking to both
        insert and delete the same edge in one batch is ambiguous and
        raises :class:`~repro.errors.GraphError`; every call bumps the
        version even when the effective batch is empty.
        """
        num_nodes = self._snapshot.num_nodes
        ins_keys = canonical_batch_keys(insert, num_nodes)
        del_keys = canonical_batch_keys(delete, num_nodes)
        both = np.intersect1d(ins_keys, del_keys, assume_unique=True)
        if both.size:
            u, v = decode_edge_keys(both[:1], num_nodes)[0]
            raise GraphError(f"edge ({u}, {v}) appears in both insert and delete sets of one batch")
        with self._lock:
            snap = self._snapshot
            base_keys = snap.base._edge_key_array()

            ins_in_base = in_sorted(base_keys, ins_keys)
            ins_in_removed = in_sorted(snap.removed_keys, ins_keys)
            ins_in_added = in_sorted(snap.added_keys, ins_keys)
            ins_present = (ins_in_base & ~ins_in_removed) | ins_in_added
            eff_ins = ins_keys[~ins_present]
            eff_ins_in_base = ins_in_base[~ins_present]

            del_in_base = in_sorted(base_keys, del_keys)
            del_in_removed = in_sorted(snap.removed_keys, del_keys)
            del_in_added = in_sorted(snap.added_keys, del_keys)
            del_present = (del_in_base & ~del_in_removed) | del_in_added
            eff_del = del_keys[del_present]
            eff_del_in_added = del_in_added[del_present]

            added = snap.added_keys
            removed = snap.removed_keys
            if eff_del.size:
                added = np.setdiff1d(added, eff_del[eff_del_in_added], assume_unique=True)
                removed = np.union1d(removed, eff_del[~eff_del_in_added])
            if eff_ins.size:
                removed = np.setdiff1d(removed, eff_ins[eff_ins_in_base], assume_unique=True)
                added = np.union1d(added, eff_ins[~eff_ins_in_base])

            version = snap.version + 1
            if int(added.size) + int(removed.size) > self._compact_threshold:
                staged = DeltaSnapshot(snap.base, version, added, removed)
                new_snap = DeltaSnapshot(staged.compact(), version)
                self._compactions += 1
            else:
                new_snap = DeltaSnapshot(snap.base, version, added, removed)
            self._snapshot = new_snap
            return new_snap, _frozen_keys(eff_ins), _frozen_keys(eff_del)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DeltaGraph({self._snapshot!r}, compactions={self._compactions})"
