"""Online triangle serving: dynamic graphs and the incremental oracle.

The fourth layer of the system.  ``repro.graphs`` builds immutable CSR
snapshots; this package makes them *live*: a delta overlay absorbing edge
insert/delete batches (:mod:`~repro.dynamic.delta`), exact incremental
maintenance of triangle counts and edge support per batch
(:mod:`~repro.dynamic.oracle`), a versioned query engine
(:mod:`~repro.dynamic.engine`) and a socket service speaking the
``repro.service`` wire plane (:mod:`~repro.dynamic.serving`) — the
machinery behind ``repro query``.
"""

from .delta import DEFAULT_COMPACT_THRESHOLD, DeltaGraph, DeltaSnapshot
from .engine import TriangleQueryEngine
from .oracle import BatchDelta, IncrementalTriangleOracle
from .serving import QueryClient, QueryServer

__all__ = [
    "DEFAULT_COMPACT_THRESHOLD",
    "BatchDelta",
    "DeltaGraph",
    "DeltaSnapshot",
    "IncrementalTriangleOracle",
    "QueryClient",
    "QueryServer",
    "TriangleQueryEngine",
]
