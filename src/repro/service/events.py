"""Append-only incident log for the experiment service.

Every noteworthy failure-path event — a lease expiring, a worker being
evicted or respawned, a cell retried or quarantined, a fault firing, a
drain starting — lands as one canonical-JSON line in
``<root>/events.jsonl``: ``{"ts": <unix seconds>, "event": <name>,
...event fields}``.  The file is the service's flight recorder: after a
chaos run (or a real incident) it answers *what happened, in what
order, to which cell* without reconstructing anything from scattered
worker logs.

Writes go through one ``open(append)`` + single ``write`` per line, so
multiple processes — the dispatcher and every worker, whose fault
planes log fault firings to the same file — can append concurrently
without interleaving (POSIX ``O_APPEND`` single-write atomicity at
these line sizes).  A broken event log never breaks the service:
:meth:`EventLog.emit` swallows ``OSError``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..errors import ServiceError

__all__ = ["EVENTS_FILE_NAME", "EventLog", "read_events"]

#: File name of the incident log inside a service root.
EVENTS_FILE_NAME = "events.jsonl"


class EventLog:
    """Appender for one service root's ``events.jsonl``."""

    def __init__(self, path: "str | Path") -> None:
        self.path = Path(path)

    def emit(self, event: str, **fields: Any) -> None:
        """Append one event line (best-effort; never raises)."""
        payload: Dict[str, Any] = {"ts": round(time.time(), 3), "event": event}
        for key, value in sorted(fields.items()):
            if key not in payload:
                payload[key] = value
        line = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        try:
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(line + "\n")
                handle.flush()
        except OSError:
            pass

    def sink(self, payload: Dict[str, Any]) -> None:
        """Adapter for :class:`repro.faults.FaultPlane`'s event sink."""
        fields = dict(payload)
        event = str(fields.pop("event", "fault-fired"))
        self.emit(event, **fields)


def read_events(
    root_or_path: "str | Path", tail: Optional[int] = None
) -> List[Dict[str, Any]]:
    """Read a service's incident log, oldest first.

    ``root_or_path`` may be the service root directory (its
    ``events.jsonl`` is read) or the log file itself.  ``tail`` keeps
    only the last that-many events.  A missing file is an empty log; a
    torn final line (a process died mid-append) is ignored, but
    corruption before it is an error.
    """
    path = Path(root_or_path)
    if path.is_dir():
        path = path / EVENTS_FILE_NAME
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        return []
    complete, _, _ = text.rpartition("\n")
    events: List[Dict[str, Any]] = []
    for number, line in enumerate(complete.split("\n"), start=1):
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ServiceError(
                f"{path}: event line {number} is not valid JSON: {exc}"
            ) from exc
        if isinstance(payload, dict):
            events.append(payload)
    if tail is not None and tail >= 0:
        events = events[len(events) - min(tail, len(events)):]
    return events
