"""Wire protocol of the experiment service: framed canonical JSON.

Everything the service says on a socket — worker leases, completed
records, heartbeats, control commands — is one **frame**: a 4-byte
big-endian length prefix followed by that many bytes of canonical JSON
(sorted keys, compact separators; the exact encoding the JSONL store
uses).  Framing this way keeps the protocol auditable with ``strace``
and a JSON pretty-printer, and means a record travels the wire in the
same canonical bytes the dispatcher will append to the store.

Every frame is a JSON object with a ``"type"`` field.  Worker-plane
types: ``hello`` / ``welcome``, ``ready`` → ``lease`` | ``shutdown``,
``record``, ``cell-error``, ``heartbeat``.  Control-plane types:
``submit`` → ``submitted``, ``status`` → ``status-reply``,
``job-status`` → ``job-reply``, ``shutdown`` → ``ok``, and ``error``
for any rejected request.

The service listens on a Unix-domain socket inside its root directory
(falling back to a loopback TCP port where ``AF_UNIX`` is missing) and
advertises the address in ``<root>/service.json`` so ``repro submit`` /
``repro status`` / workers can find it.  :class:`ServiceClient` is the
control-plane client those commands (and the tests and benchmarks) use.
"""

from __future__ import annotations

import errno
import json
import os
import socket
import struct
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Optional

from ..api.records import canonical_json
from ..errors import ServiceError
from ..faults import fault_point, injected_os_error

__all__ = [
    "PROTOCOL_VERSION",
    "FRAME_MAX_BYTES",
    "SERVICE_INFO_NAME",
    "ServiceAddress",
    "ServiceClient",
    "send_frame",
    "recv_frame",
    "read_service_info",
    "write_service_info",
    "remove_service_info",
]

#: Version stamped into ``hello``/``welcome`` frames; bumped on any
#: incompatible change to the frame vocabulary.
PROTOCOL_VERSION = 1

#: Upper bound on one frame's payload.  Record documents are a few KiB;
#: a submit frame carries one sweep spec.  Anything near this limit is a
#: bug or an attack, not traffic.
FRAME_MAX_BYTES = 64 * 1024 * 1024

#: Name of the discovery file the dispatcher writes into its root.
SERVICE_INFO_NAME = "service.json"

_LENGTH = struct.Struct(">I")


def send_frame(sock: socket.socket, payload: Dict[str, Any]) -> None:
    """Send one frame (length prefix + canonical JSON) atomically-enough.

    ``sendall`` on one pre-assembled buffer, so concurrent senders on the
    same socket (a worker's heartbeat thread next to its main loop) only
    need a lock around this call, never byte-level interleaving care.
    """
    data = canonical_json(payload).encode("utf-8")
    if len(data) > FRAME_MAX_BYTES:
        raise ServiceError(
            f"refusing to send a {len(data)}-byte frame "
            f"(limit {FRAME_MAX_BYTES}); type={payload.get('type')!r}"
        )
    fault = fault_point("protocol.send", frame=str(payload.get("type")))
    if fault is not None:
        # Either way the peer sees a half/garbled frame and treats the
        # connection as lost; the sender must see a *socket* failure
        # (OSError), because ServiceError from an assignment send is
        # job-fatal while a connection loss requeues the lease.
        if fault.action == "truncate":
            half = data[: max(1, len(data) // 2)]
            sock.sendall(_LENGTH.pack(len(data)) + half)
            sock.close()
            raise injected_os_error(errno.EPIPE, "frame truncated mid-send")
        if fault.action == "corrupt":
            sock.sendall(_LENGTH.pack(len(data)) + fault.corrupt_bytes(data))
            sock.close()
            raise injected_os_error(errno.EPIPE, "frame corrupted in flight")
        if fault.action == "delay":
            time.sleep(fault.seconds())
    sock.sendall(_LENGTH.pack(len(data)) + data)


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes; ``None`` on EOF before the first byte."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == count:
                return None
            raise ServiceError(
                f"connection closed mid-frame ({count - remaining}/{count} "
                "bytes received)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Receive one frame; ``None`` on a clean EOF at a frame boundary."""
    header = _recv_exact(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > FRAME_MAX_BYTES:
        raise ServiceError(
            f"incoming frame claims {length} bytes (limit {FRAME_MAX_BYTES}); "
            "closing the connection"
        )
    data = _recv_exact(sock, length)
    if data is None:  # pragma: no cover - _recv_exact raises instead
        raise ServiceError("connection closed between frame header and body")
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServiceError(f"malformed protocol frame: {exc}") from exc
    if not isinstance(payload, dict) or not isinstance(payload.get("type"), str):
        raise ServiceError(
            f"protocol frames must be JSON objects with a string 'type', "
            f"got {payload!r}"
        )
    return payload


# ---------------------------------------------------------------------------
# addresses and service discovery
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ServiceAddress:
    """Where a dispatcher listens: a Unix socket path or a TCP endpoint."""

    family: str  # "unix" | "tcp"
    path: str = ""
    host: str = ""
    port: int = 0

    def __post_init__(self) -> None:
        if self.family not in ("unix", "tcp"):
            raise ServiceError(f"unknown address family {self.family!r}")

    def to_dict(self) -> Dict[str, Any]:
        """Return the JSON-ready document stored in ``service.json``."""
        if self.family == "unix":
            return {"family": "unix", "path": self.path}
        return {"family": "tcp", "host": self.host, "port": self.port}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ServiceAddress":
        """Rebuild an address from :meth:`to_dict` output."""
        family = payload.get("family")
        if family == "unix":
            return cls(family="unix", path=str(payload.get("path", "")))
        if family == "tcp":
            return cls(
                family="tcp",
                host=str(payload.get("host", "127.0.0.1")),
                port=int(payload.get("port", 0)),
            )
        raise ServiceError(f"unknown address family {family!r} in service info")

    def connect(self, timeout: Optional[float] = None) -> socket.socket:
        """Open a connected socket to this address."""
        if self.family == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        try:
            sock.connect(self.path if self.family == "unix" else (self.host, self.port))
        except OSError:
            sock.close()
            raise
        sock.settimeout(None)
        return sock

    def describe(self) -> str:
        """Human-readable endpoint for log lines."""
        if self.family == "unix":
            return self.path
        return f"{self.host}:{self.port}"


def bind_service_socket(root: Path) -> "tuple[socket.socket, ServiceAddress]":
    """Bind the dispatcher's listening socket inside ``root``.

    Prefers a Unix-domain socket at ``<root>/service.sock`` (removing a
    stale file from a previous, dead dispatcher); platforms without
    ``AF_UNIX`` — or roots whose absolute path exceeds the ~100-byte
    ``sun_path`` limit — fall back to a loopback TCP socket on an
    ephemeral port.  Either way the advertised address lands in
    ``service.json`` for clients and workers to discover.
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    path = root / "service.sock"
    if hasattr(socket, "AF_UNIX") and len(str(path)) < 100:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            if path.exists():
                path.unlink()
            sock.bind(str(path))
        except OSError:
            sock.close()
            raise
        return sock, ServiceAddress(family="unix", path=str(path))
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind(("127.0.0.1", 0))
    host, port = sock.getsockname()
    return sock, ServiceAddress(family="tcp", host=host, port=port)


def write_service_info(root: Path, payload: Dict[str, Any]) -> Path:
    """Atomically write ``service.json`` under ``root``; return its path."""
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    target = root / SERVICE_INFO_NAME
    tmp = target.with_name(f".{target.name}.{os.getpid()}.tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", "utf-8")
    os.replace(tmp, target)
    return target


def read_service_info(root: Path) -> Dict[str, Any]:
    """Read ``service.json``; raise :class:`ServiceError` when absent/invalid."""
    path = Path(root) / SERVICE_INFO_NAME
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError as exc:
        raise ServiceError(
            f"no experiment service is running in {Path(root)} "
            f"(missing {SERVICE_INFO_NAME}; start one with 'repro serve')"
        ) from exc
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ServiceError(f"{path}: invalid service info: {exc}") from exc
    if not isinstance(payload, dict) or "address" not in payload:
        raise ServiceError(f"{path}: not a service info document")
    return payload


def remove_service_info(root: Path) -> None:
    """Delete ``service.json`` (idempotent; the dispatcher's last act)."""
    try:
        (Path(root) / SERVICE_INFO_NAME).unlink()
    except FileNotFoundError:
        pass


# ---------------------------------------------------------------------------
# control-plane client
# ---------------------------------------------------------------------------


class ServiceClient:
    """Control-plane connection to a running dispatcher.

    One client holds one socket and speaks strict request/reply:
    every method sends a frame and blocks for its answer, raising
    :class:`ServiceError` when the dispatcher answers ``error``.  Use as
    a context manager; :meth:`connect` retries until the service is up
    (the way tests and ``repro submit`` tolerate a dispatcher that is
    still binding its socket).
    """

    def __init__(self, root: "str | Path", timeout: float = 30.0) -> None:
        self.root = Path(root)
        info = read_service_info(self.root)
        self.address = ServiceAddress.from_dict(info["address"])
        self.service_info = info
        try:
            self._sock = self.address.connect(timeout=timeout)
        except OSError as exc:
            raise ServiceError(
                f"cannot reach the experiment service at "
                f"{self.address.describe()} ({exc}); is it still running?"
            ) from exc
        self._sock.settimeout(timeout)
        self._hello()

    @classmethod
    def connect(
        cls, root: "str | Path", timeout: float = 30.0, poll: float = 0.1
    ) -> "ServiceClient":
        """Connect, retrying until ``timeout`` while the service starts up."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return cls(root)
            except ServiceError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(poll)

    def _hello(self) -> None:
        send_frame(
            self._sock,
            {
                "type": "hello",
                "role": "client",
                "pid": os.getpid(),
                "protocol": PROTOCOL_VERSION,
            },
        )
        reply = recv_frame(self._sock)
        if reply is None or reply.get("type") != "welcome":
            raise ServiceError(f"service rejected the connection: {reply!r}")

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Send one control frame and return its (non-``error``) reply."""
        send_frame(self._sock, payload)
        reply = recv_frame(self._sock)
        if reply is None:
            raise ServiceError(
                "the experiment service closed the connection mid-request"
            )
        if reply.get("type") == "error":
            raise ServiceError(str(reply.get("error", "unknown service error")))
        return reply

    # -- verbs ---------------------------------------------------------

    def submit(
        self,
        spec_document: Dict[str, Any],
        out: "str | Path",
        resume: bool = False,
        cache: "str | Path | None" = None,
        max_cells: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Submit a sweep spec; returns the job document (job already queued)."""
        reply = self.request(
            {
                "type": "submit",
                "spec": spec_document,
                "out": str(out),
                "resume": bool(resume),
                "cache": None if cache is None else str(cache),
                "max_cells": max_cells,
            }
        )
        return reply["job"]

    def status(self) -> Dict[str, Any]:
        """Return the full service status document."""
        return self.request({"type": "status"})

    def job_status(self, job_id: str) -> Dict[str, Any]:
        """Return one job's status document."""
        return self.request({"type": "job-status", "job": job_id})["job"]

    def shutdown(self) -> Dict[str, Any]:
        """Ask the dispatcher to shut down gracefully."""
        return self.request({"type": "shutdown"})

    def drain(self) -> Dict[str, Any]:
        """Ask the dispatcher to drain: finish in-flight cells, then exit."""
        return self.request({"type": "drain"})

    def wait_job(
        self,
        job_id: str,
        poll: float = 0.15,
        timeout: Optional[float] = None,
        progress: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> Dict[str, Any]:
        """Poll until ``job_id`` leaves the running state; return its document.

        ``progress`` (when given) receives every polled job document —
        the CLI renders ``completed/total`` from it.  A ``failed`` job
        raises :class:`ServiceError` with the recorded cell error.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            job = self.job_status(job_id)
            if progress is not None:
                progress(job)
            if job["state"] != "running":
                if job["state"] == "failed":
                    raise ServiceError(
                        f"job {job_id} failed: {job.get('error', 'unknown error')}"
                    )
                return job
            if deadline is not None and time.monotonic() >= deadline:
                raise ServiceError(
                    f"timed out waiting for job {job_id} "
                    f"({job['cells_done']}/{job['cells_total']} cells done)"
                )
            time.sleep(poll)

    def close(self) -> None:
        """Close the control connection (idempotent)."""
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close can hardly fail
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
