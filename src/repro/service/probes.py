"""Preloadable probe algorithm for exercising the experiment service.

The service's tests, smoke jobs, and ``bench_service.py`` need an
algorithm that (a) is registry-named, so it travels through protocol
frames as a plain :class:`~repro.api.specs.RunSpec` document, (b) costs
almost nothing per cell beyond *reading* the workload — isolating the
provisioning costs (spawn, attach, rebuild) the warm fleet removes —
and (c) can simulate real per-cell compute via ``sleep_seconds`` when a
lease-expiry test needs a slow cell.

It lives inside the package (instead of a benchmark file) because the
fleet's *worker processes* must be able to resolve the name too: pass
``--preload repro.service.probes`` to ``repro serve`` / ``repro worker``
(or set ``REPRO_PRELOAD=repro.service.probes`` for plain ``repro
sweep``) and every process in the fleet imports this module — running
the registration below — before touching any spec.  Importing
:mod:`repro.service` does **not** register the probe; the name only
exists where it was explicitly preloaded.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import FrozenSet, Tuple

from ..api.registry import get_algorithm, register_algorithm
from ..congest.metrics import AlgorithmCost
from ..errors import AnalysisError
from ..graphs import Graph

__all__ = ["PROBE_ALGORITHM", "ServiceProbe"]

#: Registry name of the probe; use in run specs after preloading.
PROBE_ALGORITHM = "service-probe"


@dataclass(frozen=True)
class _ProbeResult:
    """Duck-typed algorithm result: just enough for ``run_single``."""

    algorithm: str
    model: str
    cost: AlgorithmCost
    truncated: bool
    triangles: FrozenSet[Tuple[int, ...]]

    def triangles_found(self) -> FrozenSet[Tuple[int, ...]]:
        return self.triangles


@dataclass(frozen=True)
class ServiceProbe:
    """Report the workload's own triangle oracle, scaled by ``scale``.

    ``scale`` perturbs the cost vector so distinct cells in a sweep grid
    produce distinguishable records; ``sleep_seconds`` stands in for real
    per-cell compute (fault-path tests use it to hold a lease open).
    """

    scale: int = 1
    sleep_seconds: float = 0.0

    def run(self, graph: Graph, seed: int) -> _ProbeResult:
        if self.sleep_seconds > 0:
            time.sleep(self.sleep_seconds)
        csr = graph.csr()
        support = csr.edge_support()
        triangles = frozenset(map(tuple, csr.triangles().tolist()))
        cost = AlgorithmCost(
            rounds=self.scale * (int(support.max()) if support.size else 0),
            messages=self.scale * graph.num_edges,
            bits=self.scale * len(triangles),
            max_bits_received=self.scale * graph.max_degree(),
        )
        return _ProbeResult(
            algorithm=PROBE_ALGORITHM,
            model="CONGEST",
            cost=cost,
            truncated=False,
            triangles=triangles,
        )


# Idempotent registration: a fresh import registers the name; re-imports
# (or a test that imported the module after unregistering the name) just
# restore it.  Never clobbers someone else's registration.
try:
    get_algorithm(PROBE_ALGORITHM)
except AnalysisError:
    register_algorithm(
        PROBE_ALGORITHM,
        kind="listing",
        summary="Near-zero-cost service probe: reports the workload's oracle.",
    )(ServiceProbe)
