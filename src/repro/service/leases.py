"""Lease bookkeeping for the experiment service's cell queue.

One :class:`CellLeaseTable` tracks a single job's cells through the
state machine::

    pending ──lease()──▶ leased ──complete()──▶ done
       ▲                   │
       └──expire()/revoke()┘

Cells start *pending* in submission order.  ``lease()`` hands the next
pending cell to a worker with a deadline; ``complete()`` marks it done
exactly once; ``expire()`` (deadline passed) and ``revoke()`` (worker
died or was evicted) push the cell back to the **front** of the pending
queue so recovery work happens before new work.

Execution is at-least-once, recording is exactly-once: a revoked lease
is remembered, so a slow-but-alive worker whose lease was expired can
still deliver its record — it is accepted if the cell is not yet done
(records are deterministic functions of the cell spec, so either copy
is byte-identical) and silently dropped otherwise.

A cell that keeps failing — its worker reports an error, dies, or is
evicted while holding it — is counted by :meth:`record_failure`; at
``max_attempts`` failures the cell is **quarantined**: pulled out of
the schedule with a structured reason instead of requeued forever, so
one poison cell cannot starve the rest of the job.  Pure lease expiry
is *not* a failure (a slow-but-alive worker may still deliver).

The clock is injectable so tests can drive expiry deterministically.
The table does no locking; the dispatcher serialises access under its
own lock.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Set

from ..errors import ServiceError

__all__ = ["Lease", "CellLeaseTable"]


@dataclass
class Lease:
    """One outstanding (or revoked-but-remembered) cell lease."""

    lease_id: int
    cell: int
    worker: str
    deadline: float
    #: Set when the lease was expired or its worker evicted; the cell has
    #: been requeued, but a late record from this lease is still welcome.
    revoked: bool = False


@dataclass
class CellLeaseTable:
    """Pending/leased/done bookkeeping for one job's cells.

    ``max_attempts`` is the quarantine threshold ``K``: a cell whose
    execution has failed ``K`` times (see :meth:`record_failure`) leaves
    the schedule.  Zero disables quarantine (failures requeue forever).
    """

    total: int
    clock: Callable[[], float] = time.monotonic
    max_attempts: int = 0
    _pending: Deque[int] = field(init=False)
    _leases: Dict[int, Lease] = field(init=False, default_factory=dict)
    _done: Set[int] = field(init=False, default_factory=set)
    _failures: Dict[int, int] = field(init=False, default_factory=dict)
    _quarantined: Dict[int, str] = field(init=False, default_factory=dict)
    _next_lease_id: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.total < 0:
            raise ServiceError(f"cell count must be >= 0, got {self.total}")
        if self.max_attempts < 0:
            raise ServiceError(
                f"max_attempts must be >= 0, got {self.max_attempts}"
            )
        self._pending = deque(range(self.total))

    # -- queries -------------------------------------------------------

    @property
    def pending_count(self) -> int:
        """Cells waiting for a worker."""
        return len(self._pending)

    @property
    def leased_count(self) -> int:
        """Cells currently out on a live (non-revoked) lease."""
        return sum(1 for lease in self._leases.values() if not lease.revoked)

    @property
    def done_count(self) -> int:
        """Cells recorded."""
        return len(self._done)

    @property
    def finished(self) -> bool:
        """True once every cell is done."""
        return len(self._done) == self.total

    @property
    def quarantined_count(self) -> int:
        """Cells pulled from the schedule after ``max_attempts`` failures."""
        return len(self._quarantined)

    @property
    def quarantined(self) -> Dict[int, str]:
        """Quarantined cells and their last failure reasons (a copy)."""
        return dict(self._quarantined)

    def attempts(self, cell: int) -> int:
        """Failed execution attempts recorded for ``cell``."""
        return self._failures.get(cell, 0)

    def is_done(self, cell: int) -> bool:
        """True when ``cell`` has been recorded."""
        return cell in self._done

    def mark_done(self, cell: int) -> None:
        """Mark ``cell`` done without a lease (cache hits, resumed prefixes)."""
        if not 0 <= cell < self.total:
            raise ServiceError(f"cell {cell} out of range [0, {self.total})")
        self._done.add(cell)
        try:
            self._pending.remove(cell)
        except ValueError:
            pass

    # -- transitions ---------------------------------------------------

    def lease(self, worker: str, timeout: float) -> Optional[Lease]:
        """Lease the next pending cell to ``worker``; ``None`` when empty."""
        if not self._pending:
            return None
        cell = self._pending.popleft()
        lease = Lease(
            lease_id=self._next_lease_id,
            cell=cell,
            worker=worker,
            deadline=self.clock() + timeout,
        )
        self._next_lease_id += 1
        self._leases[lease.lease_id] = lease
        return lease

    def complete(self, lease_id: int) -> Optional[int]:
        """Record the lease's cell as done.

        Returns the cell index when this completion is the first for the
        cell (the caller should write its record), or ``None`` when the
        cell was already recorded by another lease — the duplicate is
        dropped.  Unknown lease ids raise: they indicate a protocol bug,
        not a race.
        """
        lease = self._leases.pop(lease_id, None)
        if lease is None:
            raise ServiceError(f"unknown lease id {lease_id}")
        if lease.cell in self._done or lease.cell in self._quarantined:
            # A quarantined cell's store line is its cell-error record; a
            # late success from a revoked lease must not double-record it.
            return None
        self._done.add(lease.cell)
        # A revoked lease's cell sits back in the pending queue; the late
        # record just landed, so pull it out before a worker re-runs it.
        try:
            self._pending.remove(lease.cell)
        except ValueError:
            pass
        return lease.cell

    def _requeue(self, lease: Lease) -> None:
        if lease.revoked or lease.cell in self._done:
            return
        lease.revoked = True
        if lease.cell in self._quarantined:
            return  # quarantined cells never re-enter the schedule
        self._pending.appendleft(lease.cell)

    def expire(self) -> List[Lease]:
        """Revoke every live lease past its deadline; return them."""
        now = self.clock()
        expired = [
            lease
            for lease in self._leases.values()
            if not lease.revoked and lease.deadline <= now
        ]
        for lease in expired:
            self._requeue(lease)
        return expired

    def revoke_worker(self, worker: str) -> List[Lease]:
        """Revoke every live lease held by ``worker`` (death/eviction)."""
        revoked = [
            lease
            for lease in self._leases.values()
            if not lease.revoked and lease.worker == worker
        ]
        for lease in revoked:
            self._requeue(lease)
        return revoked

    def skip(self, cell: int) -> bool:
        """Drop a pending cell from the schedule without marking it done.

        How a ``max_cells`` submission excludes the tail of the grid:
        skipped cells count as neither pending nor done, so the job can
        finish with ``done_count < total`` — exactly like a serial
        ``run_sweep(..., max_cells=...)`` leaves a valid prefix.
        """
        try:
            self._pending.remove(cell)
        except ValueError:
            return False
        return True

    def drain(self) -> int:
        """Drop every pending cell (a failed job stops scheduling work)."""
        count = len(self._pending)
        self._pending.clear()
        return count

    def forget(self, lease_id: int) -> None:
        """Drop a lease without completing it (worker reported an error)."""
        lease = self._leases.pop(lease_id, None)
        if lease is not None:
            self._requeue(lease)

    def record_failure(self, cell: int, reason: str) -> str:
        """Count one failed execution of ``cell``; maybe quarantine it.

        Callers count a failure when a worker *reports* a cell error,
        dies, or is evicted while holding the cell — never on bare lease
        expiry.  Returns the cell's resulting disposition:

        * ``"requeued"`` — under the threshold; the cell stays (or was
          already put back) in the schedule,
        * ``"quarantined"`` — this failure was number ``max_attempts``;
          the cell has just been pulled from the schedule with ``reason``,
        * ``"stale"`` — the cell is already recorded or already
          quarantined; the failure is not counted.
        """
        if cell in self._done or cell in self._quarantined:
            return "stale"
        self._failures[cell] = self._failures.get(cell, 0) + 1
        if self.max_attempts and self._failures[cell] >= self.max_attempts:
            try:
                self._pending.remove(cell)
            except ValueError:
                pass
            self._quarantined[cell] = reason
            return "quarantined"
        return "requeued"
