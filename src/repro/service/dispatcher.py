"""The experiment-service dispatcher: jobs, leases, workers, segments.

One :class:`Dispatcher` owns a service root directory.  It listens on a
local socket (see :mod:`repro.service.protocol`), accepts two kinds of
connections — **workers** that execute cells and **clients** that
submit/inspect jobs — and drives every submitted :class:`SweepSpec`
through the lease state machine of :mod:`repro.service.leases` into the
same JSONL store format ``repro sweep`` writes, byte for byte (both go
through :class:`repro.api.store.SweepStoreWriter`).

Responsibilities, each on its own thread(s):

* **accept loop** — one thread; classifies connections by their
  ``hello`` frame.
* **worker loops** — one thread per connected worker; processes its
  ``ready`` / ``record`` / ``cell-error`` / ``heartbeat`` frames and
  assigns leases.  Assignment happens here (not in a central scheduler)
  so a lease is written by the same thread that owns the socket.
* **client loops** — one thread per control connection; strict
  request/reply.
* **monitor** — one thread; expires overdue leases (requeueing their
  cells to the *front* of the queue), evicts workers whose heartbeats
  went stale (closing the socket, which routes through the same
  worker-death path as a crash), and respawns managed worker processes
  that exited.

Execution is at-least-once, recording exactly-once: completed records
are buffered and flushed to the store in cell order, duplicates from
revoked-but-alive leases are dropped, and a job finishes when no cell is
pending or leased — at which point its store is complete and ordered
exactly as a serial ``run_sweep`` would have left it.

Workload graphs are materialised once per distinct (workload, seed)
into shared memory (:class:`SegmentPool`) and leased to workers as
handle documents; segments are refcounted per job and a bounded LRU of
*idle* segments is retained across jobs, so back-to-back sweeps over
the same workloads skip even the parent-side rebuild.
"""

from __future__ import annotations

import os
import select
import socket
import subprocess
import sys
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..analysis.experiments import ExperimentRecord
from ..api.records import canonical_json
from ..api.specs import RunSpec, SweepSpec
from ..api.store import ResultCache, SweepStoreWriter
from ..errors import ReproError, ServiceError
from ..faults import (
    FAULTS_ENV,
    FAULTS_EVENTS_ENV,
    FAULTS_SCOPE_ENV,
    active_plane,
    fault_point,
    install_from_env,
)
from ..graphs.shm import share_csr, shm_available
from .events import EVENTS_FILE_NAME, EventLog
from .leases import CellLeaseTable
from .protocol import (
    PROTOCOL_VERSION,
    ServiceAddress,
    bind_service_socket,
    recv_frame,
    remove_service_info,
    send_frame,
    write_service_info,
)
from .worker import preload_modules

__all__ = ["Dispatcher", "SegmentPool"]

#: How often the monitor and idle worker loops poll, in seconds.  Bounds
#: the latency between a submit and the first lease going out.
_TICK_SECONDS = 0.05


# ---------------------------------------------------------------------------
# shared-memory segment pool
# ---------------------------------------------------------------------------


class _Segment:
    """One pooled segment: built once, refcounted by job id."""

    def __init__(self) -> None:
        self.ready = threading.Event()
        self.owner: Optional[Any] = None
        self.handle_doc: Optional[Dict[str, Any]] = None
        self.jobs: Set[str] = set()
        self.failed = False


class SegmentPool:
    """Refcounted shared-memory workloads with cross-job idle retention.

    ``acquire(key, job_id, builder)`` returns the segment's handle
    document, building the segment on first use (concurrent acquirers of
    the same key wait for the one builder).  A key whose builder failed
    is remembered as unshareable — the caller falls back to the pickle
    path — rather than retried per cell.  ``release_job`` drops a job's
    references; segments nobody references are kept warm in an LRU of at
    most ``max_idle`` (the cross-sweep warmth the service exists for)
    and unlinked beyond that.
    """

    def __init__(self, max_idle: int = 4) -> None:
        if max_idle < 0:
            raise ServiceError(f"max_idle must be >= 0, got {max_idle}")
        self.max_idle = max_idle
        self._lock = threading.Lock()
        self._segments: Dict[Any, _Segment] = {}
        self._idle: "OrderedDict[Any, None]" = OrderedDict()
        self.built = 0
        self.reused = 0

    def acquire(
        self, key: Any, job_id: str, builder: Callable[[], Any]
    ) -> Optional[Dict[str, Any]]:
        """Return the handle document for ``key`` (``None``: unshareable)."""
        with self._lock:
            segment = self._segments.get(key)
            build_here = segment is None
            if build_here:
                segment = _Segment()
                self._segments[key] = segment
            segment.jobs.add(job_id)
            self._idle.pop(key, None)
        if build_here:
            try:
                owner = builder()
                segment.owner = owner
                segment.handle_doc = owner.handle.to_dict()
                with self._lock:
                    self.built += 1
            except Exception:
                segment.failed = True
            segment.ready.set()
        else:
            segment.ready.wait()
            if not segment.failed:
                with self._lock:
                    self.reused += 1
        return None if segment.failed else segment.handle_doc

    def release_job(self, job_id: str) -> None:
        """Drop ``job_id``'s references; trim the idle LRU to ``max_idle``."""
        to_close: List[_Segment] = []
        with self._lock:
            for key, segment in list(self._segments.items()):
                if job_id not in segment.jobs:
                    continue
                segment.jobs.discard(job_id)
                if segment.jobs or not segment.ready.is_set():
                    continue
                if segment.failed:
                    del self._segments[key]
                else:
                    self._idle[key] = None
                    self._idle.move_to_end(key)
            while len(self._idle) > self.max_idle:
                key, _ = self._idle.popitem(last=False)
                to_close.append(self._segments.pop(key))
        for segment in to_close:
            segment.owner.close()

    def close_all(self) -> None:
        """Unlink every segment (dispatcher shutdown)."""
        with self._lock:
            segments = list(self._segments.values())
            self._segments.clear()
            self._idle.clear()
        for segment in segments:
            if segment.owner is not None:
                segment.owner.close()

    def stats(self) -> Dict[str, Any]:
        """Return active/idle counts, resident bytes, and build traffic."""
        with self._lock:
            active = sum(1 for s in self._segments.values() if s.jobs)
            idle = len(self._idle)
            total_bytes = sum(
                s.handle_doc["total_bytes"]
                for s in self._segments.values()
                if s.handle_doc is not None
            )
            return {
                "active": active,
                "idle": idle,
                "bytes": total_bytes,
                "built": self.built,
                "reused": self.reused,
            }


# ---------------------------------------------------------------------------
# jobs and workers
# ---------------------------------------------------------------------------


class _Job:
    """One submitted sweep: spec, lease table, in-order store writer."""

    def __init__(
        self,
        job_id: str,
        spec: SweepSpec,
        writer: SweepStoreWriter,
        cache: Optional[ResultCache],
        clock: Callable[[], float],
        max_cell_attempts: int = 0,
    ) -> None:
        self.id = job_id
        self.spec = spec
        self.writer = writer
        self.cache = cache
        self.runs: List[RunSpec] = spec.run_specs()
        self.labels: List[str] = spec.cell_labels()
        self.table = CellLeaseTable(
            total=len(self.runs), clock=clock, max_attempts=max_cell_attempts
        )
        self.state = "running"
        self.error: Optional[str] = None
        self.plane = "pickle"
        #: Per-cell segment-pool key; ``None`` cells travel by spec only.
        self.segment_keys: List[Optional[Any]] = [None] * len(self.runs)
        self.cache_hits = 0
        self.executed = 0
        self.resumed = len(writer.done)
        self.skipped = 0
        self.expired_leases = 0
        #: Cells requeued after a failed execution attempt.
        self.retries = 0
        self.submitted_unix = time.time()
        self.started_mono = clock()
        self.first_record_mono: Optional[float] = None
        self.finished_mono: Optional[float] = None

    def describe(self, clock: Callable[[], float]) -> Dict[str, Any]:
        """Return the JSON-ready job status document."""
        end = self.finished_mono if self.finished_mono is not None else clock()
        elapsed = max(end - self.started_mono, 0.0)
        first = (
            None
            if self.first_record_mono is None
            else max(self.first_record_mono - self.started_mono, 0.0)
        )
        done = self.table.done_count
        return {
            "id": self.id,
            "state": self.state,
            "experiment": self.spec.experiment,
            "out": str(self.writer.store.path),
            "cells_total": self.table.total,
            "cells_done": done,
            "cells_pending": self.table.pending_count,
            "cells_leased": self.table.leased_count,
            "cells_skipped": self.skipped,
            "cells_resumed": self.resumed,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "expired_leases": self.expired_leases,
            "retries": self.retries,
            "quarantined": self.table.quarantined_count,
            "quarantined_cells": [
                {
                    "cell": cell,
                    "label": self.labels[cell],
                    "reason": reason,
                    "attempts": self.table.attempts(cell),
                }
                for cell, reason in sorted(self.table.quarantined.items())
            ],
            "plane": self.plane,
            "error": self.error,
            "submitted_unix": self.submitted_unix,
            "elapsed_seconds": elapsed,
            "first_record_seconds": first,
            "cells_per_second": (done / elapsed) if elapsed > 0 else 0.0,
        }


@dataclass
class _WorkerConn:
    """Dispatcher-side state of one connected worker."""

    id: str
    sock: socket.socket
    pid: int
    last_seen: float
    send_lock: threading.Lock = field(default_factory=threading.Lock)
    ready: bool = False
    #: (job id, lease id, cell) of the lease this worker is executing.
    current: Optional[Tuple[str, int, int]] = None
    cells_done: int = 0
    #: True while the assignment path is materialising a segment for this
    #: worker — the monitor must not read the silence as a stale heartbeat.
    assigning: bool = False
    evicted: bool = False


class Dispatcher:
    """The experiment service: accepts jobs, leases cells, writes stores.

    Parameters
    ----------
    root:
        Service directory: the socket, ``service.json``, and managed
        worker logs live here.  Job stores go wherever the submit says.
    workers:
        Managed worker processes to spawn (and respawn if they die).
        Zero is valid — workers started by hand with ``repro worker``
        attach the same way.
    lease_timeout:
        Seconds a worker may hold one cell before the lease expires and
        the cell is requeued.
    heartbeat_interval / heartbeat_timeout:
        Workers heartbeat every ``interval`` seconds; one silent for
        ``timeout`` seconds is evicted (default: 5x the interval).
    max_segments:
        Idle shared-memory workloads kept warm across jobs.
    plane:
        ``"auto"`` (shared memory when usable, per-workload fallback),
        ``"shm"`` (require it), or ``"pickle"`` (never share).
    max_cell_attempts:
        Quarantine threshold ``K``: a cell whose execution fails (its
        worker errors, dies, or is evicted while holding it) this many
        times is quarantined — recorded as a cell-error store line with
        a structured reason — instead of requeued forever.  Zero
        disables quarantine.
    restart_budget:
        Managed-worker respawns the dispatcher will perform over its
        lifetime.  A crash-looping fleet stops burning processes once
        the budget is spent (the incident log says so); respawns also
        back off exponentially between deaths.
    clock:
        Injectable monotonic clock (tests drive lease expiry with it).
    """

    def __init__(
        self,
        root: "str | Path",
        workers: int = 0,
        lease_timeout: float = 60.0,
        heartbeat_interval: float = 2.0,
        heartbeat_timeout: Optional[float] = None,
        max_segments: int = 4,
        plane: str = "auto",
        preload: Tuple[str, ...] = (),
        max_cell_attempts: int = 3,
        restart_budget: int = 12,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if workers < 0:
            raise ServiceError(f"workers must be >= 0, got {workers}")
        if max_cell_attempts < 0:
            raise ServiceError(
                f"max_cell_attempts must be >= 0, got {max_cell_attempts}"
            )
        if restart_budget < 0:
            raise ServiceError(
                f"restart_budget must be >= 0, got {restart_budget}"
            )
        if lease_timeout <= 0:
            raise ServiceError(f"lease_timeout must be positive, got {lease_timeout}")
        if heartbeat_interval <= 0:
            raise ServiceError(
                f"heartbeat_interval must be positive, got {heartbeat_interval}"
            )
        if plane not in ("auto", "shm", "pickle"):
            raise ServiceError(f"plane must be auto|shm|pickle, got {plane!r}")
        if plane == "shm" and not shm_available():
            raise ServiceError(
                "plane='shm' was requested but shared memory is not usable "
                "on this platform"
            )
        self.root = Path(root)
        self._num_workers = workers
        self._lease_timeout = lease_timeout
        self._heartbeat_interval = heartbeat_interval
        self._heartbeat_timeout = (
            heartbeat_timeout
            if heartbeat_timeout is not None
            else 5.0 * heartbeat_interval
        )
        self._plane = plane
        self._preload = tuple(preload)
        self._clock = clock
        self._lock = threading.RLock()
        self._stop_event = threading.Event()
        self._stopped = False
        self._listener: Optional[socket.socket] = None
        self.address: Optional[ServiceAddress] = None
        self._threads: List[threading.Thread] = []
        self._workers: Dict[str, _WorkerConn] = {}
        self._worker_counter = 0
        self._jobs: "OrderedDict[str, _Job]" = OrderedDict()
        self._job_counter = 0
        self._caches: Dict[str, ResultCache] = {}
        self._segments = SegmentPool(max_idle=max_segments)
        self._managed: List[Tuple[subprocess.Popen, Any]] = []
        self._managed_counter = 0
        self._evictions = 0
        self._started_unix: Optional[float] = None
        self._max_cell_attempts = max_cell_attempts
        self._restart_budget = restart_budget
        self._worker_restarts = 0
        self._budget_spent_logged = False
        #: Exponential respawn backoff: no respawn before this clock value.
        self._respawn_pause = 0.1
        self._next_respawn = 0.0
        self._last_respawn = 0.0
        self._draining = False
        self.events = EventLog(self.root / EVENTS_FILE_NAME)

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "Dispatcher":
        """Bind, advertise, and start serving; returns self."""
        preload_modules(self._preload)
        self.root.mkdir(parents=True, exist_ok=True)
        # Arm the fault plane (chaos runs set REPRO_FAULTS); the
        # dispatcher's own injection points run under scope "dispatcher"
        # and fault firings land in this root's incident log.
        plane = active_plane()
        if plane is None:
            plane = install_from_env()
        if plane is not None:
            if not plane.scope:
                plane.scope = "dispatcher"
            if plane.sink is None:
                plane.sink = self.events.sink
        self._listener, self.address = bind_service_socket(self.root)
        self._listener.listen(64)
        self._started_unix = time.time()
        write_service_info(
            self.root,
            {
                "address": self.address.to_dict(),
                "pid": os.getpid(),
                "protocol": PROTOCOL_VERSION,
                "started_unix": self._started_unix,
            },
        )
        for name, target in (
            ("service-accept", self._accept_loop),
            ("service-monitor", self._monitor_loop),
        ):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)
        for _ in range(self._num_workers):
            self._spawn_worker()
        return self

    def request_stop(self) -> None:
        """Ask the serve loop to shut down (returns immediately)."""
        self._stop_event.set()

    def request_drain(self) -> None:
        """Begin a graceful drain (returns immediately).

        No new leases go out; in-flight cells finish and their records
        flush; once no lease is outstanding the monitor requests a full
        stop and the dispatcher exits 0.  Pending cells stay unexecuted
        — their stores keep valid prefixes and resume later.
        """
        if not self._draining:
            self._draining = True
            self.events.emit("drain-requested")

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until a stop is requested; ``True`` when it was."""
        return self._stop_event.wait(timeout)

    def stop(self) -> None:
        """Shut everything down (idempotent): workers, threads, segments."""
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
        self._stop_event.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            workers = list(self._workers.values())
        for worker in workers:
            try:
                with worker.send_lock:
                    send_frame(worker.sock, {"type": "shutdown"})
            except (OSError, ServiceError):
                pass
            try:
                worker.sock.close()
            except OSError:
                pass
        # Join the monitor before touching managed workers, so a respawn
        # cannot race the terminations below.
        for thread in self._threads:
            thread.join(timeout=5.0)
        for process, log in self._managed:
            if process.poll() is None:
                process.terminate()
        deadline = time.monotonic() + 5.0
        for process, log in self._managed:
            remaining = max(deadline - time.monotonic(), 0.1)
            try:
                process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=5.0)
            if log is not None:
                log.close()
        self._segments.close_all()
        remove_service_info(self.root)

    def __enter__(self) -> "Dispatcher":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- managed workers ----------------------------------------------

    def _spawn_worker(self) -> None:
        self._managed_counter += 1
        logs = self.root / "logs"
        logs.mkdir(exist_ok=True)
        log = (logs / f"worker-{self._managed_counter}.log").open("ab")
        command = [sys.executable, "-m", "repro", "worker", str(self.root)]
        for module in self._preload:
            command.append(f"--preload={module}")
        env = dict(os.environ)
        # The managed worker must import the same `repro` this dispatcher
        # runs — including uninstalled source checkouts.
        package_root = str(Path(__file__).resolve().parent.parent.parent)
        path = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = (
            package_root if not path else package_root + os.pathsep + path
        )
        if env.get(FAULTS_ENV):
            # Each worker *generation* gets its own fault scope, so a
            # crash rule scoped to one ordinal fires in exactly one
            # process instead of crash-looping every respawn; firings
            # from workers land in the shared incident log.
            env[FAULTS_SCOPE_ENV] = str(self._managed_counter)
            env.setdefault(FAULTS_EVENTS_ENV, str(self.events.path))
        process = subprocess.Popen(command, stdout=log, stderr=log, env=env)
        self._managed.append((process, log))

    # -- accept / classify ---------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stop_event.is_set():
            try:
                sock, _ = self._listener.accept()
            except OSError:
                return  # listener closed: shutting down
            thread = threading.Thread(
                target=self._handshake, args=(sock,), daemon=True
            )
            thread.start()

    def _handshake(self, sock: socket.socket) -> None:
        try:
            sock.settimeout(10.0)
            hello = recv_frame(sock)
            if hello is None or hello.get("type") != "hello":
                sock.close()
                return
            if hello.get("protocol") != PROTOCOL_VERSION:
                send_frame(
                    sock,
                    {
                        "type": "error",
                        "error": (
                            f"protocol version mismatch: service speaks "
                            f"{PROTOCOL_VERSION}, peer speaks "
                            f"{hello.get('protocol')!r}"
                        ),
                    },
                )
                sock.close()
                return
            sock.settimeout(None)
            role = hello.get("role")
            if role == "worker":
                fault = fault_point("dispatcher.accept", role="worker")
                if fault is not None:
                    # Drop the handshake on the floor; the worker sees a
                    # closed connection and retries or exits cleanly.
                    sock.close()
                    return
                self._serve_worker(sock, hello)
            elif role == "client":
                send_frame(sock, {"type": "welcome", "protocol": PROTOCOL_VERSION})
                self._client_loop(sock)
            else:
                sock.close()
        except (OSError, ServiceError):
            try:
                sock.close()
            except OSError:
                pass

    # -- worker plane --------------------------------------------------

    def _serve_worker(self, sock: socket.socket, hello: Dict[str, Any]) -> None:
        with self._lock:
            self._worker_counter += 1
            worker = _WorkerConn(
                id=f"w{self._worker_counter}",
                sock=sock,
                pid=int(hello.get("pid", 0)),
                last_seen=self._clock(),
            )
            self._workers[worker.id] = worker
        send_frame(
            sock,
            {
                "type": "welcome",
                "worker": worker.id,
                "protocol": PROTOCOL_VERSION,
                "heartbeat_interval": self._heartbeat_interval,
            },
        )
        try:
            self._worker_loop(worker)
        finally:
            self._drop_worker(worker)

    def _worker_loop(self, worker: _WorkerConn) -> None:
        while not self._stop_event.is_set():
            if worker.ready:
                self._try_assign(worker)
            try:
                readable, _, _ = select.select(
                    [worker.sock], [], [], _TICK_SECONDS
                )
            except (OSError, ValueError):
                return  # socket closed under us (eviction, shutdown)
            if not readable:
                continue
            try:
                frame = recv_frame(worker.sock)
            except (OSError, ServiceError):
                return
            if frame is None:
                return
            kind = frame.get("type")
            if kind == "heartbeat":
                fault = fault_point("dispatcher.heartbeat", worker=worker.id)
                if fault is not None:
                    continue  # the heartbeat is lost before intake
            worker.last_seen = self._clock()
            if kind == "ready":
                worker.ready = True
            elif kind == "heartbeat":
                pass
            elif kind == "record":
                self._handle_record(worker, frame)
            elif kind == "cell-error":
                self._handle_cell_error(worker, frame)

    def _drop_worker(self, worker: _WorkerConn) -> None:
        """Remove a dead/evicted worker and requeue its leased cells.

        A cell the worker was holding counts one failed attempt against
        its quarantine threshold — a poison cell that kills every worker
        that touches it must run out of attempts, not processes.
        """
        lost = 0
        with self._lock:
            self._workers.pop(worker.id, None)
            how = "evicted" if worker.evicted else "died"
            for job in self._jobs.values():
                if job.state != "running":
                    continue
                for lease in job.table.revoke_worker(worker.id):
                    lost += 1
                    self._cell_failed(
                        job,
                        lease.cell,
                        f"worker {worker.id} {how} while executing this cell",
                    )
        if (lost or worker.evicted) and not self._stop_event.is_set():
            self.events.emit(
                "worker-lost",
                worker=worker.id,
                pid=worker.pid,
                evicted=worker.evicted,
                leases=lost,
            )
        try:
            worker.sock.close()
        except OSError:
            pass

    def _cell_failed(self, job: _Job, cell: int, reason: str) -> None:
        """Count one failed attempt; quarantine + record at threshold ``K``.

        Caller holds the dispatcher lock.  With quarantine disabled
        (``max_cell_attempts=0``) the failure is only requeued by the
        lease table's revoke path and nothing is counted here.
        """
        if not job.table.max_attempts:
            return
        outcome = job.table.record_failure(cell, reason)
        if outcome == "requeued":
            job.retries += 1
            self.events.emit(
                "cell-retry",
                job=job.id,
                cell=cell,
                attempts=job.table.attempts(cell),
                reason=reason,
            )
        elif outcome == "quarantined":
            self.events.emit(
                "cell-quarantined",
                job=job.id,
                cell=cell,
                attempts=job.table.attempts(cell),
                reason=reason,
            )
            try:
                # The cell-error line holds the cell's position so every
                # later cell's record still reaches the file in order.
                job.writer.write_error(cell, reason)
            except ReproError as exc:
                self._fail_job(
                    job, f"cannot record quarantine of cell {cell}: {exc}"
                )
                return
            self._maybe_finish(job)

    def _try_assign(self, worker: _WorkerConn) -> None:
        """Lease the next pending cell (if any) to a ready worker."""
        if self._draining:
            return  # drain: in-flight leases finish, nothing new goes out
        with self._lock:
            target: Optional[Tuple[_Job, Any]] = None
            for job in self._jobs.values():
                if job.state != "running":
                    continue
                lease = job.table.lease(worker.id, self._lease_timeout)
                if lease is not None:
                    target = (job, lease)
                    break
            if target is None:
                return
            job, lease = target
            worker.ready = False
            worker.assigning = True
            worker.current = (job.id, lease.lease_id, lease.cell)
            run = job.runs[lease.cell]
            segment_key = job.segment_keys[lease.cell]
            frame = {
                "type": "lease",
                "lease_id": lease.lease_id,
                "job": job.id,
                "cell": lease.cell,
                "label": job.labels[lease.cell],
                "run": run.to_dict(),
                "shm": None,
            }
        try:
            fault = fault_point("dispatcher.lease", job=job.id, cell=lease.cell)
            if fault is not None:
                if fault.action == "expire":
                    # The lease-expiry race: the cell goes out, but its
                    # deadline is already past — the monitor requeues it
                    # while the worker still executes, and the late
                    # record must be accepted exactly once.
                    with self._lock:
                        lease.deadline = self._clock() - 1.0
                elif fault.action == "delay":
                    time.sleep(fault.seconds())
            if segment_key is not None:
                # Materialising can take seconds for big workloads; done
                # outside the dispatcher lock so heartbeats, records and
                # other assignments keep flowing.
                frame["shm"] = self._segments.acquire(
                    segment_key, job.id, lambda: self._build_segment(run)
                )
                if frame["shm"] is None and self._plane == "shm":
                    raise ServiceError(
                        f"plane='shm' cannot share the workload of job "
                        f"{job.id} cell {lease.cell}"
                    )
            with worker.send_lock:
                send_frame(worker.sock, frame)
            worker.last_seen = self._clock()
        except ServiceError as exc:
            with self._lock:
                self._fail_job(job, str(exc))
                job.table.forget(lease.lease_id)
                worker.ready = True
                worker.current = None
        except OSError:
            # Worker vanished between lease and send; the loop will see
            # EOF next tick and requeue via _drop_worker.
            with self._lock:
                job.table.forget(lease.lease_id)
                worker.current = None
        finally:
            worker.assigning = False

    @staticmethod
    def _build_segment(run: RunSpec) -> Any:
        graph = run.workload.build(seed=run.seed)
        return share_csr(graph.csr(), oracle="materialize")

    def _handle_record(self, worker: _WorkerConn, frame: Dict[str, Any]) -> None:
        with self._lock:
            worker.current = None
            job = self._jobs.get(str(frame.get("job")))
            if job is None:
                return
            try:
                cell = job.table.complete(int(frame["lease_id"]))
            except (ServiceError, KeyError, TypeError, ValueError):
                return  # lease already forgotten (failed job, protocol skew)
            if cell is None:
                # Duplicate completion of a requeued cell: drop the record
                # — but this may have been the job's last outstanding
                # lease, so the finish check must still run.
                self._maybe_finish(job)
                return
            try:
                record = job.writer.write(cell, frame["record"])
            except ReproError as exc:
                self._fail_job(job, f"cell {cell} returned a bad record: {exc}")
                return
            worker.cells_done += 1
            job.executed += 1
            if job.first_record_mono is None:
                job.first_record_mono = self._clock()
            if job.cache is not None:
                try:
                    job.cache.put(job.runs[cell], record)
                except ReproError:
                    pass  # a broken cache must not sink the job's records
            self._maybe_finish(job)

    def _handle_cell_error(
        self, worker: _WorkerConn, frame: Dict[str, Any]
    ) -> None:
        with self._lock:
            worker.current = None
            job = self._jobs.get(str(frame.get("job")))
            if job is None:
                return
            try:
                cell = int(frame["cell"])
                job.table.forget(int(frame["lease_id"]))
            except (KeyError, TypeError, ValueError):
                return
            if job.state != "running":
                return
            error = str(frame.get("error", "unknown error"))
            if not job.table.max_attempts:
                # Quarantine disabled: a failing cell is job-fatal (the
                # pre-quarantine behaviour); the store keeps its prefix.
                self._fail_job(
                    job, f"cell {cell} failed on worker {worker.id}: {error}"
                )
                return
            self._cell_failed(job, cell, f"worker {worker.id}: {error}")

    def _fail_job(self, job: _Job, error: str) -> None:
        """Stop scheduling a job's cells; its store keeps its valid prefix."""
        if job.state != "running":
            return
        job.state = "failed"
        job.error = error
        job.skipped += job.table.drain()
        job.finished_mono = self._clock()
        self._segments.release_job(job.id)
        self.events.emit("job-failed", job=job.id, error=error)

    def _maybe_finish(self, job: _Job) -> None:
        if (
            job.state == "running"
            and job.table.pending_count == 0
            and job.table.leased_count == 0
        ):
            job.state = "done"
            job.finished_mono = self._clock()
            self._segments.release_job(job.id)
            if job.table.quarantined_count:
                self.events.emit(
                    "job-done-with-quarantine",
                    job=job.id,
                    quarantined=job.table.quarantined_count,
                )

    # -- monitor -------------------------------------------------------

    def _monitor_loop(self) -> None:
        while not self._stop_event.wait(_TICK_SECONDS):
            now = self._clock()
            stale: List[_WorkerConn] = []
            draining_done = self._draining
            with self._lock:
                for job in self._jobs.values():
                    if job.state != "running":
                        continue
                    expired = job.table.expire()
                    job.expired_leases += len(expired)
                    for lease in expired:
                        self.events.emit(
                            "lease-expired",
                            job=job.id,
                            cell=lease.cell,
                            worker=lease.worker,
                        )
                    if draining_done and job.table.leased_count:
                        draining_done = False
                for worker in self._workers.values():
                    if worker.evicted or worker.assigning:
                        continue
                    if now - worker.last_seen > self._heartbeat_timeout:
                        worker.evicted = True
                        stale.append(worker)
            for worker in stale:
                self._evictions += 1
                self.events.emit(
                    "worker-evicted",
                    worker=worker.id,
                    pid=worker.pid,
                    silent_seconds=round(now - worker.last_seen, 3),
                )
                # Closing the socket routes eviction through the same
                # path as a worker crash: the worker loop sees EOF and
                # requeues every lease the worker held.
                try:
                    worker.sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    worker.sock.close()
                except OSError:
                    pass
            if draining_done:
                # Drain: nothing is leased anywhere and nothing new will
                # be — the flush already happened record by record.
                self.events.emit("drain-complete")
                self.request_stop()
                return
            if (
                self._num_workers
                and not self._stop_event.is_set()
                and not self._draining
            ):
                self._respawn_missing(now)

    def _respawn_missing(self, now: float) -> None:
        """Respawn dead managed workers, under a budget with backoff."""
        live = sum(1 for process, _ in self._managed if process.poll() is None)
        missing = self._num_workers - live
        if missing <= 0:
            return
        # A fleet that has been stable for a while earns a fresh (short)
        # backoff; a crash-looping one keeps doubling toward the cap.
        if self._last_respawn and now - self._last_respawn > 10.0:
            self._respawn_pause = 0.1
        for _ in range(missing):
            if self._worker_restarts >= self._restart_budget:
                if not self._budget_spent_logged:
                    self._budget_spent_logged = True
                    self.events.emit(
                        "restart-budget-exhausted",
                        budget=self._restart_budget,
                        live=live,
                    )
                return
            if now < self._next_respawn:
                return
            self._spawn_worker()
            self._worker_restarts += 1
            self._last_respawn = now
            self._next_respawn = now + self._respawn_pause
            self.events.emit(
                "worker-respawned",
                restarts=self._worker_restarts,
                budget=self._restart_budget,
                backoff_seconds=self._respawn_pause,
            )
            self._respawn_pause = min(self._respawn_pause * 2, 5.0)

    # -- control plane -------------------------------------------------

    def _client_loop(self, sock: socket.socket) -> None:
        try:
            while not self._stop_event.is_set():
                frame = recv_frame(sock)
                if frame is None:
                    return
                try:
                    reply = self._handle_request(frame)
                except ReproError as exc:
                    reply = {"type": "error", "error": str(exc)}
                send_frame(sock, reply)
                if frame.get("type") == "shutdown":
                    return
        except (OSError, ServiceError):
            return
        finally:
            try:
                sock.close()
            except OSError:
                pass

    def _handle_request(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        kind = frame.get("type")
        if kind == "submit":
            return {"type": "submitted", "job": self._submit(frame)}
        if kind == "status":
            return self.status()
        if kind == "job-status":
            job_id = str(frame.get("job"))
            with self._lock:
                job = self._jobs.get(job_id)
                if job is None:
                    raise ServiceError(f"no such job: {job_id}")
                return {"type": "job-reply", "job": job.describe(self._clock)}
        if kind == "shutdown":
            self.request_stop()
            return {"type": "ok"}
        if kind == "drain":
            self.request_drain()
            return {"type": "ok"}
        raise ServiceError(f"unknown request type {kind!r}")

    def _submit(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        if self._stop_event.is_set():
            raise ServiceError("the service is shutting down")
        spec = SweepSpec.from_dict(frame.get("spec"))
        spec.require_sweepable()
        out = str(frame.get("out") or "")
        if not out:
            raise ServiceError("submit needs an output store path")
        out_path = Path(out)
        if not out_path.is_absolute():
            out_path = self.root / out_path
        resume = bool(frame.get("resume", False))
        max_cells = frame.get("max_cells")
        if max_cells is not None:
            max_cells = int(max_cells)
            if max_cells < 0:
                raise ServiceError(f"max_cells must be >= 0, got {max_cells}")
        with self._lock:
            for other in self._jobs.values():
                if (
                    other.state == "running"
                    and str(other.writer.store.path) == str(out_path)
                ):
                    raise ServiceError(
                        f"job {other.id} is already writing {out_path}; two "
                        "jobs must not share one store file"
                    )
        cache_dir = frame.get("cache")
        cache = None
        if cache_dir:
            cache = self._caches.setdefault(
                str(Path(cache_dir)), ResultCache(Path(cache_dir))
            )
        writer = SweepStoreWriter(spec, out_path, resume=resume)
        with self._lock:
            self._job_counter += 1
            job = _Job(
                f"job-{self._job_counter}",
                spec,
                writer,
                cache,
                self._clock,
                max_cell_attempts=self._max_cell_attempts,
            )
        # Everything below mirrors run_sweep's scheduling exactly: resumed
        # cells first, then the max_cells budget, then cache lookups on
        # the budgeted cells only — so the store file comes out byte-
        # identical to the serial path under every combination.
        for index in writer.done:
            job.table.mark_done(index)
        scheduled = writer.pending()
        if max_cells is not None:
            for index in scheduled[max_cells:]:
                if job.table.skip(index):
                    job.skipped += 1
            scheduled = scheduled[:max_cells]
        if cache is not None:
            for index in scheduled:
                record = cache.get(job.runs[index])
                if record is not None:
                    writer.write(index, record.to_dict())
                    job.table.mark_done(index)
                    job.cache_hits += 1
        self._plan_segments(job)
        with self._lock:
            self._jobs[job.id] = job
            self._maybe_finish(job)
            return job.describe(self._clock)

    def _plan_segments(self, job: _Job) -> None:
        """Assign each cell its shared-workload pool key (or none)."""
        if self._plane == "pickle" or not shm_available():
            if self._plane == "shm":
                raise ServiceError(
                    "plane='shm' was requested but shared memory is not "
                    "usable on this platform"
                )
            job.plane = "pickle"
            return
        workload = job.spec.workload
        entry = workload.entry()
        workload_doc = canonical_json(workload.to_dict())
        seeded = entry.takes_seed and "seed" not in workload.params
        for index, run in enumerate(job.runs):
            effective_seed = run.seed if seeded else None
            job.segment_keys[index] = (workload_doc, effective_seed)
        job.plane = "shm"

    def status(self) -> Dict[str, Any]:
        """Return the full service status document."""
        now = self._clock()
        with self._lock:
            workers = [
                {
                    "id": worker.id,
                    "pid": worker.pid,
                    "state": (
                        "executing"
                        if worker.current is not None
                        else ("idle" if worker.ready else "starting")
                    ),
                    "cells_done": worker.cells_done,
                    "last_seen_seconds": max(now - worker.last_seen, 0.0),
                    "lease": (
                        None
                        if worker.current is None
                        else {
                            "job": worker.current[0],
                            "cell": worker.current[2],
                        }
                    ),
                }
                for worker in self._workers.values()
            ]
            jobs = [job.describe(self._clock) for job in self._jobs.values()]
        return {
            "type": "status-reply",
            "service": {
                "root": str(self.root),
                "pid": os.getpid(),
                "address": None if self.address is None else self.address.to_dict(),
                "protocol": PROTOCOL_VERSION,
                "started_unix": self._started_unix,
                "lease_timeout": self._lease_timeout,
                "heartbeat_interval": self._heartbeat_interval,
                "heartbeat_timeout": self._heartbeat_timeout,
                "plane": self._plane,
                "managed_workers": self._num_workers,
                "evictions": self._evictions,
                "draining": self._draining,
                "max_cell_attempts": self._max_cell_attempts,
                "worker_restarts": self._worker_restarts,
                "restart_budget": self._restart_budget,
                "quarantined": sum(
                    job.table.quarantined_count for job in self._jobs.values()
                ),
                "events_path": str(self.events.path),
            },
            "workers": workers,
            "jobs": jobs,
            "segments": self._segments.stats(),
        }
