"""Handlers behind ``repro serve`` / ``submit`` / ``status`` / ``worker``.

The argument surface lives in :mod:`repro.api.cli` (so ``repro --help``
never imports the service layer); these functions do the work.  All of
them follow the CLI's conventions: human-readable text by default, one
JSON document with ``--json``, progress and diagnostics on stderr,
errors as :class:`~repro.errors.ReproError` for the exit-2 path.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import time
from pathlib import Path
from typing import Any, Dict, Optional

from ..analysis.tables import render_table
from ..api.specs import SweepSpec, load_spec
from ..errors import AnalysisError
from .dispatcher import Dispatcher
from .events import read_events
from .protocol import SERVICE_INFO_NAME, ServiceClient

__all__ = [
    "cmd_chaos",
    "cmd_events",
    "cmd_serve",
    "cmd_submit",
    "cmd_status",
    "cmd_worker",
]


def _emit_json(payload: Any) -> None:
    print(json.dumps(payload, indent=2, sort_keys=True))


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the dispatcher in the foreground (or stop/drain a running one)."""
    root = Path(args.root)
    if args.stop and args.drain:
        raise AnalysisError("--stop and --drain are mutually exclusive")
    if args.stop:
        with ServiceClient(root) as client:
            client.shutdown()
        if args.json:
            _emit_json({"root": str(root), "stopped": True})
        else:
            print(f"asked the service in {root} to shut down")
        return 0
    if args.drain:
        with ServiceClient(root) as client:
            client.drain()
        # The dispatcher stops leasing immediately and exits once the
        # last in-flight cell's record has flushed; its final act is
        # removing service.json, which is what we wait for here.
        drained = True
        try:
            while (root / SERVICE_INFO_NAME).exists():
                time.sleep(0.2)
        except KeyboardInterrupt:
            drained = False
        if args.json:
            _emit_json({"root": str(root), "draining": True, "drained": drained})
        elif drained:
            print(f"service in {root} drained and exited")
        else:
            print(
                f"service in {root} is still draining (in-flight cells "
                "finish, then it exits)"
            )
        return 0
    dispatcher = Dispatcher(
        root,
        workers=args.workers,
        lease_timeout=args.lease_timeout,
        heartbeat_interval=args.heartbeat_interval,
        heartbeat_timeout=args.heartbeat_timeout,
        max_segments=args.max_segments,
        plane=args.plane,
        preload=tuple(args.preload or ()),
    )
    dispatcher.start()
    try:
        # A SIGTERM (service manager, CI teardown) should shut down as
        # cleanly as Ctrl-C or a client's shutdown request.
        signal.signal(signal.SIGTERM, lambda *_: dispatcher.request_stop())
    except ValueError:
        pass  # not the main thread (embedding); rely on client shutdown
    if args.json:
        _emit_json(
            {
                "root": str(root),
                "address": dispatcher.address.to_dict(),
                "workers": args.workers,
            }
        )
        sys.stdout.flush()
    else:
        print(
            f"repro service listening at {dispatcher.address.describe()} "
            f"({args.workers} managed workers); stop with Ctrl-C or "
            f"'repro serve {root} --stop'",
            file=sys.stderr,
        )
    try:
        dispatcher.wait()
    except KeyboardInterrupt:
        pass
    finally:
        dispatcher.stop()
    return 0


def _progress_printer(stream):
    state = {"last": None}

    def update(job: Dict[str, Any]) -> None:
        line = (
            f"{job['id']}: {job['cells_done']}/{job['cells_total']} cells"
        )
        if job.get("retries"):
            line += f" ({job['retries']} retried)"
        if job.get("quarantined"):
            line += f" [{job['quarantined']} quarantined]"
        if line != state["last"]:
            print(line, file=stream)
            stream.flush()
            state["last"] = line

    return update


def cmd_submit(args: argparse.Namespace) -> int:
    """Submit a sweep spec to a running service (waits by default)."""
    spec_path = Path(args.spec)
    try:
        spec = load_spec(spec_path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise AnalysisError(f"cannot read spec file {args.spec!r}: {exc}") from exc
    if not isinstance(spec, SweepSpec):
        raise AnalysisError(
            f"{args.spec} is a run spec; the service executes sweep specs "
            "(wrap the run in a one-seed sweep)"
        )
    out = args.out or str(spec_path.with_suffix(".records.jsonl"))
    out = str(Path(out).resolve())
    cache = str(Path(args.cache).resolve()) if args.cache else None
    with ServiceClient(Path(args.root)) as client:
        job = client.submit(
            spec.to_dict(),
            out=out,
            resume=args.resume,
            cache=cache,
            max_cells=args.max_cells,
        )
        if not args.no_wait and job["state"] == "running":
            progress = None if args.json else _progress_printer(sys.stderr)
            job = client.wait_job(job["id"], progress=progress)
    if args.json:
        _emit_json({"job": job})
        return 0
    if args.no_wait:
        print(
            f"submitted {job['id']}: {job['cells_total']} cells -> "
            f"{job['out']} (repro status {args.root} to watch)"
        )
        return 0
    summary = (
        f"{job['id']} {job['state']}: {job['cells_done']}/"
        f"{job['cells_total']} cells -> {job['out']} in "
        f"{job['elapsed_seconds']:.2f}s ({job['cells_per_second']:.1f} "
        f"cells/s, {job['cache_hits']} cache hits"
    )
    if job.get("first_record_seconds") is not None:
        summary += f", first record {job['first_record_seconds']:.2f}s"
    print(summary + ")")
    if job.get("quarantined"):
        print(
            f"warning: {job['quarantined']} cells quarantined after "
            "repeated failures (see their cell-error store lines and "
            f"'repro events {args.root}')",
            file=sys.stderr,
        )
    return 0


def _render_status(payload: Dict[str, Any]) -> str:
    service = payload["service"]
    lines = [
        f"service {service['root']} (pid {service['pid']}, "
        f"plane={service['plane']}, "
        f"{len(payload['workers'])} workers connected, "
        f"{service['evictions']} evictions)"
        + (" [draining]" if service.get("draining") else "")
    ]
    health = (
        f"health: {service.get('quarantined', 0)} quarantined cells, "
        f"{service.get('worker_restarts', 0)}/"
        f"{service.get('restart_budget', 0)} worker restarts"
    )
    if service.get("events_path"):
        health += f", events -> {service['events_path']}"
    lines.append(health)
    if payload["workers"]:
        lines.append(
            render_table(
                ["worker", "pid", "state", "cells", "lease", "seen"],
                [
                    [
                        worker["id"],
                        str(worker["pid"]),
                        worker["state"],
                        str(worker["cells_done"]),
                        (
                            "-"
                            if worker["lease"] is None
                            else f"{worker['lease']['job']}#{worker['lease']['cell']}"
                        ),
                        f"{worker['last_seen_seconds']:.1f}s",
                    ]
                    for worker in payload["workers"]
                ],
            )
        )
    if payload["jobs"]:
        lines.append(
            render_table(
                ["job", "state", "cells", "cached", "retried", "quar",
                 "cells/s", "out"],
                [
                    [
                        job["id"],
                        job["state"],
                        f"{job['cells_done']}/{job['cells_total']}",
                        str(job["cache_hits"]),
                        str(job.get("retries", 0)),
                        str(job.get("quarantined", 0)),
                        f"{job['cells_per_second']:.1f}",
                        job["out"],
                    ]
                    for job in payload["jobs"]
                ],
            )
        )
    else:
        lines.append("no jobs submitted yet")
    segments = payload["segments"]
    lines.append(
        f"segments: {segments['active']} active, {segments['idle']} warm, "
        f"{segments['bytes']} bytes ({segments['built']} built, "
        f"{segments['reused']} reused)"
    )
    return "\n".join(lines)


def cmd_status(args: argparse.Namespace) -> int:
    """Show (or watch) the live status of a running service."""
    while True:
        with ServiceClient(Path(args.root)) as client:
            payload = client.status()
        if args.json:
            _emit_json(payload)
        else:
            print(_render_status(payload))
        if args.watch is None:
            return 0
        sys.stdout.flush()
        try:
            time.sleep(args.watch)
        except KeyboardInterrupt:
            return 0
        if not args.json:
            print()


def cmd_worker(args: argparse.Namespace) -> int:
    """Run one worker process against a service root (foreground)."""
    from .worker import worker_main

    return worker_main(args.root, preload=tuple(args.preload or ()))


def cmd_events(args: argparse.Namespace) -> int:
    """Show a service root's incident log (events.jsonl)."""
    events = read_events(Path(args.root), tail=args.tail)
    if args.json:
        _emit_json({"root": str(args.root), "events": events})
        return 0
    if not events:
        print(f"no incidents recorded in {args.root}")
        return 0
    for event in events:
        stamp = time.strftime(
            "%H:%M:%S", time.localtime(float(event.get("ts", 0.0)))
        )
        fields = " ".join(
            f"{key}={event[key]}"
            for key in sorted(event)
            if key not in ("ts", "event")
        )
        line = f"{stamp} {event.get('event', '?')}"
        print(f"{line} {fields}" if fields else line)
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run a seeded chaos (or control) session; exit 1 on a violated invariant."""
    from .chaos import run_chaos_session

    report = run_chaos_session(
        Path(args.root),
        seed=args.seed,
        workers=args.workers,
        control=args.control,
    )
    if args.json:
        _emit_json(report)
        return 0 if report["ok"] else 1
    verdict = "OK" if report["ok"] else "FAILED"
    print(
        f"{report['mode']} session seed={report['seed']} "
        f"({report['workers']} workers): {verdict} in "
        f"{report['elapsed_seconds']:.1f}s"
    )
    identical = sum(1 for sweep in report["sweeps"] if sweep["identical"])
    print(
        f"  stores: {identical}/{len(report['sweeps'])} byte-identical "
        "to the serial reference"
    )
    points = ", ".join(report["fault_points_fired"]) or "none"
    print(
        f"  faults: {report['fault_fires']} fired across "
        f"{len(report['fault_points_fired'])} points ({points})"
    )
    print(
        f"  fleet: {report['quarantined']} quarantined, "
        f"{report['worker_restarts']} worker restarts, "
        f"{report['events']} events -> {report['events_path']}"
    )
    poison = report.get("poison")
    if poison is not None and "state" in poison:
        print(
            f"  poison: cell {poison['cell']} quarantined after "
            f"{poison.get('observed_attempts')} attempts; "
            f"{poison['cells_done']} healthy cells completed "
            f"(job {poison['state']})"
        )
    for failure in report["failures"]:
        print(f"  FAILURE: {failure}", file=sys.stderr)
    return 0 if report["ok"] else 1
