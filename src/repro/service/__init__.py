"""Persistent worker-fleet experiment service.

The third execution tier, above in-process calls and per-call process
pools: a long-lived **dispatcher** (:class:`Dispatcher`) owns a cell
queue fed from :class:`~repro.api.specs.SweepSpec` submissions and
leases cells to resident **worker** processes (:func:`worker_main`)
over a local socket protocol of length-prefixed canonical-JSON frames
(:mod:`repro.service.protocol`).  Completed records stream into the
same JSONL store format ``repro sweep`` writes — byte-identical to a
serial run — while the fleet amortises process spawn, shared-memory
workload materialisation, JIT warm-up and workload construction across
cells, jobs and whole sweeps.

Fault tolerance is lease-based (:mod:`repro.service.leases`): every
leased cell carries a deadline, workers heartbeat, and a killed, wedged
or evicted worker's cells are requeued and re-executed — execution is
at-least-once, recording exactly-once, and records are deterministic in
the cell's explicit seed, so retries change nothing.

Command-line surface: ``repro serve DIR`` (dispatcher, with managed
workers), ``repro worker DIR`` (extra capacity), ``repro submit DIR
SPEC`` (run a sweep on the fleet), ``repro status DIR`` (live fleet and
job state).  :class:`ServiceClient` is the same control plane from
Python.
"""

from .dispatcher import Dispatcher, SegmentPool
from .events import EVENTS_FILE_NAME, EventLog, read_events
from .leases import CellLeaseTable, Lease
from .protocol import (
    PROTOCOL_VERSION,
    ServiceAddress,
    ServiceClient,
    read_service_info,
)
from .worker import worker_main

__all__ = [
    "EVENTS_FILE_NAME",
    "PROTOCOL_VERSION",
    "CellLeaseTable",
    "Dispatcher",
    "EventLog",
    "Lease",
    "SegmentPool",
    "ServiceAddress",
    "ServiceClient",
    "read_events",
    "read_service_info",
    "worker_main",
]
