"""Seeded chaos sessions: prove the service degrades, recovers, agrees.

A chaos session is the robustness contract of :mod:`repro.service` made
executable.  It runs the same three-sweep workload twice — once serially
through :func:`~repro.api.store.run_sweep` (the ground truth) and once
on a live dispatcher/worker fleet with a :class:`~repro.faults
.FaultSchedule` armed — and then checks the only invariant that matters:
**the JSONL stores are byte-identical**, no matter how many workers
crashed mid-record, frames tore on the wire, leases expired under
running cells, or handshakes were dropped on the floor.

Two phases:

* **chaos** — :meth:`FaultSchedule.chaos(seed) <repro.faults
  .FaultSchedule.chaos>` arms one rule per kind of *recoverable* fault;
  the session asserts byte-identity per sweep, that zero cells were
  quarantined (every fault was survivable), and reports which distinct
  fault points actually fired (from the root's ``events.jsonl``).
* **poison** — a separate fleet runs one sweep with a single rule that
  makes one cell fail on *every* worker, forever.  The session asserts
  the cell is quarantined after exactly ``poison_attempts`` failures,
  that every other cell still completed, and that the store holds a
  ``cell-error`` line for the poison cell — graceful degradation, not a
  stalled job.

``control=True`` runs the same session with no schedule armed: the
fault plane must be invisible (byte-identity again, zero fault events,
zero quarantine).  ``repro chaos`` is the CLI door; ``benchmarks/
bench_chaos.py`` and the CI ``chaos-smoke`` job pin one seed forever.

Determinism note: the *schedule* is fully replayable, but OS scheduling
decides which worker draws which cell, so the fired-fault timeline may
differ between runs of the same seed.  The session's assertions are
therefore about outputs (stores, quarantine counts), never about which
process a fault landed in.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..api.specs import AlgorithmSpec, SweepSpec, WorkloadSpec
from ..api.store import run_sweep
from ..errors import ServiceError
from ..faults import (
    FAULTS_ENV,
    FAULTS_EVENTS_ENV,
    FAULTS_SCOPE_ENV,
    FaultRule,
    FaultSchedule,
    uninstall_plane,
)
from .dispatcher import Dispatcher
from .events import read_events
from .protocol import ServiceClient
from .worker import preload_modules

__all__ = [
    "CHAOS_PRELOAD",
    "SCHEDULE_FILE_NAME",
    "chaos_specs",
    "poison_schedule",
    "run_chaos_session",
]

#: Module every chaos fleet process preloads (registers the probe).
CHAOS_PRELOAD = ("repro.service.probes",)
#: Registry name of the near-zero-cost probe algorithm chaos cells run.
PROBE_ALGORITHM = "service-probe"
#: Where a session writes the armed schedule inside its service root.
SCHEDULE_FILE_NAME = "fault-schedule.json"

#: Quarantine threshold for the *chaos* fleet.  Deliberately above the
#: worst case a single cell can accumulate from the standard mix (one
#: injected failure plus every crash/tear that could revoke its lease),
#: so independent recoverable faults never quarantine a cell and break
#: the byte-identity contract.
CHAOS_MAX_CELL_ATTEMPTS = 6


def chaos_specs(num_nodes: int = 28) -> List[SweepSpec]:
    """The session's three-sweep workload (2 algorithms x 3 seeds each).

    Three sweeps (distinct experiments, seeds and graph sizes) make the
    fleet cross job boundaries mid-chaos: segments are shared, released
    and rebuilt while faults fire, which is where ordering bugs live.
    """
    specs = []
    for index in range(3):
        specs.append(
            SweepSpec(
                experiment=f"chaos-{index + 1}",
                algorithms=(
                    AlgorithmSpec(PROBE_ALGORITHM, {"scale": 1}),
                    AlgorithmSpec(
                        PROBE_ALGORITHM, {"scale": 2}, label="probe-2"
                    ),
                ),
                workload=WorkloadSpec(
                    "gnp",
                    {
                        "num_nodes": num_nodes + 4 * index,
                        "edge_probability": 0.3,
                    },
                ),
                seeds=tuple(range(3 * index + 1, 3 * index + 4)),
            )
        )
    return specs


def poison_schedule(cell: int) -> FaultSchedule:
    """A schedule with one rule: ``cell`` fails on every worker, forever."""
    return FaultSchedule(
        seed=0,
        rules=(
            FaultRule.build(
                "worker.execute", "fail", match={"cell": cell}, times=None
            ),
        ),
    )


@contextmanager
def _armed(
    schedule: Optional[FaultSchedule], root: Path
) -> Iterator[Optional[Path]]:
    """Arm ``schedule`` via the environment for the enclosed fleet.

    The dispatcher starts in *this* process (it reads the env itself)
    and ``Popen``-spawns workers that inherit it; on exit the prior
    environment is restored and the process-global plane uninstalled so
    chaos never leaks into later phases, commands or tests.
    """
    if schedule is None:
        yield None
        return
    root.mkdir(parents=True, exist_ok=True)
    schedule_path = schedule.dump(root / SCHEDULE_FILE_NAME)
    updates = {
        FAULTS_ENV: str(schedule_path),
        FAULTS_EVENTS_ENV: str(root / "events.jsonl"),
        FAULTS_SCOPE_ENV: None,  # the dispatcher defaults its own scope
    }
    saved = {key: os.environ.get(key) for key in updates}
    for key, value in updates.items():
        if value is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = value
    try:
        yield schedule_path
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        uninstall_plane()


def _fresh(path: Path) -> Path:
    if path.exists():
        path.unlink()
    return path


def _run_fleet(
    svc_root: Path,
    specs: List[SweepSpec],
    outs: List[Path],
    workers: int,
    max_cell_attempts: int,
    job_timeout: float,
) -> Tuple[List[Optional[Dict[str, Any]]], Dict[str, Any], List[str]]:
    """Run ``specs`` on a fresh fleet; return (jobs, status, failures)."""
    failures: List[str] = []
    finals: List[Optional[Dict[str, Any]]] = [None] * len(specs)
    dispatcher = Dispatcher(
        svc_root,
        workers=workers,
        preload=CHAOS_PRELOAD,
        heartbeat_interval=0.3,
        lease_timeout=15.0,
        max_cell_attempts=max_cell_attempts,
    )
    dispatcher.start()
    try:
        with ServiceClient.connect(svc_root) as client:
            jobs = []
            for spec, out in zip(specs, outs):
                jobs.append(
                    client.submit(spec.to_dict(), out=str(_fresh(out)))
                )
            for index, job in enumerate(jobs):
                try:
                    finals[index] = client.wait_job(
                        job["id"], timeout=job_timeout
                    )
                except ServiceError as exc:
                    failures.append(
                        f"sweep {specs[index].experiment!r}: {exc}"
                    )
            status = client.status()
    finally:
        dispatcher.stop()
    return finals, status, failures


def run_chaos_session(
    root: "str | Path",
    seed: int = 0,
    workers: int = 2,
    control: bool = False,
    poison_attempts: int = 3,
    job_timeout: float = 180.0,
) -> Dict[str, Any]:
    """Run one full chaos (or control) session under ``root``.

    Returns a JSON-ready report; ``report["ok"]`` is the verdict and
    ``report["failures"]`` lists every violated invariant (empty on a
    clean session).  Never raises for an invariant violation — callers
    (the CLI, the benchmark, CI) decide how loudly to fail.
    """
    if workers < 1:
        raise ServiceError(f"chaos sessions need >= 1 worker, got {workers}")
    if poison_attempts < 1:
        raise ServiceError(
            f"poison_attempts must be >= 1, got {poison_attempts}"
        )
    preload_modules(CHAOS_PRELOAD)
    # Resolved so store paths survive the trip through the dispatcher,
    # which anchors relative submit paths at its own service root.
    root = Path(root).resolve()
    root.mkdir(parents=True, exist_ok=True)
    started = time.monotonic()
    failures: List[str] = []
    specs = chaos_specs()

    # Ground truth first, before any plane is armed: the serial path must
    # never see an injected fault.
    references = []
    for index, spec in enumerate(specs, start=1):
        reference = _fresh(root / f"reference-{index}.records.jsonl")
        run_sweep(spec, reference)
        references.append(reference)

    # -- phase 1: the standard recoverable-fault mix (or nothing) -------
    schedule = (
        None if control else FaultSchedule.chaos(seed, workers=workers)
    )
    svc_root = root / ("control-svc" if control else "chaos-svc")
    outs = [
        root / f"fleet-{index}.records.jsonl"
        for index in range(1, len(specs) + 1)
    ]
    with _armed(schedule, svc_root):
        finals, status, fleet_failures = _run_fleet(
            svc_root, specs, outs, workers, CHAOS_MAX_CELL_ATTEMPTS,
            job_timeout,
        )
    failures.extend(fleet_failures)

    sweeps = []
    for spec, reference, out, final in zip(specs, references, outs, finals):
        identical = (
            out.exists() and out.read_bytes() == reference.read_bytes()
        )
        if not identical:
            failures.append(
                f"sweep {spec.experiment!r}: fleet store {out} is not "
                f"byte-identical to the serial reference"
            )
        sweeps.append(
            {
                "experiment": spec.experiment,
                "cells": len(spec.cells()),
                "out": str(out),
                "reference": str(reference),
                "identical": identical,
                "state": None if final is None else final["state"],
                "retries": 0 if final is None else final["retries"],
            }
        )

    quarantined = status["service"]["quarantined"]
    if quarantined:
        failures.append(
            f"{quarantined} cells were quarantined; every fault in the "
            "standard mix is recoverable, so none should be"
        )
    events = read_events(svc_root)
    fired = [event for event in events if event.get("event") == "fault-fired"]
    points_fired = sorted({str(event.get("point")) for event in fired})
    if control and fired:
        failures.append(
            f"control session fired {len(fired)} faults; none were armed"
        )

    report: Dict[str, Any] = {
        "mode": "control" if control else "chaos",
        "seed": seed,
        "workers": workers,
        "sweeps": sweeps,
        "identical": all(sweep["identical"] for sweep in sweeps),
        "fault_fires": len(fired),
        "fault_points_fired": points_fired,
        "events": len(events),
        "quarantined": quarantined,
        "worker_restarts": status["service"]["worker_restarts"],
        "events_path": status["service"]["events_path"],
    }

    # -- phase 2: the poison cell (skipped for control sessions) --------
    if not control:
        poison_spec = specs[0]
        poison_cell = len(poison_spec.cells()) // 2
        poison_root = root / "poison-svc"
        poison_out = root / "poison.records.jsonl"
        with _armed(poison_schedule(poison_cell), poison_root):
            poison_dispatcher = Dispatcher(
                poison_root,
                workers=workers,
                preload=CHAOS_PRELOAD,
                heartbeat_interval=0.3,
                lease_timeout=15.0,
                max_cell_attempts=poison_attempts,
            )
            poison_dispatcher.start()
            try:
                with ServiceClient.connect(poison_root) as client:
                    job = client.submit(
                        poison_spec.to_dict(), out=str(_fresh(poison_out))
                    )
                    final = client.wait_job(job["id"], timeout=job_timeout)
            except ServiceError as exc:
                final = None
                failures.append(f"poison sweep: {exc}")
            finally:
                poison_dispatcher.stop()
        poison_report: Dict[str, Any] = {
            "cell": poison_cell,
            "attempts": poison_attempts,
            "out": str(poison_out),
        }
        if final is not None:
            cells = {
                entry["cell"]: entry for entry in final["quarantined_cells"]
            }
            poison_report.update(
                {
                    "state": final["state"],
                    "quarantined": final["quarantined"],
                    "cells_done": final["cells_done"],
                    "observed_attempts": cells.get(poison_cell, {}).get(
                        "attempts"
                    ),
                }
            )
            if final["state"] != "done":
                failures.append(
                    f"poison job ended {final['state']!r}; quarantine must "
                    "let the job finish"
                )
            if set(cells) != {poison_cell}:
                failures.append(
                    f"poison session quarantined cells {sorted(cells)}; "
                    f"expected exactly {{{poison_cell}}}"
                )
            elif cells[poison_cell]["attempts"] != poison_attempts:
                failures.append(
                    f"poison cell took {cells[poison_cell]['attempts']} "
                    f"attempts to quarantine; expected exactly "
                    f"{poison_attempts}"
                )
            if final["cells_done"] != len(poison_spec.cells()) - 1:
                failures.append(
                    f"poison job completed {final['cells_done']} cells; "
                    f"every non-poison cell "
                    f"({len(poison_spec.cells()) - 1}) must finish"
                )
        report["poison"] = poison_report

    report["failures"] = failures
    report["ok"] = not failures
    report["elapsed_seconds"] = round(time.monotonic() - started, 3)
    return report
