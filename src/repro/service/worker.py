"""Long-lived experiment worker: lease cells, execute, stay warm.

One worker process connects to the dispatcher in a service root, then
loops: announce ``ready``, receive a ``lease`` (one sweep cell as a
:class:`~repro.api.specs.RunSpec` document plus, on the shm plane, a
shared-memory graph handle), execute it, send the ``record`` back, and
announce ready again — until the dispatcher says ``shutdown`` or the
connection drops.

Warmth is the point.  The process persists across cells, jobs and whole
sweeps, so everything expensive happens once per worker instead of once
per sweep:

* on the shm plane, attached workload graphs are cached per segment
  (:data:`_ATTACH_CACHE`), so a worker attaches each distinct workload
  once no matter how many cells — of how many sweeps — use it;
* off the shm plane, execution goes through the same
  :func:`~repro.analysis.experiments._execute_cell` path (and the same
  per-process workload cache) the process-pool sweep uses, so repeated
  workloads are rebuilt at most once per worker *lifetime*, not per
  sweep;
* JIT warm-up, imports, and workload oracle computation amortise the
  same way.

A background thread heartbeats on the same socket (frame sends are
locked, so the two writers never interleave), which is how the
dispatcher distinguishes a worker that is busy on a long cell from one
that is wedged or gone.
"""

from __future__ import annotations

import argparse
import importlib
import os
import signal
import socket
import threading
import time
import traceback
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional

from ..analysis.experiments import ExperimentRecord, _execute_cell, run_single
from ..api.specs import RunSpec
from ..errors import ReproError, ServiceError
from ..faults import fault_point, install_from_env
from ..graphs.graph import Graph
from ..graphs.shm import SharedGraphHandle, disown_tracker
from .protocol import (
    PROTOCOL_VERSION,
    ServiceAddress,
    read_service_info,
    recv_frame,
    send_frame,
)

__all__ = ["worker_main", "preload_modules"]

#: Worker-side cache of attached shared-memory workloads, keyed by segment
#: name (segment names are globally unique, so a stale entry can never be
#: mistaken for a new workload).  Bounded LRU: dropping an entry unmaps
#: the attachment; the dispatcher-side segment outlives it.
_ATTACH_CACHE: "OrderedDict[str, Graph]" = OrderedDict()
_ATTACH_CACHE_MAX_ENTRIES = 8


def preload_modules(modules: Iterable[str]) -> None:
    """Import plugin modules (extra algorithm/workload registrations).

    Import errors surface as :class:`ReproError` so the CLI exits 2 with
    the module named instead of dumping a traceback.
    """
    for name in modules:
        if not name:
            continue
        try:
            importlib.import_module(name)
        except ImportError as exc:
            raise ReproError(
                f"cannot preload module {name!r}: {exc}"
            ) from exc


def _attached_graph(handle_doc: Dict[str, Any]) -> Graph:
    """Attach (or fetch the cached attachment of) a shared workload."""
    segment = str(handle_doc.get("segment", ""))
    graph = _ATTACH_CACHE.get(segment)
    if graph is not None:
        _ATTACH_CACHE.move_to_end(segment)
        return graph
    fault = fault_point("worker.attach", segment=segment)
    if fault is not None:
        # Simulates the real race this path exists for: the dispatcher
        # evicted the segment between lease and attach.  The caller
        # falls back to rebuilding the workload from the run spec.
        raise ServiceError(f"injected fault: segment {segment} unattachable")
    graph = Graph.from_shared(SharedGraphHandle.from_dict(handle_doc))
    # Workers are Popen-spawned, so the attach re-registered the segment
    # with this process's *private* resource tracker, which would unlink
    # the dispatcher's still-live segment when this worker exits.
    disown_tracker(segment)
    _ATTACH_CACHE[segment] = graph
    while len(_ATTACH_CACHE) > _ATTACH_CACHE_MAX_ENTRIES:
        _ATTACH_CACHE.popitem(last=False)
    return graph


def execute_lease(frame: Dict[str, Any]) -> ExperimentRecord:
    """Execute one lease frame's cell and return its record.

    The shm path attaches the dispatcher-materialised workload zero-copy
    and runs the algorithm on it; any attach failure (the segment was
    evicted between lease and attach) falls back to rebuilding the
    workload from the run spec — the records are identical either way,
    by the plane's byte-identity contract.
    """
    spec = RunSpec.from_dict(frame["run"])
    handle_doc = frame.get("shm")
    if handle_doc:
        try:
            graph = _attached_graph(handle_doc)
        except Exception:
            graph = None
        if graph is not None:
            return run_single(
                spec.experiment, spec.algorithm.build(), graph, spec.seed
            )
    return _execute_cell(spec.cell())


class _Heartbeat(threading.Thread):
    """Background heartbeat sender sharing the worker's socket.

    A send failure means the socket is gone; the thread records it in
    ``failed`` so the main loop can distinguish "the dispatcher closed
    my connection cleanly" (exit) from "my connection broke under me"
    (worth one reconnect attempt).
    """

    def __init__(
        self, sock: socket.socket, send_lock: threading.Lock, interval: float
    ) -> None:
        super().__init__(name="service-worker-heartbeat", daemon=True)
        self._sock = sock
        self._send_lock = send_lock
        self._interval = interval
        self._stop = threading.Event()
        self.failed = threading.Event()

    def run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                with self._send_lock:
                    send_frame(self._sock, {"type": "heartbeat"})
            except (OSError, ServiceError):
                self.failed.set()
                return

    def stop(self) -> None:
        self._stop.set()


#: First/ceiling sleeps of the exponential connect backoff.  The first
#: retry is nearly immediate (the common case is a dispatcher milliseconds
#: from binding its socket); the ceiling keeps a worker waiting out a
#: slow restart from busy-polling ``service.json``.
_CONNECT_BACKOFF_FIRST = 0.05
_CONNECT_BACKOFF_CEILING = 1.0


def _connect(root: Path, timeout: float) -> socket.socket:
    """Connect to the service in ``root``, retrying with backoff.

    Tolerates a dispatcher that has not bound its socket yet (missing
    ``service.json``, connection refused) by sleeping an exponentially
    growing interval between attempts until ``timeout`` expires.
    """
    deadline = time.monotonic() + timeout
    pause = _CONNECT_BACKOFF_FIRST
    while True:
        try:
            info = read_service_info(root)
            return ServiceAddress.from_dict(info["address"]).connect(timeout=10.0)
        except (ServiceError, OSError):
            if time.monotonic() >= deadline:
                raise
            time.sleep(min(pause, max(0.0, deadline - time.monotonic())))
            pause = min(pause * 2, _CONNECT_BACKOFF_CEILING)


def _install_sigterm_handler() -> None:
    """Make SIGTERM a clean exit (status 0) instead of a killed process.

    A drained lease is requeued by the dispatcher when the connection
    drops, so there is nothing for the worker to hand back — exiting is
    the graceful shutdown.  Only possible from the main thread; callers
    embedding :func:`worker_main` elsewhere keep their own handler.
    """
    try:
        signal.signal(signal.SIGTERM, lambda signum, frame: os._exit(0))
    except ValueError:  # pragma: no cover - not in the main thread
        pass


def _serve_session(sock: socket.socket) -> str:
    """Speak the worker protocol on one connected socket.

    Returns how the session ended: ``"shutdown"`` for a clean end (the
    dispatcher said shutdown, or closed the connection at a frame
    boundary with the heartbeat still healthy) or ``"lost"`` for an
    abnormal one (mid-frame EOF, send failure, heartbeat failure) that
    may be worth a reconnect.
    """
    send_lock = threading.Lock()
    heartbeat: Optional[_Heartbeat] = None
    try:
        with send_lock:
            send_frame(
                sock,
                {
                    "type": "hello",
                    "role": "worker",
                    "pid": os.getpid(),
                    "protocol": PROTOCOL_VERSION,
                },
            )
        welcome = recv_frame(sock)
        if welcome is None or welcome.get("type") != "welcome":
            raise ServiceError(f"service rejected this worker: {welcome!r}")
        interval = float(welcome.get("heartbeat_interval", 2.0))
        heartbeat = _Heartbeat(sock, send_lock, interval)
        heartbeat.start()

        while True:
            with send_lock:
                send_frame(sock, {"type": "ready"})
            frame = recv_frame(sock)
            if frame is None:
                return "lost" if heartbeat.failed.is_set() else "shutdown"
            if frame.get("type") == "shutdown":
                return "shutdown"
            if frame.get("type") != "lease":
                raise ServiceError(
                    f"unexpected frame from dispatcher: {frame.get('type')!r}"
                )
            reply = {
                "lease_id": frame["lease_id"],
                "job": frame["job"],
                "cell": frame["cell"],
            }
            try:
                fault = fault_point(
                    "worker.execute", cell=frame["cell"], job=frame["job"]
                )
                if fault is not None:
                    if fault.action == "crash":
                        fault.crash()
                    elif fault.action == "stall":
                        time.sleep(fault.seconds(1.0))
                    elif fault.action == "fail":
                        raise ReproError(
                            f"injected fault: cell {frame['cell']} failed"
                        )
                record = execute_lease(frame)
            except Exception as exc:
                reply["type"] = "cell-error"
                reply["error"] = f"{type(exc).__name__}: {exc}"
                reply["traceback"] = traceback.format_exc()
            else:
                reply["type"] = "record"
                reply["record"] = record.to_dict()
            if reply["type"] == "record":
                fault = fault_point("worker.record.before", cell=frame["cell"])
                if fault is not None:
                    fault.crash()
            with send_lock:
                send_frame(sock, reply)
            if reply["type"] == "record":
                fault = fault_point("worker.record.after", cell=frame["cell"])
                if fault is not None:
                    fault.crash()
    except (OSError, ServiceError):
        # Mid-frame EOF, refused send, torn frame: the connection broke
        # rather than ended.
        return "lost"
    finally:
        if heartbeat is not None:
            heartbeat.stop()
        try:
            sock.close()
        except OSError:
            pass


def worker_main(
    root: "str | Path",
    preload: Iterable[str] = (),
    connect_timeout: float = 30.0,
    reconnect_attempts: int = 1,
    reconnect_timeout: float = 5.0,
) -> int:
    """Run one worker against the service in ``root`` until shutdown.

    Returns 0 on a clean shutdown (dispatcher said so, or closed the
    connection).  Cell execution failures are *reported*, not fatal: the
    worker sends a ``cell-error`` frame and keeps serving — a broken
    algorithm in one job must not take capacity away from the others.

    When the connection *breaks* (mid-frame EOF, heartbeat send failure)
    the worker attempts up to ``reconnect_attempts`` reconnects — with
    the short ``reconnect_timeout`` rather than the startup timeout, so
    a worker orphaned by a dead dispatcher exits promptly — before
    giving up.  SIGTERM exits 0 immediately; the dispatcher requeues the
    abandoned lease.
    """
    root = Path(root)
    install_from_env()
    _install_sigterm_handler()
    preload_modules(preload)
    sock = _connect(root, connect_timeout)
    attempts_left = max(0, int(reconnect_attempts))
    pause = 0.2
    while True:
        outcome = _serve_session(sock)
        if outcome == "shutdown" or attempts_left <= 0:
            return 0
        attempts_left -= 1
        time.sleep(pause)
        pause = min(pause * 2, 2.0)
        try:
            sock = _connect(root, reconnect_timeout)
        except (ServiceError, OSError):
            # The dispatcher really is gone; nothing left to serve.
            return 0


def _main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-service-worker",
        description="Long-lived experiment-service worker process.",
    )
    parser.add_argument("root", help="service root directory (as passed to serve)")
    parser.add_argument(
        "--preload",
        action="append",
        default=[],
        metavar="MODULE",
        help="import this module before serving (extra registrations); repeatable",
    )
    args = parser.parse_args(argv)
    return worker_main(args.root, preload=args.preload)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(_main())
