"""Fundamental value types shared across the library.

The paper works with an n-node network whose vertices are identified with the
integers ``0 .. n-1`` (Section 2).  We mirror that convention: a *node id* is
a plain ``int``, an *edge* is an unordered pair of node ids, and a *triangle*
is an unordered triple.  To make unordered pairs and triples hashable and
directly comparable we canonicalise them into sorted tuples.
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

NodeId = int
Edge = Tuple[int, int]
Triangle = Tuple[int, int, int]

#: Largest network size for which canonical triples fit losslessly into
#: int64 triangle keys (``n³ < 2⁶³``).  Beyond it the columnar output plane
#: falls back to Python tuple sets.
TRIANGLE_KEY_MAX_NODES = 1 << 21


def triangle_keys(
    a: np.ndarray, b: np.ndarray, c: np.ndarray, num_nodes: int
) -> np.ndarray:
    """Encode canonical triples ``a < b < c`` into int64 keys.

    The key of ``(a, b, c)`` is ``(a·n + b)·n + c`` — a bijection onto
    integers below ``n³``, so key equality is triple equality and sorted
    keys enumerate triples in canonical lexicographic order.  Callers
    guarantee canonical rows and ``num_nodes <=``
    :data:`TRIANGLE_KEY_MAX_NODES`.
    """
    n = np.int64(num_nodes)
    return (a * n + b) * n + c


def decode_triangle_keys(
    keys: np.ndarray, num_nodes: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Decode int64 triangle keys back into canonical vertex columns."""
    n = np.int64(num_nodes)
    c = keys % n
    rest = keys // n
    return rest // n, rest % n, c


def make_edge(u: NodeId, v: NodeId) -> Edge:
    """Return the canonical (sorted) representation of the edge ``{u, v}``.

    Raises
    ------
    ValueError
        If ``u == v`` (the graphs in the paper are simple, without
        self-loops).
    """
    if u == v:
        raise ValueError(f"an edge must join two distinct vertices, got ({u}, {v})")
    return (u, v) if u < v else (v, u)


def make_triangle(u: NodeId, v: NodeId, w: NodeId) -> Triangle:
    """Return the canonical (sorted) representation of the triple ``{u, v, w}``.

    Raises
    ------
    ValueError
        If the three vertices are not pairwise distinct.
    """
    if u == v or v == w or u == w:
        raise ValueError(
            f"a triangle must contain three distinct vertices, got ({u}, {v}, {w})"
        )
    return tuple(sorted((u, v, w)))  # type: ignore[return-value]


def triangle_edges(triangle: Triangle) -> Tuple[Edge, Edge, Edge]:
    """Return the three edges of ``triangle`` in canonical form.

    This is the membership relation ``e ∈ t`` from Section 2 of the paper,
    materialised as a tuple.
    """
    a, b, c = triangle
    return (make_edge(a, b), make_edge(a, c), make_edge(b, c))


def edges_of_triangles(triangles: Iterable[Triangle]) -> set[Edge]:
    """Return ``P(R)``: the set of edges covered by a set ``R`` of triples.

    This is the operator ``P`` from Section 2 of the paper, used by the
    lower-bound argument (Lemma 5): the set of edges ``e`` such that ``e ∈ t``
    for some triple ``t`` in ``R``.
    """
    covered: set[Edge] = set()
    for triangle in triangles:
        covered.update(triangle_edges(triangle))
    return covered
