"""Fundamental value types shared across the library.

The paper works with an n-node network whose vertices are identified with the
integers ``0 .. n-1`` (Section 2).  We mirror that convention: a *node id* is
a plain ``int``, an *edge* is an unordered pair of node ids, and a *triangle*
is an unordered triple.  To make unordered pairs and triples hashable and
directly comparable we canonicalise them into sorted tuples.
"""

from __future__ import annotations

from typing import Iterable, Tuple

NodeId = int
Edge = Tuple[int, int]
Triangle = Tuple[int, int, int]


def make_edge(u: NodeId, v: NodeId) -> Edge:
    """Return the canonical (sorted) representation of the edge ``{u, v}``.

    Raises
    ------
    ValueError
        If ``u == v`` (the graphs in the paper are simple, without
        self-loops).
    """
    if u == v:
        raise ValueError(f"an edge must join two distinct vertices, got ({u}, {v})")
    return (u, v) if u < v else (v, u)


def make_triangle(u: NodeId, v: NodeId, w: NodeId) -> Triangle:
    """Return the canonical (sorted) representation of the triple ``{u, v, w}``.

    Raises
    ------
    ValueError
        If the three vertices are not pairwise distinct.
    """
    if u == v or v == w or u == w:
        raise ValueError(
            f"a triangle must contain three distinct vertices, got ({u}, {v}, {w})"
        )
    return tuple(sorted((u, v, w)))  # type: ignore[return-value]


def triangle_edges(triangle: Triangle) -> Tuple[Edge, Edge, Edge]:
    """Return the three edges of ``triangle`` in canonical form.

    This is the membership relation ``e ∈ t`` from Section 2 of the paper,
    materialised as a tuple.
    """
    a, b, c = triangle
    return (make_edge(a, b), make_edge(a, c), make_edge(b, c))


def edges_of_triangles(triangles: Iterable[Triangle]) -> set[Edge]:
    """Return ``P(R)``: the set of edges covered by a set ``R`` of triples.

    This is the operator ``P`` from Section 2 of the paper, used by the
    lower-bound argument (Lemma 5): the set of edges ``e`` such that ``e ∈ t``
    for some triple ``t`` in ``R``.
    """
    covered: set[Edge] = set()
    for triangle in triangles:
        covered.update(triangle_edges(triangle))
    return covered
