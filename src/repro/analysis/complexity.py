"""Closed-form round-complexity predictions for every row of Table 1.

The reproduction's central artifact is Table 1 of the paper, which compares
the round complexity of prior work and the new results.  This module encodes
each row as a named prediction: a closed-form function of ``n`` (base-2
logarithms, constants dropped) plus metadata about the problem variant and
communication model.  Benchmarks place measured round counts next to these
curves; the scaling analysis fits measured exponents and compares them to
the predicted ones.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional


def _log2(num_nodes: int) -> float:
    return math.log2(max(2.0, float(num_nodes)))


def dolev_listing_clique(num_nodes: int) -> float:
    """Dolev et al. [8] listing on the clique: ``n^{1/3} (log n)^{2/3}``."""
    n = float(max(2, num_nodes))
    return n ** (1.0 / 3.0) * _log2(num_nodes) ** (2.0 / 3.0)


def censor_hillel_finding_clique(num_nodes: int) -> float:
    """Censor-Hillel et al. [6] finding on the clique: ``n^{0.1572}``.

    This row is reported as a closed-form reference only; the algebraic
    algorithm itself is out of scope (see DESIGN.md, Non-goals).
    """
    return float(max(2, num_nodes)) ** 0.1572


def this_paper_finding_congest(num_nodes: int) -> float:
    """Theorem 1: finding in CONGEST, ``n^{2/3} (log n)^{2/3}``."""
    n = float(max(2, num_nodes))
    return n ** (2.0 / 3.0) * _log2(num_nodes) ** (2.0 / 3.0)


def this_paper_listing_congest(num_nodes: int) -> float:
    """Theorem 2: listing in CONGEST, ``n^{3/4} log n``."""
    n = float(max(2, num_nodes))
    return n ** (3.0 / 4.0) * _log2(num_nodes)


def drucker_finding_broadcast_lower(num_nodes: int) -> float:
    """Drucker et al. [9] conditional lower bound: ``n / (e^{sqrt(log n)} log n)``."""
    n = float(max(2, num_nodes))
    return n / (math.exp(math.sqrt(math.log(n))) * _log2(num_nodes))


def pandurangan_listing_clique_lower(num_nodes: int) -> float:
    """Pandurangan et al. [29] lower bound: ``n^{1/3} / (log n)^3``."""
    n = float(max(2, num_nodes))
    return n ** (1.0 / 3.0) / _log2(num_nodes) ** 3


def this_paper_listing_lower(num_nodes: int) -> float:
    """Theorem 3: listing lower bound ``n^{1/3} / log n`` (clique and CONGEST)."""
    n = float(max(2, num_nodes))
    return n ** (1.0 / 3.0) / _log2(num_nodes)


def naive_two_hop_upper(num_nodes: int, max_degree: Optional[int] = None) -> float:
    """Folklore upper bound ``d_max`` (``= Θ(n)`` on dense graphs)."""
    if max_degree is not None:
        return float(max_degree)
    return float(num_nodes)


def local_listing_lower(num_nodes: int) -> float:
    """Proposition 5: local listing lower bound ``n / log n``."""
    n = float(max(2, num_nodes))
    return n / _log2(num_nodes)


@dataclass(frozen=True)
class ComplexityRow:
    """One row of Table 1 (or an auxiliary reference bound)."""

    key: str
    reference: str
    bound_kind: str  # "upper" or "lower"
    problem: str  # "finding" or "listing"
    model: str  # "CONGEST", "CONGEST clique", "CONGEST broadcast"
    formula: str
    predict: Callable[[int], float]
    implemented: bool
    notes: str = ""

    def predicted(self, num_nodes: int) -> float:
        """Evaluate the closed-form prediction at ``num_nodes``."""
        return self.predict(num_nodes)


def table1_rows() -> List[ComplexityRow]:
    """Return the rows of Table 1 (plus the folklore baseline) in paper order."""
    return [
        ComplexityRow(
            key="dolev-listing-clique",
            reference="Dolev et al. [8]",
            bound_kind="upper",
            problem="listing",
            model="CONGEST clique",
            formula="O(n^{1/3} (log n)^{2/3})",
            predict=dolev_listing_clique,
            implemented=True,
            notes="reproduced by repro.core.clique_dolev",
        ),
        ComplexityRow(
            key="censor-hillel-finding-clique",
            reference="Censor-Hillel et al. [6]",
            bound_kind="upper",
            problem="finding",
            model="CONGEST clique",
            formula="O(n^{0.1572})",
            predict=censor_hillel_finding_clique,
            implemented=False,
            notes="closed-form reference only (algebraic algorithm out of scope)",
        ),
        ComplexityRow(
            key="theorem1-finding-congest",
            reference="This paper (Theorem 1)",
            bound_kind="upper",
            problem="finding",
            model="CONGEST",
            formula="O(n^{2/3} (log n)^{2/3})",
            predict=this_paper_finding_congest,
            implemented=True,
            notes="reproduced by repro.core.finding",
        ),
        ComplexityRow(
            key="theorem2-listing-congest",
            reference="This paper (Theorem 2)",
            bound_kind="upper",
            problem="listing",
            model="CONGEST",
            formula="O(n^{3/4} log n)",
            predict=this_paper_listing_congest,
            implemented=True,
            notes="reproduced by repro.core.listing",
        ),
        ComplexityRow(
            key="drucker-finding-broadcast-lower",
            reference="Drucker et al. [9]",
            bound_kind="lower",
            problem="finding",
            model="CONGEST broadcast",
            formula="Omega(n / (e^{sqrt(log n)} log n)) (conditional)",
            predict=drucker_finding_broadcast_lower,
            implemented=False,
            notes="conditional bound in a weaker model; reference only",
        ),
        ComplexityRow(
            key="pandurangan-listing-clique-lower",
            reference="Pandurangan et al. [29]",
            bound_kind="lower",
            problem="listing",
            model="CONGEST clique",
            formula="Omega(n^{1/3} / log^3 n)",
            predict=pandurangan_listing_clique_lower,
            implemented=False,
            notes="superseded by Theorem 3; reference only",
        ),
        ComplexityRow(
            key="theorem3-listing-lower",
            reference="This paper (Theorem 3)",
            bound_kind="lower",
            problem="listing",
            model="CONGEST clique",
            formula="Omega(n^{1/3} / log n)",
            predict=this_paper_listing_lower,
            implemented=True,
            notes="reproduced by repro.core.lower_bounds",
        ),
        ComplexityRow(
            key="naive-two-hop",
            reference="folklore (introduction)",
            bound_kind="upper",
            problem="listing",
            model="CONGEST",
            formula="O(d_max) = O(n) on dense graphs",
            predict=naive_two_hop_upper,
            implemented=True,
            notes="reproduced by repro.core.baselines; also Proposition 5 witness",
        ),
    ]


def table1_row(key: str) -> ComplexityRow:
    """Return a single Table-1 row by key.

    Raises
    ------
    KeyError
        If no row has the given key.
    """
    for row in table1_rows():
        if row.key == key:
            return row
    raise KeyError(f"unknown Table 1 row: {key!r}")


def predicted_round_complexities(num_nodes: int) -> Dict[str, float]:
    """Return the predicted rounds of every Table-1 row at a given ``n``."""
    return {row.key: row.predicted(num_nodes) for row in table1_rows()}


def component_bounds(num_nodes: int, epsilon: float) -> Dict[str, float]:
    """Return the component round bounds of Propositions 1–3 at (n, ε)."""
    n = float(max(2, num_nodes))
    log_n = _log2(num_nodes)
    return {
        "A1": n ** (1.0 - epsilon),
        "A2": n ** (1.0 - epsilon / 2.0),
        "A3": n ** (1.0 - epsilon) + n ** ((1.0 + epsilon) / 2.0) * log_n,
    }
