"""Experiment harness: run algorithm × workload sweeps and collect records.

The benchmarks and examples all need the same loop: generate a workload
graph, run one or more algorithms on it, verify the outputs against the
ground truth, and record the measured round counts next to the predicted
bounds.  This module provides that loop once, with explicit seeds so every
record is reproducible, and simple aggregation helpers for the table
renderers.

Sweeps are expressed as grids of :class:`SweepCell`s and executed by
:class:`SweepRunner`, which fans independent (algorithm × workload × seed)
cells out over a :mod:`concurrent.futures` process pool.  Each cell carries
its own explicit seed (derive per-cell seeds reproducibly with
:meth:`SweepRunner.spawn_seeds`, built on ``np.random.SeedSequence.spawn``),
so a parallel run produces records identical to the serial loop, in the
same order — parallelism changes wall-clock, never results.

Two properties keep large sweeps cheap:

* the runner's process pool is **persistent** — created lazily on the
  first parallel sweep and reused by every later ``run_*`` call on the
  same runner (close it with :meth:`SweepRunner.close` or a ``with``
  block), so repeated sweeps do not pay worker spawn and import costs per
  grid, and
* workloads are built **once per worker** — every executing process
  (workers and the serial path alike) memoises graph construction in a
  small cache keyed by the pickled ``(graph_factory, seed)`` cell
  identity, so a grid that runs many algorithms over the same workloads
  regenerates each graph at most once per process instead of once per
  cell (and reuses its cached CSR snapshot / oracle work across
  algorithms).  Factories must therefore be deterministic functions of
  the seed — which the reproducibility contract already requires.
"""

from __future__ import annotations

import os
import pickle
import weakref
from collections import OrderedDict
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
)

import numpy as np

from ..core.output import AlgorithmResult
from ..errors import AnalysisError
from ..graphs.graph import Graph
from ..graphs.shm import SharedGraphHandle, SharedGraphOwner, share_csr, shm_available
from ..graphs.triangles import count_triangles
from .verification import VerificationReport, verify_result

#: Environment knob selecting the workload transport for parallel sweeps:
#: ``auto`` (default) uses shared memory where available and falls back to
#: pickling cells, ``shm`` *requires* shared memory (raising when the
#: platform or the workloads cannot support it), ``pickle`` forces the
#: fallback path — the knob CI uses to keep the fallback differentially
#: tested.  Read at :class:`SweepRunner` construction; the ``plane``
#: constructor argument overrides it.
SWEEP_PLANE_ENV = "REPRO_SWEEP_PLANE"

_PLANE_MODES = ("auto", "shm", "pickle")


class RunnableAlgorithm(Protocol):
    """Anything with the ``name`` / ``model`` / ``run(graph, seed)`` interface."""

    name: str
    model: str

    def run(self, graph: Graph, seed: Optional[int | np.random.Generator] = None) -> AlgorithmResult:
        """Run on ``graph`` with the given seed."""


@dataclass(frozen=True)
class ExperimentRecord:
    """One (algorithm, workload, seed) measurement."""

    experiment: str
    algorithm: str
    model: str
    num_nodes: int
    num_edges: int
    num_triangles: int
    seed: int
    rounds: int
    messages: int
    bits: int
    recall: float
    sound: bool
    solves_finding: bool
    solves_listing: bool
    truncated: bool
    extra: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        """Return a flat dictionary (for CSV-style dumps)."""
        base = {name: getattr(self, name) for name in _EXPERIMENT_RECORD_FIELD_ORDER}
        base.update(self.extra)
        return base

    def to_dict(self) -> Dict[str, Any]:
        """Return a lossless JSON-ready dictionary (``extra`` kept nested).

        Unlike :meth:`as_dict`, which flattens ``extra`` into the row for
        CSV-style dumps, this form round-trips through
        :meth:`from_dict` without ambiguity and is what the JSONL
        experiment store (:mod:`repro.api.store`) writes.  All three
        methods (and :meth:`as_dict`) derive the field set from the
        dataclass itself, so adding a field cannot desynchronise writer
        and reader.
        """
        payload: Dict[str, Any] = {
            name: getattr(self, name) for name in _EXPERIMENT_RECORD_FIELD_ORDER
        }
        payload["extra"] = dict(self.extra)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        fields = dict(payload)
        extra = dict(fields.pop("extra", {}))
        unknown = set(fields) - _EXPERIMENT_RECORD_FIELDS
        if unknown:
            raise AnalysisError(
                f"unknown ExperimentRecord fields: {sorted(unknown)}"
            )
        missing = _EXPERIMENT_RECORD_FIELDS - set(fields)
        if missing:
            raise AnalysisError(
                f"missing ExperimentRecord fields: {sorted(missing)}"
            )
        return cls(extra=extra, **fields)


#: The scalar fields of :class:`ExperimentRecord` (everything but ``extra``),
#: in declaration order.
_EXPERIMENT_RECORD_FIELD_ORDER = tuple(
    name for name in ExperimentRecord.__dataclass_fields__ if name != "extra"
)
_EXPERIMENT_RECORD_FIELDS = frozenset(_EXPERIMENT_RECORD_FIELD_ORDER)


def run_single(
    experiment: str,
    algorithm: RunnableAlgorithm,
    graph: Graph,
    seed: int,
    extra: Optional[Dict[str, Any]] = None,
) -> ExperimentRecord:
    """Run ``algorithm`` once on ``graph`` and return the verified record."""
    result = algorithm.run(graph, seed=seed)
    report: VerificationReport = verify_result(result, graph)
    return ExperimentRecord(
        experiment=experiment,
        algorithm=result.algorithm,
        model=result.model,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        num_triangles=report.total_truth,
        seed=seed,
        rounds=result.cost.rounds,
        messages=result.cost.messages,
        bits=result.cost.bits,
        recall=report.recall,
        sound=report.sound,
        solves_finding=report.solves_finding,
        solves_listing=report.solves_listing,
        truncated=result.truncated,
        extra=dict(extra or {}),
    )


def run_repeated(
    experiment: str,
    algorithm_factory: Callable[[], RunnableAlgorithm],
    graph_factory: Callable[[int], Graph],
    seeds: Sequence[int],
    extra: Optional[Dict[str, Any]] = None,
) -> List[ExperimentRecord]:
    """Run an algorithm over several seeds, regenerating the workload per seed.

    ``graph_factory`` receives the seed so workloads can be resampled (as the
    lower-bound experiments over ``G(n, 1/2)`` require) or held fixed (by
    ignoring the argument).
    """
    if not seeds:
        raise AnalysisError("run_repeated needs at least one seed")
    records = []
    for seed in seeds:
        graph = graph_factory(seed)
        records.append(
            run_single(experiment, algorithm_factory(), graph, seed, extra=extra)
        )
    return records


def run_size_sweep(
    experiment: str,
    algorithm_factory: Callable[[], RunnableAlgorithm],
    graph_factory: Callable[[int, int], Graph],
    sizes: Sequence[int],
    seeds_per_size: int = 1,
    base_seed: int = 0,
) -> List[ExperimentRecord]:
    """Sweep the network size ``n`` and collect one record per (size, seed).

    ``graph_factory(num_nodes, seed)`` builds the workload at each size.
    """
    if not sizes:
        raise AnalysisError("run_size_sweep needs at least one size")
    if seeds_per_size < 1:
        raise AnalysisError("seeds_per_size must be at least 1")
    records: List[ExperimentRecord] = []
    for size_index, size in enumerate(sizes):
        for repeat in range(seeds_per_size):
            seed = base_seed + 1000 * size_index + repeat
            graph = graph_factory(size, seed)
            records.append(
                run_single(experiment, algorithm_factory(), graph, seed)
            )
    return records


@dataclass(frozen=True)
class SweepCell:
    """One independent (algorithm × workload × seed) unit of a sweep.

    Cells are executed in worker processes, so the two factories must be
    picklable: module-level callables or :func:`functools.partial` objects
    over module-level callables (lambdas and closures are not).
    """

    experiment: str
    algorithm_factory: Callable[[], RunnableAlgorithm]
    graph_factory: Callable[[int], Graph]
    seed: int
    extra: Optional[Dict[str, Any]] = None
    #: Optional content-addressable identity of this cell (duck-typed to
    #: avoid an analysis → api import cycle: anything with a
    #: ``content_hash()`` — in practice :class:`repro.api.specs.RunSpec`).
    #: Cells carrying one can be served from (and recorded into) a
    #: :class:`repro.api.store.ResultCache` by :meth:`SweepRunner.iter_cells`.
    run_spec: Optional[Any] = None


def _shutdown_pool(pool: ProcessPoolExecutor) -> None:
    """Finalizer target: release a dropped runner's worker processes."""
    pool.shutdown(wait=False)


#: Per-process workload cache: pickled (graph_factory, seed) ->
#: (Graph, num_nodes, num_edges).  Bounded LRU so long multi-workload
#: sweeps cannot hoard memory.
_GRAPH_CACHE: "OrderedDict[bytes, tuple]" = OrderedDict()
_GRAPH_CACHE_MAX_ENTRIES = 8


def _cell_graph(cell: SweepCell) -> Graph:
    """Build (or fetch from this process's cache) the cell's workload graph.

    The cache key is the pickled ``(graph_factory, seed)`` pair — the same
    bytes the pool ships to workers, so two cells share a graph exactly
    when a worker would deterministically rebuild the same one.
    Unpicklable factories (lambdas on the serial path) skip the cache.

    Sharing one object presumes cells treat their workload as read-only —
    every algorithm in this repository does, and the serial-equals-parallel
    record guarantee requires it (workers cache independently, so a
    mutation would be visible to different cell subsets per schedule).  As
    a cheap tripwire, a cached graph whose size no longer matches its
    construction-time shape is discarded and rebuilt.
    """
    try:
        key = pickle.dumps((cell.graph_factory, cell.seed), protocol=4)
    except Exception:
        return cell.graph_factory(cell.seed)
    entry = _GRAPH_CACHE.get(key)
    if entry is not None:
        graph, num_nodes, num_edges = entry
        if graph.num_nodes == num_nodes and graph.num_edges == num_edges:
            _GRAPH_CACHE.move_to_end(key)
            return graph
        del _GRAPH_CACHE[key]
    graph = cell.graph_factory(cell.seed)
    _GRAPH_CACHE[key] = (graph, graph.num_nodes, graph.num_edges)
    while len(_GRAPH_CACHE) > _GRAPH_CACHE_MAX_ENTRIES:
        _GRAPH_CACHE.popitem(last=False)
    return graph


def _execute_cell(cell: SweepCell) -> ExperimentRecord:
    """Run one cell (the worker entry point; top-level for picklability)."""
    graph = _cell_graph(cell)
    return run_single(
        cell.experiment,
        cell.algorithm_factory(),
        graph,
        cell.seed,
        extra=cell.extra,
    )


@dataclass(frozen=True, eq=False)
class PrebuiltGraphFactory:
    """Picklable ``seed -> Graph`` factory closing over a built graph.

    The escape hatch for workloads that are not regenerable from a seed —
    real-world graphs loaded from disk, hand-constructed gadgets.  On the
    pickle plane a cell carrying one ships the *whole graph* to every
    worker (that is the cost the shared-memory plane exists to remove);
    on the shm plane only a segment handle travels.  The seed argument is
    ignored: the workload is the same graph for every cell.

    Equality is identity (two factories are interchangeable exactly when
    they wrap the same object), which is also what :meth:`workload_cache_key`
    exposes so the sweep scheduler can group cells sharing the graph
    without pickling it once per cell.
    """

    graph: Graph

    def __call__(self, seed: int) -> Graph:
        return self.graph

    def workload_cache_key(self) -> int:
        """Cheap grouping token: the wrapped graph's identity."""
        return id(self.graph)


@dataclass(frozen=True)
class _SharedWorkloadFactory:
    """Worker-side factory attaching a shared-memory workload, zero-copy.

    The sweep scheduler substitutes one of these for the original
    ``graph_factory`` of every cell whose workload it materialised into
    shared memory: the cell then pickles in O(handle bytes) and the
    worker's per-process graph cache keys on those same bytes, so each
    worker attaches a given segment once no matter how many cells use it.
    """

    handle: SharedGraphHandle

    def __call__(self, seed: int) -> Graph:
        return Graph.from_shared(self.handle)


def _workload_group_key(cell: SweepCell) -> Optional[tuple]:
    """Identity under which cells share one materialised workload.

    Prefers a factory-provided ``workload_cache_key()`` (qualified by the
    factory type, so two factory classes can never collide) over pickling
    the factory — :class:`PrebuiltGraphFactory` would otherwise serialise
    its whole graph just to be grouped.  Falls back to the pickled
    ``(factory, seed)`` bytes, the exact identity of the worker-side graph
    cache; returns ``None`` (not shareable) when even that fails.
    """
    factory = cell.graph_factory
    token = getattr(factory, "workload_cache_key", None)
    if token is not None:
        try:
            return (
                "key",
                type(factory).__module__,
                type(factory).__qualname__,
                token(),
                cell.seed,
            )
        except Exception:
            pass
    try:
        return ("pickle", pickle.dumps((factory, cell.seed), protocol=4))
    except Exception:
        return None


class SweepRunner:
    """Schedule experiment sweeps, serially or over a process pool.

    Parameters
    ----------
    max_workers:
        Size of the worker pool.  ``None`` or any value below 2 runs the
        sweep serially in-process (no pool is created); values above 1 fan
        the cells out over a :class:`concurrent.futures.ProcessPoolExecutor`.
    chunk_size:
        Cells per pool task (``chunksize`` of :meth:`Executor.map`).  Raise
        it for sweeps of many cheap cells to amortise pickling overhead.
    plane:
        Workload transport for parallel sweeps: ``"auto"`` (materialise
        each distinct workload once in the parent and ship shared-memory
        handles, falling back to pickled cells where shm or a workload
        does not support it), ``"shm"`` (require the shared plane, raise
        otherwise), or ``"pickle"`` (force the fallback).  ``None`` reads
        the :data:`SWEEP_PLANE_ENV` environment knob, defaulting to
        ``"auto"``.  The plane changes transport cost only — records are
        byte-identical across serial, pickle and shm execution.

    The pool is created lazily on the first parallel sweep and **persists**
    across ``run_*`` calls on the same runner; use the runner as a context
    manager (or call :meth:`close`) to shut it down deterministically.
    Workers memoise workload construction per process (see
    :func:`_cell_graph`), so grids that revisit the same (workload, seed)
    cells — e.g. several algorithms over one workload list via
    :meth:`run_grid` — rebuild each graph at most once per worker.  On the
    shm plane even that per-worker rebuild collapses to a zero-copy
    segment attach, with the triangle oracle pre-computed by the parent.

    Because every cell carries its own explicit seed and cells share no
    state, the parallel path reproduces the serial path exactly: same
    records, same order.  The acceptance test pickles both record lists and
    compares the bytes.

    After every ``iter_cells``/``run_*`` call, :attr:`last_plane` holds a
    small diagnostics dict (plane used, cells served from cache, workloads
    shared, average pickled bytes per shipped cell) — the sweep-plane
    benchmark reads it instead of re-instrumenting the scheduler.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        chunk_size: int = 1,
        plane: Optional[str] = None,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise AnalysisError(f"max_workers must be positive, got {max_workers}")
        if chunk_size < 1:
            raise AnalysisError(f"chunk_size must be positive, got {chunk_size}")
        if plane is None:
            plane = os.environ.get(SWEEP_PLANE_ENV) or "auto"
        if plane not in _PLANE_MODES:
            raise AnalysisError(
                f"plane must be one of {_PLANE_MODES}, got {plane!r} "
                f"(check the {SWEEP_PLANE_ENV} environment variable)"
            )
        self._max_workers = max_workers
        self._chunk_size = chunk_size
        self._plane = plane
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_finalizer: Optional[weakref.finalize] = None
        #: Diagnostics of the most recent sweep (see class docstring).
        self.last_plane: Optional[Dict[str, Any]] = None

    @property
    def parallel(self) -> bool:
        """``True`` when sweeps run on a process pool."""
        return self._max_workers is not None and self._max_workers > 1

    @property
    def plane(self) -> str:
        """The configured workload transport (``auto`` / ``shm`` / ``pickle``)."""
        return self._plane

    def _executor(self) -> ProcessPoolExecutor:
        """Return the persistent pool, creating it on first use.

        A ``weakref.finalize`` ties the pool's lifetime to the runner:
        dropping a runner without calling :meth:`close` still releases its
        worker processes at garbage collection instead of leaking them
        until interpreter exit.
        """
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self._max_workers)
            self._pool_finalizer = weakref.finalize(
                self, _shutdown_pool, self._pool
            )
        return self._pool

    def close(self) -> None:
        """Shut down the persistent pool (idempotent).

        The runner remains usable afterwards — the next parallel sweep
        simply creates a fresh pool.
        """
        if self._pool is not None:
            self._pool_finalizer.detach()
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "SweepRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @staticmethod
    def spawn_seeds(base_seed: int, count: int) -> List[int]:
        """Derive ``count`` independent, reproducible per-cell seeds.

        Built on ``np.random.SeedSequence(base_seed).spawn``: children are
        statistically independent streams, and the derivation is a pure
        function of ``(base_seed, count)`` — the same base always yields the
        same cell seeds, regardless of worker scheduling.
        """
        if count < 0:
            raise AnalysisError(f"count must be non-negative, got {count}")
        children = np.random.SeedSequence(base_seed).spawn(count)
        return [int(child.generate_state(1, dtype=np.uint64)[0] >> 1) for child in children]

    @staticmethod
    def _require_picklable(cells: Sequence[SweepCell]) -> int:
        """Check every cell pickles before any of them reach the pool.

        The process pool pickles cells lazily, task by task, so an
        unpicklable factory (a lambda, a closure) would otherwise surface
        as a raw pickle traceback from inside the executor after part of
        the sweep has already run.  Failing eagerly names the offending
        cell instead.  Returns the total pickled size in bytes — the
        per-cell transport cost the sweep-plane benchmark reports (and
        the shm plane exists to flatten).
        """
        total_bytes = 0
        for index, cell in enumerate(cells):
            try:
                total_bytes += len(pickle.dumps(cell, protocol=4))
            except Exception as exc:
                raise AnalysisError(
                    f"sweep cell {index} (experiment={cell.experiment!r}, "
                    f"seed={cell.seed}) is not picklable for the process "
                    f"pool: {exc}.  Cell factories must be module-level "
                    "callables or functools.partial objects over "
                    "module-level callables (lambdas and closures are "
                    "not); alternatively run the sweep serially "
                    "(max_workers=None)."
                ) from exc
        return total_bytes

    def _plan_plane(
        self, cells: List[SweepCell], info: Dict[str, Any]
    ) -> "tuple[List[SweepCell], List[SharedGraphOwner]]":
        """Choose the workload transport for one parallel sweep.

        On the shm plane, each distinct workload among ``cells`` is built
        (through the same per-process cache workers use) and materialised
        **once** in the parent — triangle oracle included, since
        verification needs it for every cell — and the cells are rewritten
        to carry segment handles instead of their original factories.
        Rewriting happens before the picklability check, so a prebuilt
        graph shipped over shm is never pickled at all.  Returns the cells
        to execute plus the segment owners the caller must close when the
        sweep finishes (normally, by interruption, or through the
        broken-pool path alike).

        Fallback matrix: ``plane="pickle"`` — or unavailable shared
        memory, or a workload that cannot be grouped/materialised/shared —
        leaves the affected cells on the pickle path; ``plane="shm"``
        turns those silent fallbacks into errors (the CI leg that pins the
        shm plane uses it).
        """
        mode = self._plane
        if mode != "pickle" and not shm_available():
            if mode == "shm":
                raise AnalysisError(
                    "plane='shm' was requested but shared memory is not "
                    "usable on this platform; use plane='auto' to fall "
                    "back to pickled workloads"
                )
            mode = "pickle"
        if mode == "pickle":
            info["plane"] = "pickle"
            return list(cells), []
        groups: Dict[Any, List[int]] = {}
        for index, cell in enumerate(cells):
            key = _workload_group_key(cell)
            if key is not None:
                groups.setdefault(key, []).append(index)
        new_cells = list(cells)
        owners: List[SharedGraphOwner] = []
        try:
            for indices in groups.values():
                first = cells[indices[0]]
                try:
                    graph = _cell_graph(first)
                    owner = share_csr(graph.csr(), oracle="materialize")
                except Exception as exc:
                    if mode == "shm":
                        raise AnalysisError(
                            f"plane='shm' cannot share the workload of cell "
                            f"(experiment={first.experiment!r}, "
                            f"seed={first.seed}): {exc}"
                        ) from exc
                    continue  # non-CSR or unshareable workload: pickle path
                owners.append(owner)
                factory = _SharedWorkloadFactory(handle=owner.handle)
                for index in indices:
                    new_cells[index] = replace(
                        cells[index], graph_factory=factory
                    )
        except BaseException:
            for owner in owners:
                owner.close()
            raise
        info["plane"] = "shm" if owners else "pickle"
        info["workloads_shared"] = len(owners)
        return new_cells, owners

    def iter_cells(
        self, cells: Sequence[SweepCell], cache: Optional[Any] = None
    ) -> "Iterator[ExperimentRecord]":
        """Yield the records of ``cells`` in cell order as they complete.

        The streaming counterpart of :meth:`run_cells`: records arrive in
        deterministic cell order (never completion order), so a consumer
        that appends each record to a durable store — the JSONL experiment
        store of :mod:`repro.api.store` — leaves a clean, resumable prefix
        behind if the sweep is interrupted.

        ``cache`` is an optional content-addressed record cache (anything
        with the ``get(run_spec)`` / ``put(run_spec, record)`` interface of
        :class:`repro.api.store.ResultCache`).  Cells carrying a
        ``run_spec`` are looked up *before* any workload is built or any
        worker is touched — a fully cached sweep executes nothing — and
        every freshly executed record of such a cell is written back.
        Cache hits are yielded in cell order, interleaved with executed
        records, so consumers cannot tell the difference.
        """
        cells = list(cells)
        hits: Dict[int, ExperimentRecord] = {}
        if cache is not None:
            for index, cell in enumerate(cells):
                if cell.run_spec is None:
                    continue
                record = cache.get(cell.run_spec)
                if record is not None:
                    hits[index] = record
        pending = [index for index in range(len(cells)) if index not in hits]
        info: Dict[str, Any] = {
            "plane": "serial",
            "cells": len(cells),
            "cache_hits": len(hits),
            "executed": len(pending),
            "workloads_shared": 0,
            "pickled_bytes_per_cell": 0.0,
        }
        self.last_plane = info

        def finish(index: int, record: ExperimentRecord) -> ExperimentRecord:
            if cache is not None and cells[index].run_spec is not None:
                cache.put(cells[index].run_spec, record)
            return record

        if not self.parallel or len(pending) < 2:
            for index in range(len(cells)):
                if index in hits:
                    yield hits[index]
                else:
                    yield finish(index, _execute_cell(cells[index]))
            return

        exec_cells, owners = self._plan_plane(
            [cells[index] for index in pending], info
        )
        try:
            total_bytes = self._require_picklable(exec_cells)
            info["pickled_bytes_per_cell"] = total_bytes / len(exec_cells)
            pool = self._executor()
            try:
                results = iter(
                    pool.map(_execute_cell, exec_cells, chunksize=self._chunk_size)
                )
                for index in range(len(cells)):
                    if index in hits:
                        yield hits[index]
                    else:
                        yield finish(index, next(results))
            except BrokenExecutor:
                # A crashed worker (OOM kill, segfault) breaks the executor
                # for good; drop it so the next sweep gets a fresh pool
                # instead of re-raising forever.
                self._pool_finalizer.detach()
                pool.shutdown(wait=False)
                self._pool = None
                raise
        finally:
            # Unlink every segment this sweep materialised — on normal
            # completion, on a broken pool, and on generator teardown
            # (KeyboardInterrupt-style close()) alike.  Workers that are
            # still attached stay valid until they unmap.
            for owner in owners:
                owner.close()

    def run_cells(
        self, cells: Sequence[SweepCell], cache: Optional[Any] = None
    ) -> List[ExperimentRecord]:
        """Execute ``cells`` and return their records in cell order."""
        return list(self.iter_cells(cells, cache=cache))

    def run_grid(
        self,
        experiment: str,
        algorithm_factories: Mapping[str, Callable[[], RunnableAlgorithm]],
        graph_factory: Callable[[int], Graph],
        seeds: Sequence[int],
        extra: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, List[ExperimentRecord]]:
        """Run several algorithms over one (workload × seed) grid.

        Cells are ordered workload-major (all algorithms of a seed
        adjacent), so the per-process workload cache turns the grid's
        ``algorithms × seeds`` graph constructions into one per seed per
        process — the whole point of sharing workloads across algorithms.
        Records come back grouped by algorithm label, in seed order,
        identical to running each algorithm's sweep separately.
        """
        if not seeds:
            raise AnalysisError("run_grid needs at least one seed")
        if not algorithm_factories:
            raise AnalysisError("run_grid needs at least one algorithm")
        labels = list(algorithm_factories)
        cells = [
            SweepCell(
                experiment=experiment,
                algorithm_factory=algorithm_factories[label],
                graph_factory=graph_factory,
                seed=seed,
                extra=dict(extra) if extra else None,
            )
            for seed in seeds
            for label in labels
        ]
        records = self.run_cells(cells)
        grouped: Dict[str, List[ExperimentRecord]] = {label: [] for label in labels}
        for index, record in enumerate(records):
            grouped[labels[index % len(labels)]].append(record)
        return grouped

    def run_repeated(
        self,
        experiment: str,
        algorithm_factory: Callable[[], RunnableAlgorithm],
        graph_factory: Callable[[int], Graph],
        seeds: Sequence[int],
        extra: Optional[Dict[str, Any]] = None,
    ) -> List[ExperimentRecord]:
        """Parallel counterpart of :func:`run_repeated` (same record grid)."""
        if not seeds:
            raise AnalysisError("run_repeated needs at least one seed")
        cells = [
            SweepCell(
                experiment=experiment,
                algorithm_factory=algorithm_factory,
                graph_factory=graph_factory,
                seed=seed,
                extra=dict(extra) if extra else None,
            )
            for seed in seeds
        ]
        return self.run_cells(cells)

    def run_size_sweep(
        self,
        experiment: str,
        algorithm_factory: Callable[[], RunnableAlgorithm],
        graph_factory: Callable[[int, int], Graph],
        sizes: Sequence[int],
        seeds_per_size: int = 1,
        base_seed: int = 0,
    ) -> List[ExperimentRecord]:
        """Size sweep over the same (size × repeat) grid as :func:`run_size_sweep`.

        Per-cell seeds are derived with :meth:`spawn_seeds` (one child per
        (size, repeat) cell, in grid order), so the sweep is reproducible
        from ``base_seed`` alone and identical under any worker count.
        Note this is a deliberately *different* seeding scheme from the
        module-level helper's ``base_seed + 1000 * size_index + repeat``
        arithmetic — for the same ``base_seed`` the two produce different
        (equally valid) records.  Migrating an existing experiment to the
        runner restarts its seed lineage; within the runner, serial and
        parallel executions are byte-identical.
        """
        if not sizes:
            raise AnalysisError("run_size_sweep needs at least one size")
        if seeds_per_size < 1:
            raise AnalysisError("seeds_per_size must be at least 1")
        seeds = self.spawn_seeds(base_seed, len(sizes) * seeds_per_size)
        cells = []
        for size_index, size in enumerate(sizes):
            for repeat in range(seeds_per_size):
                seed = seeds[size_index * seeds_per_size + repeat]
                cells.append(
                    SweepCell(
                        experiment=experiment,
                        algorithm_factory=algorithm_factory,
                        graph_factory=_SizedGraphFactory(graph_factory, size),
                        seed=seed,
                    )
                )
        return self.run_cells(cells)


@dataclass(frozen=True)
class _SizedGraphFactory:
    """Picklable adapter binding a ``(size, seed)`` factory to one size."""

    factory: Callable[[int, int], Graph]
    num_nodes: int

    def __call__(self, seed: int) -> Graph:
        return self.factory(self.num_nodes, seed)


def mean_rounds_by_size(records: Iterable[ExperimentRecord]) -> Dict[int, float]:
    """Return the mean measured rounds grouped by network size."""
    totals: Dict[int, List[int]] = {}
    for record in records:
        totals.setdefault(record.num_nodes, []).append(record.rounds)
    return {size: sum(values) / len(values) for size, values in totals.items()}


def mean_recall(records: Iterable[ExperimentRecord]) -> float:
    """Return the mean recall over a collection of records."""
    values = [record.recall for record in records]
    if not values:
        raise AnalysisError("mean_recall needs at least one record")
    return sum(values) / len(values)


def all_sound(records: Iterable[ExperimentRecord]) -> bool:
    """Return ``True`` when every record in the collection was sound."""
    return all(record.sound for record in records)


def describe_workload(graph: Graph) -> Dict[str, Any]:
    """Return the workload descriptors recorded next to experiment results."""
    return {
        "num_nodes": graph.num_nodes,
        "num_edges": graph.num_edges,
        "num_triangles": count_triangles(graph),
        "max_degree": graph.max_degree(),
        "density": graph.density(),
    }
