"""Experiment harness: run algorithm × workload sweeps and collect records.

The benchmarks and examples all need the same loop: generate a workload
graph, run one or more algorithms on it, verify the outputs against the
ground truth, and record the measured round counts next to the predicted
bounds.  This module provides that loop once, with explicit seeds so every
record is reproducible, and simple aggregation helpers for the table
renderers.

Sweeps are expressed as grids of :class:`SweepCell`s and executed by
:class:`SweepRunner`, which fans independent (algorithm × workload × seed)
cells out over a :mod:`concurrent.futures` process pool.  Each cell carries
its own explicit seed (derive per-cell seeds reproducibly with
:meth:`SweepRunner.spawn_seeds`, built on ``np.random.SeedSequence.spawn``),
so a parallel run produces records identical to the serial loop, in the
same order — parallelism changes wall-clock, never results.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Protocol, Sequence

import numpy as np

from ..core.output import AlgorithmResult
from ..errors import AnalysisError
from ..graphs.graph import Graph
from ..graphs.triangles import count_triangles
from .verification import VerificationReport, verify_result


class RunnableAlgorithm(Protocol):
    """Anything with the ``name`` / ``model`` / ``run(graph, seed)`` interface."""

    name: str
    model: str

    def run(self, graph: Graph, seed: Optional[int | np.random.Generator] = None) -> AlgorithmResult:
        """Run on ``graph`` with the given seed."""


@dataclass(frozen=True)
class ExperimentRecord:
    """One (algorithm, workload, seed) measurement."""

    experiment: str
    algorithm: str
    model: str
    num_nodes: int
    num_edges: int
    num_triangles: int
    seed: int
    rounds: int
    messages: int
    bits: int
    recall: float
    sound: bool
    solves_finding: bool
    solves_listing: bool
    truncated: bool
    extra: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        """Return a flat dictionary (for CSV-style dumps)."""
        base = {
            "experiment": self.experiment,
            "algorithm": self.algorithm,
            "model": self.model,
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "num_triangles": self.num_triangles,
            "seed": self.seed,
            "rounds": self.rounds,
            "messages": self.messages,
            "bits": self.bits,
            "recall": self.recall,
            "sound": self.sound,
            "solves_finding": self.solves_finding,
            "solves_listing": self.solves_listing,
            "truncated": self.truncated,
        }
        base.update(self.extra)
        return base


def run_single(
    experiment: str,
    algorithm: RunnableAlgorithm,
    graph: Graph,
    seed: int,
    extra: Optional[Dict[str, Any]] = None,
) -> ExperimentRecord:
    """Run ``algorithm`` once on ``graph`` and return the verified record."""
    result = algorithm.run(graph, seed=seed)
    report: VerificationReport = verify_result(result, graph)
    return ExperimentRecord(
        experiment=experiment,
        algorithm=result.algorithm,
        model=result.model,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        num_triangles=report.total_truth,
        seed=seed,
        rounds=result.cost.rounds,
        messages=result.cost.messages,
        bits=result.cost.bits,
        recall=report.recall,
        sound=report.sound,
        solves_finding=report.solves_finding,
        solves_listing=report.solves_listing,
        truncated=result.truncated,
        extra=dict(extra or {}),
    )


def run_repeated(
    experiment: str,
    algorithm_factory: Callable[[], RunnableAlgorithm],
    graph_factory: Callable[[int], Graph],
    seeds: Sequence[int],
    extra: Optional[Dict[str, Any]] = None,
) -> List[ExperimentRecord]:
    """Run an algorithm over several seeds, regenerating the workload per seed.

    ``graph_factory`` receives the seed so workloads can be resampled (as the
    lower-bound experiments over ``G(n, 1/2)`` require) or held fixed (by
    ignoring the argument).
    """
    if not seeds:
        raise AnalysisError("run_repeated needs at least one seed")
    records = []
    for seed in seeds:
        graph = graph_factory(seed)
        records.append(
            run_single(experiment, algorithm_factory(), graph, seed, extra=extra)
        )
    return records


def run_size_sweep(
    experiment: str,
    algorithm_factory: Callable[[], RunnableAlgorithm],
    graph_factory: Callable[[int, int], Graph],
    sizes: Sequence[int],
    seeds_per_size: int = 1,
    base_seed: int = 0,
) -> List[ExperimentRecord]:
    """Sweep the network size ``n`` and collect one record per (size, seed).

    ``graph_factory(num_nodes, seed)`` builds the workload at each size.
    """
    if not sizes:
        raise AnalysisError("run_size_sweep needs at least one size")
    if seeds_per_size < 1:
        raise AnalysisError("seeds_per_size must be at least 1")
    records: List[ExperimentRecord] = []
    for size_index, size in enumerate(sizes):
        for repeat in range(seeds_per_size):
            seed = base_seed + 1000 * size_index + repeat
            graph = graph_factory(size, seed)
            records.append(
                run_single(experiment, algorithm_factory(), graph, seed)
            )
    return records


@dataclass(frozen=True)
class SweepCell:
    """One independent (algorithm × workload × seed) unit of a sweep.

    Cells are executed in worker processes, so the two factories must be
    picklable: module-level callables or :func:`functools.partial` objects
    over module-level callables (lambdas and closures are not).
    """

    experiment: str
    algorithm_factory: Callable[[], RunnableAlgorithm]
    graph_factory: Callable[[int], Graph]
    seed: int
    extra: Optional[Dict[str, Any]] = None


def _execute_cell(cell: SweepCell) -> ExperimentRecord:
    """Run one cell (the worker entry point; top-level for picklability)."""
    graph = cell.graph_factory(cell.seed)
    return run_single(
        cell.experiment,
        cell.algorithm_factory(),
        graph,
        cell.seed,
        extra=cell.extra,
    )


class SweepRunner:
    """Schedule experiment sweeps, serially or over a process pool.

    Parameters
    ----------
    max_workers:
        Size of the worker pool.  ``None`` or any value below 2 runs the
        sweep serially in-process (no pool is created); values above 1 fan
        the cells out over a :class:`concurrent.futures.ProcessPoolExecutor`.
    chunk_size:
        Cells per pool task (``chunksize`` of :meth:`Executor.map`).  Raise
        it for sweeps of many cheap cells to amortise pickling overhead.

    Because every cell carries its own explicit seed and cells share no
    state, the parallel path reproduces the serial path exactly: same
    records, same order.  The acceptance test pickles both record lists and
    compares the bytes.
    """

    def __init__(self, max_workers: Optional[int] = None, chunk_size: int = 1) -> None:
        if max_workers is not None and max_workers < 1:
            raise AnalysisError(f"max_workers must be positive, got {max_workers}")
        if chunk_size < 1:
            raise AnalysisError(f"chunk_size must be positive, got {chunk_size}")
        self._max_workers = max_workers
        self._chunk_size = chunk_size

    @property
    def parallel(self) -> bool:
        """``True`` when sweeps run on a process pool."""
        return self._max_workers is not None and self._max_workers > 1

    @staticmethod
    def spawn_seeds(base_seed: int, count: int) -> List[int]:
        """Derive ``count`` independent, reproducible per-cell seeds.

        Built on ``np.random.SeedSequence(base_seed).spawn``: children are
        statistically independent streams, and the derivation is a pure
        function of ``(base_seed, count)`` — the same base always yields the
        same cell seeds, regardless of worker scheduling.
        """
        if count < 0:
            raise AnalysisError(f"count must be non-negative, got {count}")
        children = np.random.SeedSequence(base_seed).spawn(count)
        return [int(child.generate_state(1, dtype=np.uint64)[0] >> 1) for child in children]

    def run_cells(self, cells: Sequence[SweepCell]) -> List[ExperimentRecord]:
        """Execute ``cells`` and return their records in cell order."""
        cells = list(cells)
        if not self.parallel or len(cells) < 2:
            return [_execute_cell(cell) for cell in cells]
        with ProcessPoolExecutor(max_workers=self._max_workers) as pool:
            return list(pool.map(_execute_cell, cells, chunksize=self._chunk_size))

    def run_repeated(
        self,
        experiment: str,
        algorithm_factory: Callable[[], RunnableAlgorithm],
        graph_factory: Callable[[int], Graph],
        seeds: Sequence[int],
        extra: Optional[Dict[str, Any]] = None,
    ) -> List[ExperimentRecord]:
        """Parallel counterpart of :func:`run_repeated` (same record grid)."""
        if not seeds:
            raise AnalysisError("run_repeated needs at least one seed")
        cells = [
            SweepCell(
                experiment=experiment,
                algorithm_factory=algorithm_factory,
                graph_factory=graph_factory,
                seed=seed,
                extra=dict(extra) if extra else None,
            )
            for seed in seeds
        ]
        return self.run_cells(cells)

    def run_size_sweep(
        self,
        experiment: str,
        algorithm_factory: Callable[[], RunnableAlgorithm],
        graph_factory: Callable[[int, int], Graph],
        sizes: Sequence[int],
        seeds_per_size: int = 1,
        base_seed: int = 0,
    ) -> List[ExperimentRecord]:
        """Size sweep over the same (size × repeat) grid as :func:`run_size_sweep`.

        Per-cell seeds are derived with :meth:`spawn_seeds` (one child per
        (size, repeat) cell, in grid order), so the sweep is reproducible
        from ``base_seed`` alone and identical under any worker count.
        Note this is a deliberately *different* seeding scheme from the
        module-level helper's ``base_seed + 1000 * size_index + repeat``
        arithmetic — for the same ``base_seed`` the two produce different
        (equally valid) records.  Migrating an existing experiment to the
        runner restarts its seed lineage; within the runner, serial and
        parallel executions are byte-identical.
        """
        if not sizes:
            raise AnalysisError("run_size_sweep needs at least one size")
        if seeds_per_size < 1:
            raise AnalysisError("seeds_per_size must be at least 1")
        seeds = self.spawn_seeds(base_seed, len(sizes) * seeds_per_size)
        cells = []
        for size_index, size in enumerate(sizes):
            for repeat in range(seeds_per_size):
                seed = seeds[size_index * seeds_per_size + repeat]
                cells.append(
                    SweepCell(
                        experiment=experiment,
                        algorithm_factory=algorithm_factory,
                        graph_factory=_SizedGraphFactory(graph_factory, size),
                        seed=seed,
                    )
                )
        return self.run_cells(cells)


@dataclass(frozen=True)
class _SizedGraphFactory:
    """Picklable adapter binding a ``(size, seed)`` factory to one size."""

    factory: Callable[[int, int], Graph]
    num_nodes: int

    def __call__(self, seed: int) -> Graph:
        return self.factory(self.num_nodes, seed)


def mean_rounds_by_size(records: Iterable[ExperimentRecord]) -> Dict[int, float]:
    """Return the mean measured rounds grouped by network size."""
    totals: Dict[int, List[int]] = {}
    for record in records:
        totals.setdefault(record.num_nodes, []).append(record.rounds)
    return {size: sum(values) / len(values) for size, values in totals.items()}


def mean_recall(records: Iterable[ExperimentRecord]) -> float:
    """Return the mean recall over a collection of records."""
    values = [record.recall for record in records]
    if not values:
        raise AnalysisError("mean_recall needs at least one record")
    return sum(values) / len(values)


def all_sound(records: Iterable[ExperimentRecord]) -> bool:
    """Return ``True`` when every record in the collection was sound."""
    return all(record.sound for record in records)


def describe_workload(graph: Graph) -> Dict[str, Any]:
    """Return the workload descriptors recorded next to experiment results."""
    return {
        "num_nodes": graph.num_nodes,
        "num_edges": graph.num_edges,
        "num_triangles": count_triangles(graph),
        "max_degree": graph.max_degree(),
        "density": graph.density(),
    }
