"""Experiment harness: run algorithm × workload sweeps and collect records.

The benchmarks and examples all need the same loop: generate a workload
graph, run one or more algorithms on it, verify the outputs against the
ground truth, and record the measured round counts next to the predicted
bounds.  This module provides that loop once, with explicit seeds so every
record is reproducible, and simple aggregation helpers for the table
renderers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Protocol, Sequence

import numpy as np

from ..core.output import AlgorithmResult
from ..errors import AnalysisError
from ..graphs.graph import Graph
from ..graphs.triangles import count_triangles
from .verification import VerificationReport, verify_result


class RunnableAlgorithm(Protocol):
    """Anything with the ``name`` / ``model`` / ``run(graph, seed)`` interface."""

    name: str
    model: str

    def run(self, graph: Graph, seed: Optional[int | np.random.Generator] = None) -> AlgorithmResult:
        """Run on ``graph`` with the given seed."""


@dataclass(frozen=True)
class ExperimentRecord:
    """One (algorithm, workload, seed) measurement."""

    experiment: str
    algorithm: str
    model: str
    num_nodes: int
    num_edges: int
    num_triangles: int
    seed: int
    rounds: int
    messages: int
    bits: int
    recall: float
    sound: bool
    solves_finding: bool
    solves_listing: bool
    truncated: bool
    extra: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        """Return a flat dictionary (for CSV-style dumps)."""
        base = {
            "experiment": self.experiment,
            "algorithm": self.algorithm,
            "model": self.model,
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "num_triangles": self.num_triangles,
            "seed": self.seed,
            "rounds": self.rounds,
            "messages": self.messages,
            "bits": self.bits,
            "recall": self.recall,
            "sound": self.sound,
            "solves_finding": self.solves_finding,
            "solves_listing": self.solves_listing,
            "truncated": self.truncated,
        }
        base.update(self.extra)
        return base


def run_single(
    experiment: str,
    algorithm: RunnableAlgorithm,
    graph: Graph,
    seed: int,
    extra: Optional[Dict[str, Any]] = None,
) -> ExperimentRecord:
    """Run ``algorithm`` once on ``graph`` and return the verified record."""
    result = algorithm.run(graph, seed=seed)
    report: VerificationReport = verify_result(result, graph)
    return ExperimentRecord(
        experiment=experiment,
        algorithm=result.algorithm,
        model=result.model,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        num_triangles=report.total_truth,
        seed=seed,
        rounds=result.cost.rounds,
        messages=result.cost.messages,
        bits=result.cost.bits,
        recall=report.recall,
        sound=report.sound,
        solves_finding=report.solves_finding,
        solves_listing=report.solves_listing,
        truncated=result.truncated,
        extra=dict(extra or {}),
    )


def run_repeated(
    experiment: str,
    algorithm_factory: Callable[[], RunnableAlgorithm],
    graph_factory: Callable[[int], Graph],
    seeds: Sequence[int],
    extra: Optional[Dict[str, Any]] = None,
) -> List[ExperimentRecord]:
    """Run an algorithm over several seeds, regenerating the workload per seed.

    ``graph_factory`` receives the seed so workloads can be resampled (as the
    lower-bound experiments over ``G(n, 1/2)`` require) or held fixed (by
    ignoring the argument).
    """
    if not seeds:
        raise AnalysisError("run_repeated needs at least one seed")
    records = []
    for seed in seeds:
        graph = graph_factory(seed)
        records.append(
            run_single(experiment, algorithm_factory(), graph, seed, extra=extra)
        )
    return records


def run_size_sweep(
    experiment: str,
    algorithm_factory: Callable[[], RunnableAlgorithm],
    graph_factory: Callable[[int, int], Graph],
    sizes: Sequence[int],
    seeds_per_size: int = 1,
    base_seed: int = 0,
) -> List[ExperimentRecord]:
    """Sweep the network size ``n`` and collect one record per (size, seed).

    ``graph_factory(num_nodes, seed)`` builds the workload at each size.
    """
    if not sizes:
        raise AnalysisError("run_size_sweep needs at least one size")
    if seeds_per_size < 1:
        raise AnalysisError("seeds_per_size must be at least 1")
    records: List[ExperimentRecord] = []
    for size_index, size in enumerate(sizes):
        for repeat in range(seeds_per_size):
            seed = base_seed + 1000 * size_index + repeat
            graph = graph_factory(size, seed)
            records.append(
                run_single(experiment, algorithm_factory(), graph, seed)
            )
    return records


def mean_rounds_by_size(records: Iterable[ExperimentRecord]) -> Dict[int, float]:
    """Return the mean measured rounds grouped by network size."""
    totals: Dict[int, List[int]] = {}
    for record in records:
        totals.setdefault(record.num_nodes, []).append(record.rounds)
    return {size: sum(values) / len(values) for size, values in totals.items()}


def mean_recall(records: Iterable[ExperimentRecord]) -> float:
    """Return the mean recall over a collection of records."""
    values = [record.recall for record in records]
    if not values:
        raise AnalysisError("mean_recall needs at least one record")
    return sum(values) / len(values)


def all_sound(records: Iterable[ExperimentRecord]) -> bool:
    """Return ``True`` when every record in the collection was sound."""
    return all(record.sound for record in records)


def describe_workload(graph: Graph) -> Dict[str, Any]:
    """Return the workload descriptors recorded next to experiment results."""
    return {
        "num_nodes": graph.num_nodes,
        "num_edges": graph.num_edges,
        "num_triangles": count_triangles(graph),
        "max_degree": graph.max_degree(),
        "density": graph.density(),
    }
