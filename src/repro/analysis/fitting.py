"""Growth-exponent fitting for scaling experiments.

The reproduction cannot (and is not expected to) match the paper's constant
factors, so the scaling benchmarks validate *exponents*: measured round
counts over a sweep of ``n`` are fitted as ``rounds ≈ a · n^b`` and the
fitted ``b`` is compared to the theorem's exponent.  Because the bounds also
carry polylogarithmic factors, the helpers can divide them out before
fitting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..errors import AnalysisError


@dataclass(frozen=True)
class PowerLawFit:
    """The result of fitting ``y ≈ a · x^b`` on a log–log scale."""

    exponent: float
    prefactor: float
    r_squared: float

    def predict(self, x: float) -> float:
        """Evaluate the fitted power law at ``x``."""
        return self.prefactor * x ** self.exponent


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Fit ``y ≈ a x^b`` by least squares on log-transformed data.

    Raises
    ------
    AnalysisError
        If fewer than two points are provided or any value is non-positive
        (a power law is undefined there).
    """
    if len(xs) != len(ys):
        raise AnalysisError(
            f"xs and ys must have the same length, got {len(xs)} and {len(ys)}"
        )
    if len(xs) < 2:
        raise AnalysisError("fitting a power law requires at least two points")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise AnalysisError("power-law fitting requires strictly positive data")
    log_x = np.log(np.asarray(xs, dtype=float))
    log_y = np.log(np.asarray(ys, dtype=float))
    slope, intercept = np.polyfit(log_x, log_y, 1)
    predictions = slope * log_x + intercept
    residual = float(np.sum((log_y - predictions) ** 2))
    total = float(np.sum((log_y - np.mean(log_y)) ** 2))
    r_squared = 1.0 if total == 0 else 1.0 - residual / total
    return PowerLawFit(
        exponent=float(slope), prefactor=float(math.exp(intercept)), r_squared=r_squared
    )


def fit_exponent_with_log_correction(
    sizes: Sequence[int],
    rounds: Sequence[float],
    log_exponent: float = 0.0,
) -> PowerLawFit:
    """Fit the polynomial exponent after dividing out a ``(log2 n)^c`` factor.

    The paper's bounds have the shape ``n^b (log n)^c``; dividing the
    measured values by ``(log2 n)^c`` before fitting isolates the polynomial
    exponent ``b``, which is what the scaling benches assert on.
    """
    if len(sizes) != len(rounds):
        raise AnalysisError(
            f"sizes and rounds must have the same length, got {len(sizes)} and {len(rounds)}"
        )
    corrected = [
        value / (math.log2(max(2.0, float(size))) ** log_exponent)
        for size, value in zip(sizes, rounds)
    ]
    return fit_power_law([float(size) for size in sizes], corrected)


def relative_shape_error(
    sizes: Sequence[int],
    measured: Sequence[float],
    reference: Callable[[int], float],
) -> float:
    """Return the max relative deviation of measured/reference from its mean.

    A scale-free comparison: if the measured curve has the same *shape* as
    the reference bound, the ratio measured/reference is constant across the
    sweep and the returned error is close to zero, regardless of constant
    factors.
    """
    if len(sizes) != len(measured):
        raise AnalysisError(
            f"sizes and measured must have the same length, got {len(sizes)} and {len(measured)}"
        )
    if not sizes:
        raise AnalysisError("shape comparison requires at least one point")
    ratios = []
    for size, value in zip(sizes, measured):
        predicted = reference(size)
        if predicted <= 0:
            raise AnalysisError(f"reference bound is non-positive at n={size}")
        ratios.append(value / predicted)
    mean_ratio = sum(ratios) / len(ratios)
    if mean_ratio == 0:
        return 0.0
    return max(abs(ratio - mean_ratio) / mean_ratio for ratio in ratios)
