"""Verification of distributed outputs against the centralized ground truth.

The paper's output model (Section 2) imposes two different requirements:

* **soundness** — every reported triple is a triangle of ``G``; this is
  unconditional (even for randomized algorithms, which must be one-sided);
* **completeness** — for listing, every triangle of ``G`` is reported by at
  least one node; for finding, some triangle is reported whenever one
  exists.

The helpers in this module measure both, plus the per-node properties the
lower-bound section cares about (who reported what, how many edges the
busiest node's output covers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional

from ..core.output import AlgorithmResult
from ..errors import VerificationError
from ..graphs.graph import Graph
from ..graphs.triangles import (
    heavy_triangles,
    light_triangles,
    list_triangles,
    triangles_through_node,
)
from ..types import Triangle, make_triangle


@dataclass(frozen=True)
class VerificationReport:
    """The outcome of verifying one run against the ground truth."""

    algorithm: str
    sound: bool
    total_truth: int
    total_reported: int
    recall: float
    missed: FrozenSet[Triangle]
    spurious: FrozenSet[Triangle]
    solves_finding: bool
    solves_listing: bool

    def summary(self) -> str:
        """Return a one-line human-readable summary."""
        return (
            f"{self.algorithm}: sound={self.sound} recall={self.recall:.3f} "
            f"({self.total_reported}/{self.total_truth}) "
            f"finding={'yes' if self.solves_finding else 'no'} "
            f"listing={'yes' if self.solves_listing else 'no'}"
        )

    def to_dict(self) -> Dict[str, object]:
        """Return a JSON-ready dictionary (inverse of :meth:`from_dict`).

        Triangle sets are rendered as sorted lists of 3-element lists so
        the representation is deterministic (two equal reports serialize
        to the same bytes).
        """
        return {
            "algorithm": self.algorithm,
            "sound": self.sound,
            "total_truth": self.total_truth,
            "total_reported": self.total_reported,
            "recall": self.recall,
            "missed": sorted(list(triangle) for triangle in self.missed),
            "spurious": sorted(list(triangle) for triangle in self.spurious),
            "solves_finding": self.solves_finding,
            "solves_listing": self.solves_listing,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "VerificationReport":
        """Rebuild a verification report from :meth:`to_dict` output."""
        return cls(
            algorithm=str(payload["algorithm"]),
            sound=bool(payload["sound"]),
            total_truth=int(payload["total_truth"]),  # type: ignore[arg-type]
            total_reported=int(payload["total_reported"]),  # type: ignore[arg-type]
            recall=float(payload["recall"]),  # type: ignore[arg-type]
            missed=frozenset(
                make_triangle(*triangle) for triangle in payload["missed"]  # type: ignore[union-attr]
            ),
            spurious=frozenset(
                make_triangle(*triangle) for triangle in payload["spurious"]  # type: ignore[union-attr]
            ),
            solves_finding=bool(payload["solves_finding"]),
            solves_listing=bool(payload["solves_listing"]),
        )


def verify_result(result: AlgorithmResult, graph: Graph) -> VerificationReport:
    """Verify ``result`` against ``graph`` and return a report.

    Unlike :meth:`AlgorithmResult.check_soundness`, this function does not
    raise on spurious triples: it records them, so experiment sweeps can
    aggregate failures instead of aborting.  (The test suite separately
    asserts that no algorithm in this repository ever produces a spurious
    triple.)
    """
    truth = frozenset(list_triangles(graph))
    reported = result.triangles_found()
    spurious = frozenset(t for t in reported if t not in truth)
    missed = truth - reported
    recall = 1.0 if not truth else (len(truth) - len(missed)) / len(truth)
    sound = not spurious
    solves_finding = bool(reported & truth) if truth else not reported
    solves_listing = sound and not missed
    return VerificationReport(
        algorithm=result.algorithm,
        sound=sound,
        total_truth=len(truth),
        total_reported=len(reported & truth),
        recall=recall,
        missed=missed,
        spurious=spurious,
        solves_finding=solves_finding,
        solves_listing=solves_listing,
    )


def require_sound(result: AlgorithmResult, graph: Graph) -> None:
    """Raise :class:`VerificationError` if the run reported any non-triangle."""
    report = verify_result(result, graph)
    if not report.sound:
        example = next(iter(report.spurious))
        raise VerificationError(
            f"{result.algorithm} reported {len(report.spurious)} non-triangles, "
            f"e.g. {example}"
        )


def recall_by_heaviness(
    result: AlgorithmResult, graph: Graph, epsilon: float
) -> Dict[str, float]:
    """Return recall split into ε-heavy and non-heavy triangles.

    The paper's component algorithms have guarantees restricted to one side
    of the split (A2 covers heavy triangles, A3 covers light ones); this
    breakdown is what the component benchmarks report.
    """
    reported = result.triangles_found()
    heavy = heavy_triangles(graph, epsilon)
    light = light_triangles(graph, epsilon)
    heavy_recall = (
        1.0 if not heavy else sum(1 for t in heavy if t in reported) / len(heavy)
    )
    light_recall = (
        1.0 if not light else sum(1 for t in light if t in reported) / len(light)
    )
    return {"heavy": heavy_recall, "light": light_recall}


def local_listing_complete(result: AlgorithmResult, graph: Graph) -> bool:
    """Return ``True`` when every node output all the triangles containing it.

    This is the success criterion of the Proposition-5 (local listing)
    setting, satisfied by the naive baseline but *not* required of the
    paper's sublinear algorithms (whose whole point is that a triangle may
    be output by a node not contained in it).
    """
    for node in graph.nodes():
        required = set(triangles_through_node(graph, node))
        if not required <= set(result.output.node_output(node)):
            return False
    return True


def nodes_reporting_foreign_triangles(
    result: AlgorithmResult, graph: Graph
) -> List[int]:
    """Return the nodes that reported a triangle not containing themselves.

    The discussion after Proposition 5 points out that any sublinear listing
    algorithm *must* let some node output a triangle it does not belong to;
    this helper makes that mechanism observable in experiments.
    """
    offenders: List[int] = []
    for node, triples in result.output.per_node.items():
        for triangle in triples:
            if node not in triangle:
                offenders.append(node)
                break
    return sorted(offenders)


def duplication_factor(result: AlgorithmResult) -> float:
    """Return the average number of nodes reporting each distinct triangle.

    The output model allows duplicates (the ``T_i`` need not be disjoint);
    the duplication factor quantifies the redundancy of a run.  Returns 0.0
    when nothing was reported.
    """
    distinct = result.triangles_found()
    if not distinct:
        return 0.0
    return result.output.total_reported() / len(distinct)
