"""Rendering of Table 1 and of scaling tables.

The benchmarks print two kinds of artifacts:

* the *Table 1 reproduction*: one row per entry of the paper's Table 1,
  showing the published asymptotic formula, the closed-form prediction at
  the benchmark's ``n``, and — for the rows we implement — the measured
  round count of our implementation on the benchmark workload;
* *scaling tables*: measured rounds over a sweep of ``n`` next to the
  reference curve and the fitted exponent.

Rendering is plain fixed-width text (no external dependencies) so the tables
appear directly in pytest/benchmark output and in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .complexity import ComplexityRow, table1_rows
from .fitting import PowerLawFit


@dataclass
class Table1Entry:
    """One rendered row of the Table 1 reproduction."""

    row: ComplexityRow
    predicted: float
    measured_rounds: Optional[int] = None
    measured_note: str = ""

    def cells(self) -> List[str]:
        """Return the formatted cells of this entry."""
        measured = "—" if self.measured_rounds is None else str(self.measured_rounds)
        return [
            self.row.reference,
            self.row.problem,
            self.row.model,
            self.row.formula,
            f"{self.predicted:.1f}",
            measured,
            self.measured_note,
        ]


TABLE1_HEADER = [
    "reference",
    "problem",
    "model",
    "published bound",
    "predicted@n",
    "measured rounds",
    "notes",
]


def render_table(header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render a fixed-width text table."""
    widths = [len(column) for column in header]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(header)))
    lines.append("  ".join("-" * widths[i] for i in range(len(header))))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_table1(
    num_nodes: int,
    measured: Optional[Dict[str, int]] = None,
    notes: Optional[Dict[str, str]] = None,
) -> str:
    """Render the Table 1 reproduction at a given network size.

    Parameters
    ----------
    num_nodes:
        The ``n`` at which the closed-form predictions are evaluated.
    measured:
        Mapping from Table-1 row key to measured rounds for the rows that
        were actually executed.
    notes:
        Optional per-row annotation (e.g. the workload used).
    """
    measured = measured or {}
    notes = notes or {}
    entries = [
        Table1Entry(
            row=row,
            predicted=row.predicted(num_nodes),
            measured_rounds=measured.get(row.key),
            measured_note=notes.get(row.key, "" if row.implemented else "not implemented"),
        )
        for row in table1_rows()
    ]
    body = [entry.cells() for entry in entries]
    title = f"Table 1 reproduction at n = {num_nodes}"
    return title + "\n" + render_table(TABLE1_HEADER, body)


def render_scaling_table(
    title: str,
    sizes: Sequence[int],
    measured_rounds: Sequence[float],
    reference_curve: Sequence[float],
    fit: Optional[PowerLawFit] = None,
    expected_exponent: Optional[float] = None,
) -> str:
    """Render a scaling experiment: measured rounds vs the reference bound."""
    header = ["n", "measured rounds", "reference bound", "measured/reference"]
    rows = []
    for size, value, reference in zip(sizes, measured_rounds, reference_curve):
        ratio = value / reference if reference else float("nan")
        rows.append(
            [str(size), f"{value:.1f}", f"{reference:.1f}", f"{ratio:.3f}"]
        )
    lines = [title, render_table(header, rows)]
    if fit is not None:
        suffix = ""
        if expected_exponent is not None:
            suffix = f" (expected {expected_exponent:.3f})"
        lines.append(
            f"fitted exponent: {fit.exponent:.3f}{suffix}, R^2 = {fit.r_squared:.3f}"
        )
    return "\n".join(lines)


def render_records_table(title: str, records: Sequence) -> str:
    """Render a list of :class:`~repro.analysis.experiments.ExperimentRecord`."""
    header = [
        "algorithm",
        "model",
        "n",
        "m",
        "triangles",
        "rounds",
        "recall",
        "sound",
    ]
    rows = [
        [
            record.algorithm,
            record.model,
            str(record.num_nodes),
            str(record.num_edges),
            str(record.num_triangles),
            str(record.rounds),
            f"{record.recall:.3f}",
            "yes" if record.sound else "NO",
        ]
        for record in records
    ]
    return title + "\n" + render_table(header, rows)
