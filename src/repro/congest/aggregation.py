"""BFS spanning trees and convergecast aggregation on the CONGEST simulator.

Several natural companions of triangle listing — counting the triangles of
the whole network, or agreeing on whether any node found one — need a global
aggregation step: combine one small value per node into a single result at a
root.  The textbook tool is a BFS spanning tree plus a convergecast, costing
``O(D)`` rounds each, where ``D`` is the diameter.  The paper leaves this
step implicit (its problems only require *local* outputs); we provide it as
a substrate so the counting extension (:mod:`repro.core.counting`) and the
examples can report network-wide aggregates while still charging honest
CONGEST rounds.

Both routines are phase-structured protocols driven on an existing
:class:`~repro.congest.simulator.CongestSimulator`, so their cost simply adds
to whatever algorithm ran before them on the same simulator.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..errors import SimulationError
from ..types import NodeId
from .node import NodeContext
from .simulator import CongestSimulator
from .wire import id_bits, integer_bits


def build_bfs_tree(
    simulator: CongestSimulator, root: NodeId = 0, max_depth: Optional[int] = None
) -> Dict[NodeId, Optional[NodeId]]:
    """Build a BFS spanning tree rooted at ``root`` by synchronous flooding.

    Each phase, the current frontier announces itself; unvisited neighbours
    adopt the first announcer (lowest identifier) as their parent and form
    the next frontier.  The number of phases equals the eccentricity of the
    root, i.e. the round cost is ``O(D)``, one round per depth level (each
    announcement is a single identifier).

    Returns
    -------
    dict
        Mapping ``node -> parent`` (``None`` for the root).  Nodes in other
        connected components do not appear; callers needing full coverage
        should check the mapping size.

    Side effects: each context's ``state`` gains ``"bfs_parent"``,
    ``"bfs_children"`` and ``"bfs_depth"`` entries, which
    :func:`convergecast_sum` consumes.
    """
    if not (0 <= root < simulator.num_nodes):
        raise SimulationError(f"root {root} is not a node of the network")
    if max_depth is None:
        max_depth = simulator.num_nodes

    def initialise(context: NodeContext) -> None:
        is_root = context.node_id == root
        context.state["bfs_parent"] = None
        context.state["bfs_visited"] = is_root
        context.state["bfs_children"] = set()
        context.state["bfs_depth"] = 0 if is_root else None
        context.state["bfs_frontier"] = is_root

    simulator.for_each_node(initialise)

    for depth in range(1, max_depth + 1):
        frontier = [
            ctx for ctx in simulator.contexts if ctx.state.get("bfs_frontier")
        ]
        if not frontier:
            break

        def announce(context: NodeContext) -> None:
            if context.state.get("bfs_frontier"):
                context.broadcast_bits(
                    ("bfs", context.node_id), bits=id_bits(context.num_nodes)
                )

        simulator.for_each_node(announce)
        simulator.run_phase(f"bfs:level-{depth}")

        def adopt_parent(context: NodeContext, current_depth: int = depth) -> None:
            context.state["bfs_frontier"] = False
            if context.state["bfs_visited"]:
                return
            announcers = sorted(
                sender for sender, payload in context.received() if payload[0] == "bfs"
            )
            if not announcers:
                return
            context.state["bfs_visited"] = True
            context.state["bfs_parent"] = announcers[0]
            context.state["bfs_depth"] = current_depth
            context.state["bfs_frontier"] = True

        simulator.for_each_node(adopt_parent)

        # Parents learn their children (one acknowledgement identifier each).
        def acknowledge(context: NodeContext) -> None:
            parent = context.state.get("bfs_parent")
            if context.state.get("bfs_frontier") and parent is not None:
                context.send(parent, ("bfs-ack", context.node_id), bits=id_bits(context.num_nodes))

        simulator.for_each_node(acknowledge)
        simulator.run_phase(f"bfs:ack-level-{depth}")

        def record_children(context: NodeContext) -> None:
            for sender, payload in context.received():
                if payload[0] == "bfs-ack":
                    context.state["bfs_children"].add(sender)

        simulator.for_each_node(record_children)

    return {
        ctx.node_id: ctx.state["bfs_parent"]
        for ctx in simulator.contexts
        if ctx.state["bfs_visited"]
    }


def convergecast_sum(
    simulator: CongestSimulator,
    value_of: Callable[[NodeContext], int],
    root: NodeId = 0,
) -> int:
    """Sum one integer per node up a previously built BFS tree.

    Requires :func:`build_bfs_tree` to have been run on the same simulator
    (it reads the ``bfs_*`` state entries).  Leaves send their values first;
    each internal node forwards the sum of its subtree once all children have
    reported, so the protocol takes one phase per tree level (``O(D)``
    rounds; each message is one ``O(log n)``-bit integer, assuming the summed
    values are polynomially bounded as they are for triangle counts).

    Returns
    -------
    int
        The sum over all nodes reachable from the root.
    """
    contexts = simulator.contexts
    if "bfs_visited" not in contexts[root].state:
        raise SimulationError("convergecast_sum requires build_bfs_tree to run first")

    depths = [
        ctx.state["bfs_depth"]
        for ctx in contexts
        if ctx.state.get("bfs_visited") and ctx.state.get("bfs_depth") is not None
    ]
    max_level = max(depths) if depths else 0

    def initialise(context: NodeContext) -> None:
        if context.state.get("bfs_visited"):
            context.state["cc_partial"] = int(value_of(context))
        else:
            context.state["cc_partial"] = 0
        context.state["cc_pending"] = set(context.state.get("bfs_children", set()))

    simulator.for_each_node(initialise)

    # Level-synchronous convergecast: at step k, nodes at depth (max - k)
    # whose children have all reported send their partial sum upward.
    for step in range(max_level, 0, -1):
        def send_up(context: NodeContext, level: int = step) -> None:
            if not context.state.get("bfs_visited"):
                return
            if context.state.get("bfs_depth") != level:
                return
            parent = context.state.get("bfs_parent")
            if parent is None:
                return
            partial = context.state["cc_partial"]
            context.send(parent, ("cc", partial), bits=max(1, integer_bits(partial)))

        simulator.for_each_node(send_up)
        simulator.run_phase(f"convergecast:level-{step}")

        def absorb(context: NodeContext) -> None:
            for sender, payload in context.received():
                if payload[0] == "cc":
                    context.state["cc_partial"] += int(payload[1])
                    context.state["cc_pending"].discard(sender)

        simulator.for_each_node(absorb)

    return int(contexts[root].state["cc_partial"])


def broadcast_from_root(
    simulator: CongestSimulator, value: int, root: NodeId = 0
) -> None:
    """Push a value from the root down the BFS tree (one phase per level).

    After completion every reachable node's ``state["broadcast_value"]``
    holds the value.  Used to disseminate a global aggregate (e.g. the total
    triangle count) back to all nodes.
    """
    contexts = simulator.contexts
    if "bfs_visited" not in contexts[root].state:
        raise SimulationError("broadcast_from_root requires build_bfs_tree to run first")

    depths = [
        ctx.state["bfs_depth"]
        for ctx in contexts
        if ctx.state.get("bfs_visited") and ctx.state.get("bfs_depth") is not None
    ]
    max_level = max(depths) if depths else 0
    contexts[root].state["broadcast_value"] = int(value)

    for level in range(0, max_level):
        def push_down(context: NodeContext, current: int = level) -> None:
            if context.state.get("bfs_depth") != current:
                return
            if "broadcast_value" not in context.state:
                return
            payload_value = context.state["broadcast_value"]
            children = sorted(context.state.get("bfs_children", set()))
            if children:
                payload = ("bc", payload_value)
                context.bulk_send(
                    children,
                    [payload] * len(children),
                    bits=max(1, integer_bits(payload_value)),
                )

        simulator.for_each_node(push_down)
        simulator.run_phase(f"tree-broadcast:level-{level}")

        def receive_value(context: NodeContext) -> None:
            for _, payload in context.received():
                if payload[0] == "bc":
                    context.state["broadcast_value"] = int(payload[1])

        simulator.for_each_node(receive_value)
