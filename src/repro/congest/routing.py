"""Lenzen's routing primitive for the CONGEST clique.

Dolev, Lenzen and Peled's deterministic triangle-listing algorithm (the
``O(n^{1/3} (log n)^{2/3})`` row of Table 1) relies on Lenzen's routing
theorem: *any* routing instance on the congested clique in which every node
is the source of at most ``n`` messages and the destination of at most ``n``
messages (each of ``O(log n)`` bits) can be delivered in ``O(1)`` rounds.

Re-deriving Lenzen's routing schedule is outside the scope of this
reproduction; instead the primitive is modelled faithfully at the level the
baseline needs: a routing instance is delivered in

    ``constant · max over nodes of ⌈ max(sent_i, received_i) / n ⌉``

rounds, where ``sent_i`` / ``received_i`` count ``O(log n)``-bit message
units.  With loads at most ``n`` this is exactly the ``O(1)`` guarantee; with
larger loads the instance is split into batches of ``n`` messages per node,
which is how the guarantee is applied in the literature.  The constant
(default 2) reflects the two balancing phases of Lenzen's scheme and is
configurable so sensitivity can be explored.

The implementation rides the runtime kernel's vectorized message plane:
per-node load tallies are ``np.bincount`` reductions over the request
arrays and delivery reuses the kernel's grouped fan-out, so instances with
hundreds of thousands of requests (the clique listing baseline routes one
message per edge per triple) avoid per-message dict bookkeeping.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Optional, Sequence

import numpy as np

from ..errors import SimulationError, TopologyError
from ..types import NodeId
from .clique import CliqueSimulator
from .metrics import PhaseReport
from .runtime import (
    DeliveredPhase,
    PhaseTraffic,
    build_typed_channel,
    record_deliveries,
)
from .wire import WireSchema, default_bit_size

_EMPTY_OBJECTS = np.empty(0, dtype=object)


@dataclass(frozen=True)
class RoutingRequest:
    """One message of a clique routing instance."""

    source: NodeId
    destination: NodeId
    payload: Any
    bits: Optional[int] = None


class LenzenRouter:
    """Deliver batched routing instances on a :class:`CliqueSimulator`.

    Parameters
    ----------
    simulator:
        The clique simulator whose nodes exchange the messages and whose
        metrics are charged.
    constant_rounds:
        The constant factor of Lenzen's O(1) guarantee (default 2).
    """

    def __init__(self, simulator: CliqueSimulator, constant_rounds: int = 2) -> None:
        if not isinstance(simulator, CliqueSimulator):
            raise SimulationError(
                "LenzenRouter requires a CliqueSimulator: Lenzen's routing "
                "theorem only holds for the congested clique"
            )
        if constant_rounds < 1:
            raise SimulationError(
                f"constant_rounds must be at least 1, got {constant_rounds}"
            )
        self._simulator = simulator
        self._constant_rounds = constant_rounds

    def route(self, requests: Sequence[RoutingRequest], name: str = "lenzen-routing") -> PhaseReport:
        """Deliver ``requests`` and charge the corresponding rounds.

        Every request is delivered to its destination node's inbox (the
        destination sees the original source as the sender, as it would after
        Lenzen's relabelling).  The charged round count is

            ``constant · ⌈ max_i max(sent_i, received_i) / n ⌉``

        where message units are ``⌈bits / B⌉`` chunks of the per-round
        bandwidth ``B``.

        Returns
        -------
        PhaseReport
            The cost of the routing phase, also recorded in the simulator's
            metrics.
        """
        num_nodes = self._simulator.num_nodes
        count = len(requests)

        src = np.fromiter(
            (request.source for request in requests), dtype=np.int64, count=count
        )
        dst = np.fromiter(
            (request.destination for request in requests), dtype=np.int64, count=count
        )
        bits = np.fromiter(
            (
                request.bits
                if request.bits is not None
                else default_bit_size(request.payload, num_nodes)
                for request in requests
            ),
            dtype=np.int64,
            count=count,
        )
        payloads = np.fromiter(
            (request.payload for request in requests), dtype=object, count=count
        )

        self._validate_endpoints(src, dst)
        traffic = PhaseTraffic(src=src, dst=dst, bits=bits, payloads=payloads)
        return self._deliver_instance(traffic, name)

    def route_columns(
        self,
        schema: WireSchema,
        src: np.ndarray,
        dst: np.ndarray,
        data: dict,
        lengths: Optional[np.ndarray] = None,
        bits: Optional[np.ndarray | int] = None,
        name: str = "lenzen-routing",
    ) -> PhaseReport:
        """Deliver a columnar routing instance under a typed wire schema.

        The batched counterpart of :meth:`route`: the whole instance
        arrives as ``(src, dst, columns)`` arrays, per-message sizes come
        from ``schema.bit_size`` (one vectorized reduction), and receivers
        consume the delivered element columns through
        ``inbox.columns(schema)`` — no per-request Python objects anywhere.
        Round accounting is identical to :meth:`route` for the same
        messages.
        """
        traffic = self._columnar_instance(schema, src, dst, data, lengths, bits)
        return self._deliver_instance(traffic, name)

    def route_columns_direct(
        self,
        schema: WireSchema,
        src: np.ndarray,
        dst: np.ndarray,
        data: dict,
        lengths: Optional[np.ndarray] = None,
        bits: Optional[np.ndarray | int] = None,
        name: str = "lenzen-routing",
    ) -> DeliveredPhase:
        """Route a columnar instance on the **direct-exchange** path.

        Identical round/bit accounting to :meth:`route_columns` for the
        same messages, but the delivered edges come back as a
        :class:`~repro.congest.runtime.DeliveredPhase` of destination-
        grouped channel arrays — no per-node inbox objects are built.
        """
        traffic = self._columnar_instance(schema, src, dst, data, lengths, bits)
        report = self._account_instance(traffic, name)
        channels = self._simulator.runtime.deliver_direct(traffic)
        return DeliveredPhase(report, channels)

    def _columnar_instance(
        self,
        schema: WireSchema,
        src: np.ndarray,
        dst: np.ndarray,
        data: dict,
        lengths: Optional[np.ndarray],
        bits: Optional[np.ndarray | int],
    ) -> PhaseTraffic:
        """Validate and assemble a columnar instance into phase traffic."""
        channel = build_typed_channel(
            schema, src, dst, data, lengths, bits, self._simulator.num_nodes
        )
        if channel is None:
            return PhaseTraffic(
                src=np.empty(0, dtype=np.int64),
                dst=np.empty(0, dtype=np.int64),
                bits=np.empty(0, dtype=np.int64),
                payloads=_EMPTY_OBJECTS,
            )
        self._validate_endpoints(channel.src, channel.dst)
        return PhaseTraffic(
            src=channel.src,
            dst=channel.dst,
            bits=channel.bits,
            payloads=_EMPTY_OBJECTS,
            channels=(channel,),
        )

    def _validate_endpoints(self, src: np.ndarray, dst: np.ndarray) -> None:
        """Reject self-sends and out-of-range endpoints, vectorized."""
        if not src.shape[0]:
            return
        num_nodes = self._simulator.num_nodes
        self_sends = np.flatnonzero(src == dst)
        if self_sends.shape[0]:
            raise TopologyError(
                f"routing request from node {int(src[self_sends[0]])} to itself"
            )
        out_of_range = np.flatnonzero(
            (src < 0) | (src >= num_nodes) | (dst < 0) | (dst >= num_nodes)
        )
        if out_of_range.shape[0]:
            first = int(out_of_range[0])
            raise TopologyError(
                f"routing request references nodes outside the network: "
                f"{int(src[first])} -> {int(dst[first])}"
            )

    def _deliver_instance(self, traffic: PhaseTraffic, name: str) -> PhaseReport:
        """Charge Lenzen rounds for ``traffic`` and deliver it into inboxes."""
        report = self._account_instance(traffic, name)
        self._simulator.runtime.deliver(traffic)
        return report

    def _account_instance(self, traffic: PhaseTraffic, name: str) -> PhaseReport:
        """Charge Lenzen rounds and record the delivery tallies."""
        num_nodes = self._simulator.num_nodes
        bandwidth_bits = self._simulator.bandwidth.bits_per_round(num_nodes)
        count = traffic.count
        if count == 0:
            rounds = 0
        else:
            units = np.maximum(1, -(-traffic.bits // bandwidth_bits))
            sent_units = np.bincount(traffic.src, weights=units, minlength=num_nodes)
            received_units = np.bincount(
                traffic.dst, weights=units, minlength=num_nodes
            )
            max_units = int(max(sent_units.max(), received_units.max()))
            rounds = self._constant_rounds * max(1, math.ceil(max_units / num_nodes))

        report = PhaseReport(
            name=name,
            rounds=rounds,
            messages=count,
            bits=traffic.total_bits,
            max_link_bits=0,
        )
        metrics = self._simulator.metrics
        metrics.record_phase(report)
        record_deliveries(metrics, traffic)
        return report
