"""Lenzen's routing primitive for the CONGEST clique.

Dolev, Lenzen and Peled's deterministic triangle-listing algorithm (the
``O(n^{1/3} (log n)^{2/3})`` row of Table 1) relies on Lenzen's routing
theorem: *any* routing instance on the congested clique in which every node
is the source of at most ``n`` messages and the destination of at most ``n``
messages (each of ``O(log n)`` bits) can be delivered in ``O(1)`` rounds.

Re-deriving Lenzen's routing schedule is outside the scope of this
reproduction; instead the primitive is modelled faithfully at the level the
baseline needs: a routing instance is delivered in

    ``constant · max over nodes of ⌈ max(sent_i, received_i) / n ⌉``

rounds, where ``sent_i`` / ``received_i`` count ``O(log n)``-bit message
units.  With loads at most ``n`` this is exactly the ``O(1)`` guarantee; with
larger loads the instance is split into batches of ``n`` messages per node,
which is how the guarantee is applied in the literature.  The constant
(default 2) reflects the two balancing phases of Lenzen's scheme and is
configurable so sensitivity can be explored.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import SimulationError, TopologyError
from ..types import NodeId
from .clique import CliqueSimulator
from .metrics import PhaseReport
from .wire import default_bit_size


@dataclass(frozen=True)
class RoutingRequest:
    """One message of a clique routing instance."""

    source: NodeId
    destination: NodeId
    payload: Any
    bits: Optional[int] = None


class LenzenRouter:
    """Deliver batched routing instances on a :class:`CliqueSimulator`.

    Parameters
    ----------
    simulator:
        The clique simulator whose nodes exchange the messages and whose
        metrics are charged.
    constant_rounds:
        The constant factor of Lenzen's O(1) guarantee (default 2).
    """

    def __init__(self, simulator: CliqueSimulator, constant_rounds: int = 2) -> None:
        if not isinstance(simulator, CliqueSimulator):
            raise SimulationError(
                "LenzenRouter requires a CliqueSimulator: Lenzen's routing "
                "theorem only holds for the congested clique"
            )
        if constant_rounds < 1:
            raise SimulationError(
                f"constant_rounds must be at least 1, got {constant_rounds}"
            )
        self._simulator = simulator
        self._constant_rounds = constant_rounds

    def route(self, requests: Sequence[RoutingRequest], name: str = "lenzen-routing") -> PhaseReport:
        """Deliver ``requests`` and charge the corresponding rounds.

        Every request is delivered to its destination node's inbox (the
        destination sees the original source as the sender, as it would after
        Lenzen's relabelling).  The charged round count is

            ``constant · ⌈ max_i max(sent_i, received_i) / n ⌉``

        where message units are ``⌈bits / B⌉`` chunks of the per-round
        bandwidth ``B``.

        Returns
        -------
        PhaseReport
            The cost of the routing phase, also recorded in the simulator's
            metrics.
        """
        num_nodes = self._simulator.num_nodes
        bandwidth_bits = self._simulator.bandwidth.bits_per_round(num_nodes)

        sent_units: Dict[NodeId, int] = {}
        received_units: Dict[NodeId, int] = {}
        deliveries: Dict[NodeId, List[Tuple[NodeId, Any]]] = {}
        total_bits = 0
        per_node_bits: Dict[NodeId, int] = {}

        for request in requests:
            if request.source == request.destination:
                raise TopologyError(
                    f"routing request from node {request.source} to itself"
                )
            if not (0 <= request.source < num_nodes and 0 <= request.destination < num_nodes):
                raise TopologyError(
                    f"routing request references nodes outside the network: "
                    f"{request.source} -> {request.destination}"
                )
            size = (
                request.bits
                if request.bits is not None
                else default_bit_size(request.payload, num_nodes)
            )
            units = max(1, math.ceil(size / bandwidth_bits))
            sent_units[request.source] = sent_units.get(request.source, 0) + units
            received_units[request.destination] = (
                received_units.get(request.destination, 0) + units
            )
            deliveries.setdefault(request.destination, []).append(
                (request.source, request.payload)
            )
            total_bits += size
            per_node_bits[request.destination] = (
                per_node_bits.get(request.destination, 0) + size
            )

        max_units = 0
        for node in set(sent_units) | set(received_units):
            max_units = max(
                max_units, sent_units.get(node, 0), received_units.get(node, 0)
            )
        if max_units == 0:
            rounds = 0
        else:
            rounds = self._constant_rounds * max(1, math.ceil(max_units / num_nodes))

        report = PhaseReport(
            name=name,
            rounds=rounds,
            messages=len(requests),
            bits=total_bits,
            max_link_bits=0,
        )
        self._simulator.metrics.record_phase(report)
        for node, bits in per_node_bits.items():
            self._simulator.metrics.record_delivery(
                node, bits, len(deliveries.get(node, []))
            )
        for context in self._simulator.contexts:
            context._deliver(deliveries.get(context.node_id, []))
        return report
