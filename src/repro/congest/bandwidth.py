"""Bandwidth policies: how many bits fit on one edge in one round.

The CONGEST model allows one ``O(log n)``-bit message per directed edge per
round.  The constant hidden by the O-notation does not affect asymptotics
but does affect measured round counts, so the policy is explicit and
configurable: the default charges ``⌈c · log2 n⌉`` bits per round with
``c = 1``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import SimulationError


@dataclass(frozen=True)
class BandwidthPolicy:
    """Per-edge, per-round bandwidth of ``⌈log_factor · log2 n⌉`` bits.

    Parameters
    ----------
    log_factor:
        The multiplicative constant ``c`` in the ``c log n`` bandwidth.  The
        standard CONGEST model corresponds to any constant; ``1.0`` is the
        default.
    minimum_bits:
        A floor applied after the logarithmic formula.  The default of 1
        keeps the bandwidth exactly ``⌈log2 n⌉`` bits, i.e. one node
        identifier per round — the accounting convention used throughout the
        paper ("sending a set of k identifiers takes k rounds").  Raise it to
        model fatter ``c log n`` channels.
    """

    log_factor: float = 1.0
    minimum_bits: int = 1

    def __post_init__(self) -> None:
        if self.log_factor <= 0:
            raise SimulationError(
                f"log_factor must be positive, got {self.log_factor}"
            )
        if self.minimum_bits < 1:
            raise SimulationError(
                f"minimum_bits must be at least 1, got {self.minimum_bits}"
            )

    def bits_per_round(self, num_nodes: int) -> int:
        """Return the number of bits one directed edge carries per round."""
        if num_nodes < 1:
            raise SimulationError(f"num_nodes must be positive, got {num_nodes}")
        logarithmic = math.ceil(self.log_factor * math.log2(max(2, num_nodes)))
        return max(self.minimum_bits, int(logarithmic))

    def rounds_for_bits(self, total_bits: int, num_nodes: int) -> int:
        """Return how many rounds are needed to push ``total_bits`` over one edge."""
        if total_bits < 0:
            raise SimulationError(f"total_bits must be non-negative, got {total_bits}")
        if total_bits == 0:
            return 0
        per_round = self.bits_per_round(num_nodes)
        return -(-total_bits // per_round)


DEFAULT_BANDWIDTH = BandwidthPolicy()
