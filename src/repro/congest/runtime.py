"""Shared runtime kernel for both CONGEST engines.

The phase-based :class:`~repro.congest.simulator.CongestSimulator` and the
strict :class:`~repro.congest.engine.RoundEngine` execute the same physical
operations — build per-node contexts with independent child RNGs, accumulate
outgoing messages, fan them out to destination inboxes, account the traffic
in :class:`~repro.congest.metrics.ExecutionMetrics`, and enforce a round
budget.  Historically each engine carried its own copy of that machinery as
per-message Python loops over dicts of tuples, which capped the graph sizes
the scaling benchmarks could explore.  This module is the single shared
kernel both engines now sit on:

* :class:`MessagePlane` — the batched send buffer.  Scalar ``send`` calls
  stage into plain lists; the bulk paths (:meth:`NodeContext.bulk_send`,
  :meth:`NodeContext.broadcast_bits`) append whole numpy chunks, so a node
  enqueueing thousands of messages costs O(1) Python operations.  The
  columnar path (:meth:`MessagePlane.extend_columns`) goes further: a whole
  ``(targets, columns)`` batch under a :class:`~repro.congest.wire.WireSchema`
  is staged, sized (``schema.bit_size`` over the batch) and later delivered
  without ever materialising per-message payload objects.
* :class:`PhaseTraffic` — one phase's drained traffic as flat ``(src, dst,
  bits)`` int64 arrays plus an aligned object array of payloads, and — for
  columnar sends — one :class:`TypedChannel` of flattened element columns
  per schema kind.
* :class:`InboxSlice` — a delivered inbox as zero-copy views into the
  phase's destination-sorted arrays; the ``(sender, payload)`` pair list is
  materialized lazily on first read, so phases whose inboxes are only
  partially consumed (BFS frontiers, sparse responders) never pay for the
  rest.  Typed traffic arrives as :class:`TypedInboxView` column views
  (``inbox.columns(schema)``); object payloads for typed messages are only
  decoded if some consumer actually asks for the pair list.
* :class:`DeliveredChannel` / :class:`DeliveredPhase` — the **direct
  exchange** path.  When a batched phase kernel drives the network it does
  not need per-node inboxes at all: :meth:`CongestRuntime.deliver_direct`
  hands the kernel each typed channel's destination-grouped arrays
  (``dst``-sorted senders, grouped element offsets, grouped columns) and
  never materializes an :class:`InboxSlice`, a :class:`TypedInboxView` or
  the per-receiver dict.  Grouping is lazy per schema kind — announcement
  channels nobody reads are never grouped.  Accounting (the flat
  ``src``/``dst``/``bits`` arrays, link-bit maxima,
  :class:`~repro.congest.metrics.ExecutionMetrics`) is shared with the
  inbox path, so both paths charge byte-identical CONGEST costs.
* :class:`CongestRuntime` — context construction, per-node RNG seeding,
  vectorized traffic aggregation (``np.bincount`` over encoded link keys
  instead of per-message dict updates), grouped delivery fan-out, metrics
  recording and round-limit enforcement.  Inbox resets between phases are
  O(touched nodes): the runtime remembers which contexts currently hold a
  non-empty inbox and only clears those.

The engines remain thin *policy* layers: the phase simulator decides how a
phase's round cost is computed from the traffic, and the strict engine adds
its one-message-per-edge / per-message-bandwidth checks as validation hooks
at send time — neither re-implements delivery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import RoundLimitExceededError, SimulationError
from ..graphs.graph import Graph
from ..types import NodeId
from .bandwidth import DEFAULT_BANDWIDTH, BandwidthPolicy
from .metrics import ExecutionMetrics, PhaseReport
from .wire import WireSchema, default_bit_size

#: Shared empty-inbox value.  Immutable, so one instance can reset every
#: context between phases without allocation.
EMPTY_INBOX: Tuple[Tuple[int, Any], ...] = ()

#: Optional instrumentation hook: when set, called with the class name every
#: time a per-node delivery object (:class:`InboxSlice`,
#: :class:`TypedInboxView`) is created.  The allocation regression tests use
#: it to prove the direct-exchange path builds none of them.
_allocation_hook: Optional[Callable[[str], None]] = None


def set_allocation_hook(hook: Optional[Callable[[str], None]]) -> None:
    """Install (or clear, with ``None``) the delivery-allocation hook.

    Testing aid only — the hook must not raise.  Returns nothing; pass the
    previous value back to restore it.
    """
    global _allocation_hook
    _allocation_hook = hook


#: How many :meth:`PhaseArena.advance` ticks a leased buffer stays
#: untouchable.  A buffer taken while staging phase ``P`` may back arrays
#: that the delivered channels of phase ``P`` alias (the sorted-destination
#: zero-copy path), and those are consumed up until phase ``P+1`` is staged
#: — so leases survive the flush that drains ``P`` and the one after it.
_ARENA_RETIRE_DELAY = 2


class PhaseArena:
    """Grow-only buffer pool for the message plane's per-phase arrays.

    Every phase the plane (and the delivery grouping that follows it)
    materialises the same families of flat arrays — message offsets,
    broadcast source/size fills, merged accounting arrays, grouped column
    gathers.  Allocating them fresh each phase made steady-state simulation
    cost O(traffic) in allocator pressure; the arena instead leases slices
    of pooled backing buffers keyed by ``(name, dtype)``:

    * :meth:`take` returns a length-``count`` view over a pooled buffer,
      allocating (with geometric headroom, and firing the allocation hook
      with ``"arena:<name>"``) only when no pooled buffer is big enough —
      so once a workload's phase shape stabilises, phases perform **zero**
      fresh arena allocations, which the regression tests pin via the hook.
    * :meth:`advance` (called once per :meth:`MessagePlane.flush`) retires
      leases that are :data:`_ARENA_RETIRE_DELAY` phases old back into the
      pool.  The delay keeps a phase's arrays alive until every consumer —
      including delivered channels that alias staged arrays — has provably
      moved on, so recycling can never corrupt in-flight views.
    """

    __slots__ = ("_pools", "_inflight", "_clock")

    def __init__(self) -> None:
        self._pools: Dict[Tuple[str, np.dtype], List[np.ndarray]] = {}
        self._inflight: List[Tuple[int, Tuple[str, np.dtype], np.ndarray]] = []
        self._clock = 0

    def take(self, name: str, count: int, dtype=np.int64) -> np.ndarray:
        """Lease an uninitialised length-``count`` array from the pool."""
        key = (name, np.dtype(dtype))
        pool = self._pools.get(key)
        buffer: Optional[np.ndarray] = None
        if pool:
            for index, candidate in enumerate(pool):
                if candidate.shape[0] >= count:
                    buffer = candidate
                    del pool[index]
                    break
        if buffer is None:
            # 25% headroom so a workload whose phases drift slightly in
            # size does not re-grow the pool every phase.
            capacity = max(count, 16)
            buffer = np.empty(capacity + (capacity >> 2), dtype=dtype)
            if _allocation_hook is not None:
                _allocation_hook(f"arena:{name}")
        self._inflight.append((self._clock + _ARENA_RETIRE_DELAY, key, buffer))
        return buffer[:count]

    def advance(self) -> None:
        """End one phase: recycle leases whose retirement clock has passed."""
        self._clock += 1
        if not self._inflight:
            return
        clock = self._clock
        keep: List[Tuple[int, Tuple[str, np.dtype], np.ndarray]] = []
        for lease in self._inflight:
            if lease[0] <= clock:
                self._pools.setdefault(lease[1], []).append(lease[2])
            else:
                keep.append(lease)
        self._inflight = keep


def _arena_empty(
    arena: Optional[PhaseArena], name: str, count: int, dtype=np.int64
) -> np.ndarray:
    """Lease an uninitialised array from ``arena``, or allocate fresh."""
    if arena is None:
        return np.empty(count, dtype=dtype)
    return arena.take(name, count, dtype)


def _arena_full(
    arena: Optional[PhaseArena], name: str, count: int, value: int
) -> np.ndarray:
    """A ``np.full(count, value)`` twin drawing from the arena when given."""
    out = _arena_empty(arena, name, count)
    out[:] = value
    return out


def _arena_concat(
    arena: Optional[PhaseArena], name: str, arrays: List[np.ndarray]
) -> np.ndarray:
    """Concatenate into an arena lease (or fresh memory when ``arena`` is None)."""
    if arena is None:
        return np.concatenate(arrays)
    total = sum(int(array.shape[0]) for array in arrays)
    out = arena.take(name, total, arrays[0].dtype)
    np.concatenate(arrays, out=out)
    return out


def _object_array(payloads: Sequence[Any]) -> np.ndarray:
    """Build a 1-D object array without numpy's nested-sequence inference.

    ``np.asarray`` would try to broadcast tuple payloads into a 2-D array;
    ``np.fromiter`` with an object dtype treats every payload as opaque.
    """
    if isinstance(payloads, np.ndarray) and payloads.dtype == object:
        return payloads
    return np.fromiter(payloads, dtype=object, count=len(payloads))


def repeated_payload(payload: Any, count: int) -> np.ndarray:
    """Return an object array holding ``payload`` ``count`` times (C-speed)."""
    chunk = np.empty(count, dtype=object)
    chunk.fill(payload)
    return chunk


@dataclass(frozen=True)
class TypedChannel:
    """One schema's columnar traffic for a phase.

    ``src[i] -> dst[i]`` is a message of ``bits[i]`` on-wire bits whose
    elements are the rows ``offsets[i]:offsets[i+1]`` of every column in
    ``data`` (the flattened structure-of-arrays layout).
    """

    schema: WireSchema
    src: np.ndarray
    dst: np.ndarray
    bits: np.ndarray
    offsets: np.ndarray
    data: Dict[str, np.ndarray]

    @property
    def count(self) -> int:
        """Number of messages in this channel."""
        return int(self.src.shape[0])

    @property
    def lengths(self) -> np.ndarray:
        """Per-message element counts."""
        return np.diff(self.offsets)


@dataclass(frozen=True)
class PhaseTraffic:
    """One phase's drained traffic in structure-of-arrays form.

    The flat ``src``/``dst``/``bits`` arrays cover *every* message of the
    phase (scalar, bulk and columnar sends alike), so the accounting
    reductions (:func:`max_link_bits`, :func:`record_deliveries`) need no
    special cases.  ``payloads[i]`` is the payload of the ``i``-th message
    for the first ``len(payloads)`` records — the object-payload sends, in
    global send order.  The remaining records belong to the typed
    ``channels``, whose payloads exist only as column blocks until someone
    asks a delivered inbox for its pair list.
    """

    src: np.ndarray
    dst: np.ndarray
    bits: np.ndarray
    payloads: np.ndarray
    channels: Tuple[TypedChannel, ...] = field(default=())

    @property
    def count(self) -> int:
        """Number of messages in this phase."""
        return int(self.src.shape[0])

    @property
    def total_bits(self) -> int:
        """Total on-wire bits across all messages."""
        return int(self.bits.sum()) if self.count else 0


_EMPTY_INT = np.empty(0, dtype=np.int64)
_EMPTY_OBJ = np.empty(0, dtype=object)


def empty_traffic() -> PhaseTraffic:
    """Return a traffic record with no messages."""
    return PhaseTraffic(src=_EMPTY_INT, dst=_EMPTY_INT, bits=_EMPTY_INT, payloads=_EMPTY_OBJ)


def build_typed_channel(
    schema: WireSchema,
    src: NodeId | np.ndarray,
    destinations: np.ndarray | Sequence[NodeId],
    data: Dict[str, np.ndarray],
    lengths: Optional[np.ndarray | Sequence[int]],
    bits: Optional[np.ndarray | Sequence[int] | int],
    num_nodes: int,
    arena: Optional[PhaseArena] = None,
) -> Optional[TypedChannel]:
    """Validate and assemble one columnar batch into a :class:`TypedChannel`.

    The single staging door shared by :meth:`MessagePlane.extend_columns`
    and :meth:`~repro.congest.routing.LenzenRouter.route_columns`: source
    broadcasting, offset construction, column-layout checks and schema
    sizing all live here.  Returns ``None`` for an empty batch.  The
    derived flat arrays (offsets, broadcast source/length/size fills) are
    leased from ``arena`` when one is given; caller-staged column data is
    *never* copied into the arena — contiguous int64 columns pass through
    zero-copy either way.

    Raises
    ------
    SimulationError
        When column names, array lengths or message counts disagree with
        the schema.
    """
    dst = np.ascontiguousarray(destinations, dtype=np.int64)
    count = int(dst.shape[0])
    if count == 0:
        return None
    if np.ndim(src) == 0:
        src_arr = _arena_full(arena, "src", count, int(src))
    else:
        src_arr = np.ascontiguousarray(src, dtype=np.int64)
        if src_arr.shape[0] != count:
            raise SimulationError(
                f"typed batch has {count} destinations but "
                f"{src_arr.shape[0]} sources"
            )
    if lengths is None:
        if schema.fixed_length is None:
            raise SimulationError(
                f"schema {schema.kind!r} is ragged; lengths are required"
            )
        counts = _arena_full(arena, "lengths", count, schema.fixed_length)
    else:
        counts = np.ascontiguousarray(lengths, dtype=np.int64)
        if counts.shape[0] != count:
            raise SimulationError(
                f"typed batch has {count} destinations but "
                f"{counts.shape[0]} lengths"
            )
        if counts.shape[0] and int(counts.min()) < 0:
            raise SimulationError("message lengths must be non-negative")
    offsets = _arena_empty(arena, "offsets", count + 1)
    offsets[0] = 0
    np.cumsum(counts, out=offsets[1:])
    total_elements = int(offsets[-1])
    if set(data) != set(schema.columns):
        raise SimulationError(
            f"schema {schema.kind!r} expects columns {schema.columns}, "
            f"got {tuple(sorted(data))}"
        )
    columns: Dict[str, np.ndarray] = {}
    for name in schema.columns:
        column = np.ascontiguousarray(data[name], dtype=np.int64)
        if column.shape[0] != total_elements:
            raise SimulationError(
                f"column {name!r} has {column.shape[0]} rows; offsets "
                f"imply {total_elements}"
            )
        columns[name] = column
    if bits is None:
        sizes = schema.bit_size(
            counts, num_nodes, out=_arena_empty(arena, "bits", count) if arena else None
        )
    elif np.ndim(bits) == 0:
        sizes = _arena_full(arena, "bits", count, int(bits))
    else:
        sizes = np.ascontiguousarray(bits, dtype=np.int64)
        if sizes.shape[0] != count:
            raise SimulationError(
                f"typed batch has {count} destinations but "
                f"{sizes.shape[0]} sizes"
            )
    return TypedChannel(
        schema=schema, src=src_arr, dst=dst, bits=sizes, offsets=offsets, data=columns
    )


def _merge_typed_segments(
    segments: List[TypedChannel], arena: Optional[PhaseArena] = None
) -> TypedChannel:
    """Concatenate one kind's staged columnar segments into a channel."""
    if len(segments) == 1:
        return segments[0]
    schema = segments[0].schema
    src = _arena_concat(arena, "merge-src", [segment.src for segment in segments])
    dst = _arena_concat(arena, "merge-dst", [segment.dst for segment in segments])
    bits = _arena_concat(arena, "merge-bits", [segment.bits for segment in segments])
    # Per-segment offsets are rebased onto the concatenated element rows.
    lengths = _arena_concat(
        arena, "merge-lengths", [segment.lengths for segment in segments]
    )
    offsets = _arena_empty(arena, "offsets", lengths.shape[0] + 1)
    offsets[0] = 0
    np.cumsum(lengths, out=offsets[1:])
    data = {
        name: _arena_concat(
            arena, f"merge-col:{name}", [segment.data[name] for segment in segments]
        )
        for name in schema.columns
    }
    return TypedChannel(
        schema=schema, src=src, dst=dst, bits=bits, offsets=offsets, data=data
    )


class TypedInboxView:
    """One receiver's slice of a typed channel: zero-copy column views.

    ``senders[i]`` sent the message whose elements are rows
    ``offsets[i]:offsets[i+1]`` of every column — the same flattened layout
    as :class:`TypedChannel`, restricted to this receiver.  Batched phase
    kernels consume these views directly; :meth:`decode_pairs` exists for
    the reference pair-list path and the differential tests.
    """

    __slots__ = ("schema", "senders", "offsets", "data")

    def __init__(
        self,
        schema: WireSchema,
        senders: np.ndarray,
        offsets: np.ndarray,
        data: Dict[str, np.ndarray],
    ) -> None:
        if _allocation_hook is not None:
            _allocation_hook("TypedInboxView")
        self.schema = schema
        self.senders = senders
        self.offsets = offsets
        self.data = data

    @classmethod
    def empty(cls, schema: WireSchema) -> "TypedInboxView":
        """Return an empty view under ``schema`` (zero messages)."""
        return cls(
            schema,
            _EMPTY_INT,
            np.zeros(1, dtype=np.int64),
            {name: _EMPTY_INT for name in schema.columns},
        )

    @property
    def count(self) -> int:
        """Number of messages in the view."""
        return int(self.senders.shape[0])

    @property
    def lengths(self) -> np.ndarray:
        """Per-message element counts."""
        return np.diff(self.offsets)

    def column(self, name: str) -> np.ndarray:
        """Return one flattened element column (all messages concatenated)."""
        return self.data[name]

    def decode_pairs(self) -> List[Tuple[int, Any]]:
        """Materialize the ``(sender, payload)`` list via the schema codec."""
        offsets = self.offsets
        return [
            (
                int(sender),
                self.schema.decode(
                    {
                        name: column[offsets[index] : offsets[index + 1]]
                        for name, column in self.data.items()
                    }
                ),
            )
            for index, sender in enumerate(self.senders.tolist())
        ]


class InboxSlice:
    """One node's delivered inbox, backed by views into the phase arrays.

    Materializing the ``(sender, payload)`` pair list costs one C-level
    ``zip`` per inbox and happens only when the node program actually reads
    its messages.  Typed traffic is attached as per-schema
    :class:`TypedInboxView` blocks: :meth:`columns` hands them to batched
    kernels untouched, while :meth:`pairs` decodes them through the schema
    codec so reference-path consumers see the same ``(sender, payload)``
    messages either way.
    """

    __slots__ = ("_senders", "_payloads", "_pairs", "_typed")

    def __init__(self, senders: np.ndarray, payloads: np.ndarray) -> None:
        if _allocation_hook is not None:
            _allocation_hook("InboxSlice")
        self._senders = senders
        self._payloads = payloads
        self._pairs: Optional[List[Tuple[int, Any]]] = None
        self._typed: Optional[Dict[str, TypedInboxView]] = None

    @classmethod
    def empty(cls) -> "InboxSlice":
        """Return an inbox with no object-payload messages."""
        return cls(_EMPTY_INT, _EMPTY_OBJ)

    def _attach_typed(self, view: TypedInboxView) -> None:
        if self._typed is None:
            self._typed = {}
        self._typed[view.schema.kind] = view
        self._pairs = None

    def columns(self, schema: WireSchema | str) -> TypedInboxView:
        """Return this inbox's typed view for ``schema`` (empty if none).

        Accepts the schema object or its kind string.  The returned view is
        zero-copy over the phase's destination-grouped column blocks.
        """
        kind = schema if isinstance(schema, str) else schema.kind
        if self._typed is not None and kind in self._typed:
            return self._typed[kind]
        if isinstance(schema, str):
            from .wire import schema_for

            schema = schema_for(schema)
        return TypedInboxView.empty(schema)

    def pairs(self) -> List[Tuple[int, Any]]:
        """Return (and cache) the ``(sender, payload)`` list.

        Typed messages are decoded through their schema codec and appended
        after the object-payload messages, grouped by schema kind.
        """
        if self._pairs is None:
            pairs = list(zip(self._senders.tolist(), self._payloads.tolist()))
            if self._typed is not None:
                for view in self._typed.values():
                    pairs.extend(view.decode_pairs())
            self._pairs = pairs
        return self._pairs

    def __len__(self) -> int:
        count = int(self._senders.shape[0])
        if self._typed is not None:
            count += sum(view.count for view in self._typed.values())
        return count

    def __iter__(self):
        return iter(self.pairs())


#: What a context's ``_deliver`` may receive: the shared empty inbox, a lazy
#: slice, or (from legacy/direct callers) an explicit pair list.
Inbox = Union[Tuple[Tuple[int, Any], ...], List[Tuple[int, Any]], InboxSlice]


def inbox_pairs(inbox: Inbox) -> Sequence[Tuple[int, Any]]:
    """Normalise any inbox representation to a sequence of pairs."""
    if isinstance(inbox, InboxSlice):
        return inbox.pairs()
    return inbox


def inbox_columns(inbox: Inbox, schema: WireSchema) -> TypedInboxView:
    """Return the typed view of ``inbox`` for ``schema`` (empty if none).

    Plain pair-list inboxes (the shared empty inbox, legacy explicit lists)
    carry no columnar traffic, so they yield the empty view.
    """
    if isinstance(inbox, InboxSlice):
        return inbox.columns(schema)
    return TypedInboxView.empty(schema)


class MessagePlane:
    """Batched accumulation buffer for one phase's outgoing messages.

    Two append paths share one global record order:

    * scalar sends stage ``(src, dst, bits, payload)`` into Python lists —
      the same per-call cost as the old per-context tuple lists, and
    * bulk sends append whole numpy chunks, bypassing per-message Python
      work entirely.

    ``flush`` concatenates everything into a :class:`PhaseTraffic`, resolves
    default bit sizes, and resets the buffer.
    """

    __slots__ = (
        "num_nodes",
        "arena",
        "_size_of",
        "_scalar_src",
        "_scalar_dst",
        "_scalar_bits",
        "_scalar_payloads",
        "_chunks",
        "_typed",
        "_count",
        "_has_unset",
    )

    def __init__(self, num_nodes: int) -> None:
        self.num_nodes = num_nodes
        # Reusable backing store for the per-phase flat arrays (offsets,
        # source/size fills, merged accounting arrays, grouped gathers).
        # Steady-state phases lease everything from here and allocate
        # nothing fresh — see :class:`PhaseArena`.
        self.arena = PhaseArena()
        self._size_of: Callable[[Any], int] = lambda payload: default_bit_size(
            payload, num_nodes
        )
        self._scalar_src: List[int] = []
        self._scalar_dst: List[int] = []
        self._scalar_bits: List[Optional[int]] = []
        self._scalar_payloads: List[Any] = []
        # Each chunk is (src, dst, bits, payloads, unset) where ``unset`` is
        # a boolean mask marking records whose default size must be resolved
        # at flush time (or None when the whole chunk carries explicit
        # sizes, as bulk appends always do).
        self._chunks: List[
            Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, Optional[np.ndarray]]
        ] = []
        # Columnar segments per schema kind, staged by extend_columns and
        # concatenated into one TypedChannel per kind at flush time.
        self._typed: Dict[str, List[TypedChannel]] = {}
        self._count = 0
        self._has_unset = False

    def __len__(self) -> int:
        return self._count

    @property
    def is_empty(self) -> bool:
        """``True`` when no messages are queued."""
        return self._count == 0

    def append(self, src: NodeId, dst: NodeId, payload: Any, bits: Optional[int]) -> None:
        """Queue one message (the scalar ``send`` path)."""
        self._scalar_src.append(src)
        self._scalar_dst.append(dst)
        self._scalar_bits.append(bits)
        self._scalar_payloads.append(payload)
        self._count += 1

    def extend(
        self,
        src: NodeId,
        destinations: np.ndarray,
        payloads: Sequence[Any] | np.ndarray,
        bits: np.ndarray,
    ) -> None:
        """Queue a whole batch of messages from one source (the bulk path).

        ``destinations`` and ``bits`` must be int64 arrays of equal length
        and ``payloads`` a sequence (or object array) of the same length;
        callers (:meth:`~repro.congest.node.NodeContext.bulk_send`) validate
        before appending.
        """
        count = int(destinations.shape[0])
        if count == 0:
            return
        self._seal_scalars()
        self._chunks.append(
            (
                np.full(count, src, dtype=np.int64),
                destinations,
                bits,
                _object_array(payloads),
                None,
            )
        )
        self._count += count

    def extend_columns(
        self,
        schema: WireSchema,
        src: NodeId | np.ndarray,
        destinations: np.ndarray | Sequence[NodeId],
        data: Dict[str, np.ndarray],
        lengths: Optional[np.ndarray | Sequence[int]] = None,
        bits: Optional[np.ndarray | Sequence[int] | int] = None,
    ) -> None:
        """Queue a whole columnar batch of typed messages (the schema path).

        Parameters
        ----------
        schema:
            The wire schema every message of the batch conforms to.
        src:
            The sending node, or one int64 sender per message.
        destinations:
            One receiving node per message.
        data:
            The flattened element columns, one int64 array per schema
            column; message ``i`` owns rows ``offsets[i]:offsets[i+1]``.
        lengths:
            Per-message element counts.  Defaults to the schema's
            ``fixed_length`` when it has one.
        bits:
            Optional explicit per-message (or scalar) sizes, overriding
            ``schema.bit_size(lengths, n)``.

        Raises
        ------
        SimulationError
            When column names or array lengths disagree with the schema.
        """
        channel = build_typed_channel(
            schema, src, destinations, data, lengths, bits, self.num_nodes,
            arena=self.arena,
        )
        if channel is None:
            return
        self._typed.setdefault(schema.kind, []).append(channel)
        self._count += channel.count

    def _seal_scalars(self) -> None:
        """Convert staged scalar sends into one chunk, preserving order."""
        if not self._scalar_src:
            return
        # One pass over the staged sizes fills both the value array and the
        # unset mask (instead of walking the list twice with np.fromiter).
        scalar_bits = self._scalar_bits
        count = len(scalar_bits)
        bits = np.zeros(count, dtype=np.int64)
        unset: Optional[np.ndarray] = np.zeros(count, dtype=bool)
        any_unset = False
        for index, size in enumerate(scalar_bits):
            if size is None:
                unset[index] = True
                any_unset = True
            else:
                bits[index] = size
        if any_unset:
            self._has_unset = True
        else:
            unset = None
        self._chunks.append(
            (
                np.array(self._scalar_src, dtype=np.int64),
                np.array(self._scalar_dst, dtype=np.int64),
                bits,
                _object_array(self._scalar_payloads),
                unset,
            )
        )
        self._scalar_src = []
        self._scalar_dst = []
        self._scalar_bits = []
        self._scalar_payloads = []

    def flush(self) -> PhaseTraffic:
        """Drain the buffer into a :class:`PhaseTraffic` and reset it.

        Default bit sizes are resolved here (not at send time) so size
        errors surface when the phase runs, matching the engines' historical
        behaviour.

        Raises
        ------
        SimulationError
            If any message carries a negative size.
        """
        if self._count == 0:
            self.arena.advance()
            return empty_traffic()
        self._seal_scalars()
        if not self._chunks:
            src, dst, bits, payloads, unset = (
                _EMPTY_INT,
                _EMPTY_INT,
                _EMPTY_INT,
                _EMPTY_OBJ,
                None,
            )
        elif len(self._chunks) == 1:
            src, dst, bits, payloads, unset = self._chunks[0]
        else:
            src = np.concatenate([chunk[0] for chunk in self._chunks])
            dst = np.concatenate([chunk[1] for chunk in self._chunks])
            bits = np.concatenate([chunk[2] for chunk in self._chunks])
            payloads = np.concatenate([chunk[3] for chunk in self._chunks])
            if self._has_unset:
                unset = np.concatenate(
                    [
                        chunk[4]
                        if chunk[4] is not None
                        else np.zeros(chunk[0].shape[0], dtype=bool)
                        for chunk in self._chunks
                    ]
                )
            else:
                unset = None
        channels = tuple(
            _merge_typed_segments(segments, self.arena)
            for segments in self._typed.values()
        )
        self._chunks = []
        self._typed = {}
        self._count = 0
        self._has_unset = False

        if unset is not None:
            size_of = self._size_of
            for index in np.flatnonzero(unset).tolist():
                bits[index] = size_of(payloads[index])
        if channels:
            # The flat record arrays cover every message; typed channels are
            # appended after the object-payload block, whose length payloads
            # still tracks.  A typed-only phase with a single channel (the
            # common batched-kernel shape) reuses the channel arrays as the
            # flat accounting arrays outright — no concatenation copies.
            if src.shape[0] == 0 and len(channels) == 1:
                src = channels[0].src
                dst = channels[0].dst
                bits = channels[0].bits
            else:
                arena = self.arena
                src = _arena_concat(
                    arena, "flat-src", [src] + [channel.src for channel in channels]
                )
                dst = _arena_concat(
                    arena, "flat-dst", [dst] + [channel.dst for channel in channels]
                )
                bits = _arena_concat(
                    arena, "flat-bits", [bits] + [channel.bits for channel in channels]
                )
        if bits.shape[0] and int(bits.min()) < 0:
            raise SimulationError(
                f"message size must be non-negative, got {int(bits.min())}"
            )
        self.arena.advance()
        return PhaseTraffic(
            src=src, dst=dst, bits=bits, payloads=payloads, channels=channels
        )


def _group_starts(dst_sorted: np.ndarray) -> Tuple[List[int], List[int], List[int]]:
    """Return (group starts, group ends, receivers) of a dst-sorted array."""
    starts = np.flatnonzero(
        np.concatenate(([True], dst_sorted[1:] != dst_sorted[:-1]))
    )
    start_list = starts.tolist()
    bounds = start_list[1:] + [int(dst_sorted.shape[0])]
    receivers = dst_sorted[starts].tolist()
    return start_list, bounds, receivers


@dataclass(frozen=True)
class DeliveredChannel:
    """One typed channel reordered into destination groups.

    The direct-exchange consumable: batched phase kernels read these arrays
    in place instead of per-node :class:`TypedInboxView` objects.  Message
    ``i`` (rows grouped so ``dst`` is ascending, ties in staged order) was
    sent by ``src[i]`` and owns element rows ``offsets[i]:offsets[i+1]`` of
    every column in ``data``.  The messages of ``receivers[g]`` are rows
    ``message_bounds[g]:message_bounds[g+1]``.
    """

    schema: WireSchema
    receivers: np.ndarray
    message_bounds: np.ndarray
    src: np.ndarray
    dst: np.ndarray
    offsets: np.ndarray
    data: Dict[str, np.ndarray]

    @classmethod
    def empty(cls, schema: WireSchema) -> "DeliveredChannel":
        """Return a delivered channel with no messages."""
        return cls(
            schema=schema,
            receivers=_EMPTY_INT,
            message_bounds=np.zeros(1, dtype=np.int64),
            src=_EMPTY_INT,
            dst=_EMPTY_INT,
            offsets=np.zeros(1, dtype=np.int64),
            data={name: _EMPTY_INT for name in schema.columns},
        )

    @property
    def count(self) -> int:
        """Number of messages in the channel."""
        return int(self.src.shape[0])

    @property
    def lengths(self) -> np.ndarray:
        """Per-message element counts (grouped order)."""
        return np.diff(self.offsets)

    def element_receivers(self) -> np.ndarray:
        """Per-element receiving node (ascending, aligned with the columns)."""
        return np.repeat(self.dst, self.lengths)

    def element_senders(self) -> np.ndarray:
        """Per-element sending node (aligned with the columns)."""
        return np.repeat(self.src, self.lengths)

    def view_for(self, which: int) -> TypedInboxView:
        """Build the ``which``-th receiver's :class:`TypedInboxView` slice.

        Only the inbox delivery path calls this; direct-exchange consumers
        read the grouped arrays without per-receiver objects.
        """
        start = int(self.message_bounds[which])
        end = int(self.message_bounds[which + 1])
        element_start = int(self.offsets[start])
        return TypedInboxView(
            self.schema,
            self.src[start:end],
            self.offsets[start : end + 1] - element_start,
            {
                name: column[element_start : int(self.offsets[end])]
                for name, column in self.data.items()
            },
        )


def group_channel(
    channel: TypedChannel, arena: Optional[PhaseArena] = None
) -> DeliveredChannel:
    """Reorder one typed channel into destination groups.

    The flattened element rows are gathered once into destination order
    (one vectorized permutation); when the staged destinations are already
    sorted (single-receiver batches, pre-grouped routing instances) the
    staged arrays are reused as-is with no copies.  The gathered arrays of
    the unsorted path are leased from ``arena`` when one is given.
    """
    if channel.count == 0:
        return DeliveredChannel.empty(channel.schema)
    if channel.count == 1 or bool((channel.dst[1:] >= channel.dst[:-1]).all()):
        dst_sorted = channel.dst
        src_sorted = channel.src
        grouped_offsets = channel.offsets
        grouped_data = channel.data
    else:
        order = np.argsort(channel.dst, kind="stable")
        dst_sorted = _arena_empty(arena, "grouped-dst", channel.count)
        np.take(channel.dst, order, out=dst_sorted)
        src_sorted = _arena_empty(arena, "grouped-src", channel.count)
        np.take(channel.src, order, out=src_sorted)
        lengths_sorted = np.diff(channel.offsets)[order]
        grouped_offsets = _arena_empty(arena, "offsets", channel.count + 1)
        grouped_offsets[0] = 0
        np.cumsum(lengths_sorted, out=grouped_offsets[1:])
        total_elements = int(grouped_offsets[-1])
        if total_elements:
            # element_perm[row] = the source row of the grouped element at
            # ``row``: each message's block start is shifted from its staged
            # position to its grouped position, then walked linearly.
            element_perm = np.repeat(
                channel.offsets[:-1][order] - grouped_offsets[:-1], lengths_sorted
            ) + np.arange(total_elements, dtype=np.int64)
            grouped_data = {}
            for name, column in channel.data.items():
                gathered = _arena_empty(arena, f"grouped-col:{name}", total_elements)
                np.take(column, element_perm, out=gathered)
                grouped_data[name] = gathered
        else:
            grouped_data = {name: _EMPTY_INT for name in channel.schema.columns}
    starts = np.flatnonzero(
        np.concatenate(([True], dst_sorted[1:] != dst_sorted[:-1]))
    )
    message_bounds = np.concatenate(
        (starts, np.array([dst_sorted.shape[0]], dtype=np.int64))
    )
    return DeliveredChannel(
        schema=channel.schema,
        receivers=dst_sorted[starts],
        message_bounds=message_bounds,
        src=src_sorted,
        dst=dst_sorted,
        offsets=grouped_offsets,
        data=grouped_data,
    )


def _deliver_channel(slices: Dict[int, InboxSlice], channel: TypedChannel) -> None:
    """Group one typed channel by destination and attach per-receiver views."""
    if channel.count == 0:
        return
    grouped = group_channel(channel)
    for which, receiver in enumerate(grouped.receivers.tolist()):
        inbox = slices.get(receiver)
        if inbox is None:
            inbox = InboxSlice.empty()
            slices[receiver] = inbox
        inbox._attach_typed(grouped.view_for(which))


class DeliveredPhase:
    """One direct-exchange phase's typed traffic, grouped lazily per schema.

    Handed to batched phase kernels by
    :meth:`~repro.congest.simulator.CongestSimulator.exchange_phase`.
    Channels are grouped by destination only when :meth:`channel` is first
    asked for them — announcement phases whose traffic no kernel reads
    (A3's ``in_X``/``in_U`` flags, A2's hash descriptors) never pay the
    grouping permutation at all.
    """

    __slots__ = ("report", "_staged", "_grouped", "_arena")

    def __init__(
        self,
        report: PhaseReport,
        channels: Tuple[TypedChannel, ...],
        arena: Optional[PhaseArena] = None,
    ) -> None:
        self.report = report
        self._staged: Dict[str, TypedChannel] = {
            channel.schema.kind: channel for channel in channels
        }
        self._grouped: Dict[str, DeliveredChannel] = {}
        self._arena = arena

    def channel(self, schema: WireSchema | str) -> DeliveredChannel:
        """Return (grouping on first use) the delivered channel for ``schema``.

        Unknown kinds yield an empty channel, mirroring
        :meth:`InboxSlice.columns` on the inbox path.
        """
        kind = schema if isinstance(schema, str) else schema.kind
        grouped = self._grouped.get(kind)
        if grouped is not None:
            return grouped
        staged = self._staged.get(kind)
        if staged is None:
            if isinstance(schema, str):
                from .wire import schema_for

                schema = schema_for(schema)
            grouped = DeliveredChannel.empty(schema)
        else:
            grouped = group_channel(staged, self._arena)
        self._grouped[kind] = grouped
        return grouped


def _untyped_slices(traffic: PhaseTraffic) -> Dict[int, InboxSlice]:
    """Group the object-payload block by destination into inbox slices."""
    slices: Dict[int, InboxSlice] = {}
    untyped = int(traffic.payloads.shape[0])
    if untyped:
        dst_block = traffic.dst[:untyped]
        order = np.argsort(dst_block, kind="stable")
        dst_sorted = dst_block[order]
        src_sorted = traffic.src[:untyped][order]
        payload_sorted = traffic.payloads[order]
        start_list, bounds, receivers = _group_starts(dst_sorted)
        for which, start in enumerate(start_list):
            end = bounds[which]
            slices[receivers[which]] = InboxSlice(
                src_sorted[start:end], payload_sorted[start:end]
            )
    return slices


def deliver_traffic(
    contexts: Sequence[Any],
    traffic: PhaseTraffic,
    dirty: Optional[Sequence[Any]] = None,
) -> List[Any]:
    """Replace every context's inbox with this phase's deliveries.

    One stable argsort groups the object-payload records by destination and
    one more groups each typed channel; each receiving context gets an
    :class:`InboxSlice` over zero-copy views (column views attached for the
    typed traffic), and everyone else the shared empty inbox (inboxes never
    carry over between phases).  Works for any context type exposing
    ``_deliver``.

    ``dirty`` is the list of contexts still holding a non-empty inbox from
    the previous phase; when given, only those are reset — O(touched
    nodes), not O(n).  Callers without bookkeeping (``None``) get the
    legacy reset of every context.  Returns the contexts that now hold a
    non-empty inbox, i.e. the ``dirty`` list for the next phase.
    """
    for context in contexts if dirty is None else dirty:
        context._deliver(EMPTY_INBOX)
    if traffic.count == 0:
        return []
    slices = _untyped_slices(traffic)
    for channel in traffic.channels:
        _deliver_channel(slices, channel)
    receiving = []
    for receiver, inbox in slices.items():
        context = contexts[receiver]
        context._deliver(inbox)
        receiving.append(context)
    return receiving


def record_deliveries(metrics: ExecutionMetrics, traffic: PhaseTraffic) -> None:
    """Fold per-node received bits/messages into ``metrics`` in bulk."""
    if traffic.count == 0:
        return
    num_nodes = int(traffic.dst.max()) + 1
    received_msgs = np.bincount(traffic.dst, minlength=num_nodes)
    received_bits = np.bincount(traffic.dst, weights=traffic.bits, minlength=num_nodes)
    metrics.record_deliveries_bulk(
        np.flatnonzero(received_msgs).tolist(),
        received_bits,
        received_msgs,
    )


def max_link_bits(traffic: PhaseTraffic, num_nodes: int) -> int:
    """Return the maximum total bits queued on any directed link.

    Links are encoded as ``src * n + dst`` keys.  When the occupied key
    range is small relative to the message count, one dense ``np.bincount``
    does the whole reduction; otherwise (sparse traffic on a large network,
    where the histogram would dwarf the records) it falls back to
    sort-and-segment, still without any per-message Python work.
    """
    if traffic.count == 0:
        return 0
    keys = traffic.src * np.int64(num_nodes) + traffic.dst
    key_span = int(keys.max()) + 1
    if key_span <= 4 * max(traffic.count, 4096):
        per_link = np.bincount(keys, weights=traffic.bits)
        return int(per_link.max())
    order = np.argsort(keys, kind="stable")
    sorted_bits = traffic.bits[order]
    sorted_keys = keys[order]
    starts = np.flatnonzero(
        np.concatenate(([True], sorted_keys[1:] != sorted_keys[:-1]))
    )
    per_link = np.add.reduceat(sorted_bits, starts)
    return int(per_link.max())


def spawn_node_rngs(
    num_nodes: int, seed: Optional[int | np.random.Generator]
) -> List[np.random.Generator]:
    """Return one independent, reproducible child generator per node."""
    root_rng = (
        seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    )
    child_seeds = root_rng.integers(0, 2**63 - 1, size=num_nodes)
    return [np.random.default_rng(int(child_seeds[node])) for node in range(num_nodes)]


class CongestRuntime:
    """The execution kernel shared by the phase and strict engines.

    Owns the graph, bandwidth policy, metrics, round budget, the message
    plane, and the contexts (built through :meth:`build_contexts` so each
    engine can supply its own context type).
    """

    __slots__ = (
        "graph",
        "bandwidth",
        "round_limit",
        "metrics",
        "plane",
        "contexts",
        "_dirty",
    )

    def __init__(
        self,
        graph: Graph,
        bandwidth: BandwidthPolicy = DEFAULT_BANDWIDTH,
        round_limit: Optional[int] = None,
    ) -> None:
        if graph.num_nodes < 1:
            raise SimulationError("cannot simulate an empty network")
        self.graph = graph
        self.bandwidth = bandwidth
        self.round_limit = round_limit
        self.metrics = ExecutionMetrics()
        self.plane = MessagePlane(graph.num_nodes)
        self.contexts: List[Any] = []
        # Contexts currently holding a non-empty inbox: the next delivery
        # resets exactly these, so between-phase resets cost O(touched
        # nodes) instead of O(n).
        self._dirty: List[Any] = []

    def build_contexts(
        self,
        seed: Optional[int | np.random.Generator],
        factory: Callable[[NodeId, np.random.Generator], Any],
    ) -> List[Any]:
        """Build one context per node with independent child RNGs."""
        rngs = spawn_node_rngs(self.graph.num_nodes, seed)
        self.contexts = [factory(node, rngs[node]) for node in self.graph.nodes()]
        return self.contexts

    def collect_traffic(self) -> PhaseTraffic:
        """Drain the message plane for this phase."""
        return self.plane.flush()

    def deliver(self, traffic: PhaseTraffic) -> None:
        """Deliver ``traffic`` into per-node inboxes (O(touched) resets)."""
        self._dirty = deliver_traffic(self.contexts, traffic, dirty=self._dirty)

    def deliver_direct(self, traffic: PhaseTraffic) -> Tuple[TypedChannel, ...]:
        """Clear stale inboxes and hand the typed channels back untouched.

        The direct-exchange delivery: no :class:`InboxSlice` dict, no
        per-receiver views — the caller consumes the channels through a
        :class:`DeliveredPhase` (grouping lazily per schema).  Object
        payloads, which the batched kernels never send, still arrive as
        per-node inboxes so ``received()`` keeps working on mixed phases.
        """
        for context in self._dirty:
            context._deliver(EMPTY_INBOX)
        self._dirty = []
        if int(traffic.payloads.shape[0]):
            slices = _untyped_slices(traffic)
            for receiver, inbox in slices.items():
                context = self.contexts[receiver]
                context._deliver(inbox)
                self._dirty.append(context)
        return traffic.channels

    def _record_phase(
        self, name: str, rounds: int, traffic: PhaseTraffic, link_bits: int
    ) -> PhaseReport:
        """Record one phase's cost and per-node delivery tallies."""
        report = PhaseReport(
            name=name,
            rounds=rounds,
            messages=traffic.count,
            bits=traffic.total_bits,
            max_link_bits=link_bits,
        )
        self.metrics.record_phase(report)
        record_deliveries(self.metrics, traffic)
        return report

    def complete_phase(
        self, name: str, rounds: int, traffic: PhaseTraffic, link_bits: int
    ) -> PhaseReport:
        """Record one phase's cost, deliver its traffic, enforce the budget."""
        report = self._record_phase(name, rounds, traffic, link_bits)
        self.deliver(traffic)
        self.enforce_round_limit()
        return report

    def complete_phase_direct(
        self, name: str, rounds: int, traffic: PhaseTraffic, link_bits: int
    ) -> DeliveredPhase:
        """Direct-exchange twin of :meth:`complete_phase`.

        Identical accounting (phase report, delivery tallies, round-budget
        enforcement — in the same order, so budget exhaustion surfaces at
        the same point of the execution), but the typed traffic is returned
        as a :class:`DeliveredPhase` instead of being fanned out into
        per-node inboxes.
        """
        report = self._record_phase(name, rounds, traffic, link_bits)
        channels = self.deliver_direct(traffic)
        self.enforce_round_limit()
        return DeliveredPhase(report, channels, arena=self.plane.arena)

    def exchange(self) -> PhaseTraffic:
        """Deliver the queued traffic without phase/round accounting.

        The strict engine calls this once per round; it accounts the rounds
        itself (one per exchange) and records a single phase report at the
        end of the run.
        """
        traffic = self.collect_traffic()
        record_deliveries(self.metrics, traffic)
        self.deliver(traffic)
        return traffic

    def enforce_round_limit(self) -> None:
        """Raise when the cumulative round count exceeds the budget."""
        if self.round_limit is not None and self.metrics.total_rounds > self.round_limit:
            raise RoundLimitExceededError(
                f"round budget of {self.round_limit} exceeded "
                f"(now at {self.metrics.total_rounds} rounds)"
            )
