"""Shared runtime kernel for both CONGEST engines.

The phase-based :class:`~repro.congest.simulator.CongestSimulator` and the
strict :class:`~repro.congest.engine.RoundEngine` execute the same physical
operations — build per-node contexts with independent child RNGs, accumulate
outgoing messages, fan them out to destination inboxes, account the traffic
in :class:`~repro.congest.metrics.ExecutionMetrics`, and enforce a round
budget.  Historically each engine carried its own copy of that machinery as
per-message Python loops over dicts of tuples, which capped the graph sizes
the scaling benchmarks could explore.  This module is the single shared
kernel both engines now sit on:

* :class:`MessagePlane` — the batched send buffer.  Scalar ``send`` calls
  stage into plain lists; the bulk paths (:meth:`NodeContext.bulk_send`,
  :meth:`NodeContext.broadcast_bits`) append whole numpy chunks, so a node
  enqueueing thousands of messages costs O(1) Python operations.
* :class:`PhaseTraffic` — one phase's drained traffic as flat ``(src, dst,
  bits)`` int64 arrays plus an aligned object array of payloads.
* :class:`InboxSlice` — a delivered inbox as zero-copy views into the
  phase's destination-sorted arrays; the ``(sender, payload)`` pair list is
  materialized lazily on first read, so phases whose inboxes are only
  partially consumed (BFS frontiers, sparse responders) never pay for the
  rest.
* :class:`CongestRuntime` — context construction, per-node RNG seeding,
  vectorized traffic aggregation (``np.bincount`` over encoded link keys
  instead of per-message dict updates), grouped delivery fan-out, metrics
  recording and round-limit enforcement.

The engines remain thin *policy* layers: the phase simulator decides how a
phase's round cost is computed from the traffic, and the strict engine adds
its one-message-per-edge / per-message-bandwidth checks as validation hooks
at send time — neither re-implements delivery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import RoundLimitExceededError, SimulationError
from ..graphs.graph import Graph
from ..types import NodeId
from .bandwidth import DEFAULT_BANDWIDTH, BandwidthPolicy
from .metrics import ExecutionMetrics, PhaseReport
from .wire import default_bit_size

#: Shared empty-inbox value.  Immutable, so one instance can reset every
#: context between phases without allocation.
EMPTY_INBOX: Tuple[Tuple[int, Any], ...] = ()



def _object_array(payloads: Sequence[Any]) -> np.ndarray:
    """Build a 1-D object array without numpy's nested-sequence inference.

    ``np.asarray`` would try to broadcast tuple payloads into a 2-D array;
    ``np.fromiter`` with an object dtype treats every payload as opaque.
    """
    if isinstance(payloads, np.ndarray) and payloads.dtype == object:
        return payloads
    return np.fromiter(payloads, dtype=object, count=len(payloads))


def repeated_payload(payload: Any, count: int) -> np.ndarray:
    """Return an object array holding ``payload`` ``count`` times (C-speed)."""
    chunk = np.empty(count, dtype=object)
    chunk.fill(payload)
    return chunk


@dataclass(frozen=True)
class PhaseTraffic:
    """One phase's drained traffic in structure-of-arrays form.

    ``payloads[i]`` is the payload of the message ``src[i] -> dst[i]`` of
    on-wire size ``bits[i]``; records appear in global send order.
    """

    src: np.ndarray
    dst: np.ndarray
    bits: np.ndarray
    payloads: np.ndarray

    @property
    def count(self) -> int:
        """Number of messages in this phase."""
        return int(self.src.shape[0])

    @property
    def total_bits(self) -> int:
        """Total on-wire bits across all messages."""
        return int(self.bits.sum()) if self.count else 0


_EMPTY_INT = np.empty(0, dtype=np.int64)
_EMPTY_OBJ = np.empty(0, dtype=object)


def empty_traffic() -> PhaseTraffic:
    """Return a traffic record with no messages."""
    return PhaseTraffic(src=_EMPTY_INT, dst=_EMPTY_INT, bits=_EMPTY_INT, payloads=_EMPTY_OBJ)


class InboxSlice:
    """One node's delivered inbox, backed by views into the phase arrays.

    Materializing the ``(sender, payload)`` pair list costs one C-level
    ``zip`` per inbox and happens only when the node program actually reads
    its messages.
    """

    __slots__ = ("_senders", "_payloads", "_pairs")

    def __init__(self, senders: np.ndarray, payloads: np.ndarray) -> None:
        self._senders = senders
        self._payloads = payloads
        self._pairs: Optional[List[Tuple[int, Any]]] = None

    def pairs(self) -> List[Tuple[int, Any]]:
        """Return (and cache) the ``(sender, payload)`` list."""
        if self._pairs is None:
            self._pairs = list(zip(self._senders.tolist(), self._payloads.tolist()))
        return self._pairs

    def __len__(self) -> int:
        return int(self._senders.shape[0])

    def __iter__(self):
        return iter(self.pairs())


#: What a context's ``_deliver`` may receive: the shared empty inbox, a lazy
#: slice, or (from legacy/direct callers) an explicit pair list.
Inbox = Union[Tuple[Tuple[int, Any], ...], List[Tuple[int, Any]], InboxSlice]


def inbox_pairs(inbox: Inbox) -> Sequence[Tuple[int, Any]]:
    """Normalise any inbox representation to a sequence of pairs."""
    if isinstance(inbox, InboxSlice):
        return inbox.pairs()
    return inbox


class MessagePlane:
    """Batched accumulation buffer for one phase's outgoing messages.

    Two append paths share one global record order:

    * scalar sends stage ``(src, dst, bits, payload)`` into Python lists —
      the same per-call cost as the old per-context tuple lists, and
    * bulk sends append whole numpy chunks, bypassing per-message Python
      work entirely.

    ``flush`` concatenates everything into a :class:`PhaseTraffic`, resolves
    default bit sizes, and resets the buffer.
    """

    __slots__ = (
        "num_nodes",
        "_size_of",
        "_scalar_src",
        "_scalar_dst",
        "_scalar_bits",
        "_scalar_payloads",
        "_chunks",
        "_count",
        "_has_unset",
    )

    def __init__(self, num_nodes: int) -> None:
        self.num_nodes = num_nodes
        self._size_of: Callable[[Any], int] = lambda payload: default_bit_size(
            payload, num_nodes
        )
        self._scalar_src: List[int] = []
        self._scalar_dst: List[int] = []
        self._scalar_bits: List[Optional[int]] = []
        self._scalar_payloads: List[Any] = []
        # Each chunk is (src, dst, bits, payloads, unset) where ``unset`` is
        # a boolean mask marking records whose default size must be resolved
        # at flush time (or None when the whole chunk carries explicit
        # sizes, as bulk appends always do).
        self._chunks: List[
            Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, Optional[np.ndarray]]
        ] = []
        self._count = 0
        self._has_unset = False

    def __len__(self) -> int:
        return self._count

    @property
    def is_empty(self) -> bool:
        """``True`` when no messages are queued."""
        return self._count == 0

    def append(self, src: NodeId, dst: NodeId, payload: Any, bits: Optional[int]) -> None:
        """Queue one message (the scalar ``send`` path)."""
        self._scalar_src.append(src)
        self._scalar_dst.append(dst)
        self._scalar_bits.append(bits)
        self._scalar_payloads.append(payload)
        self._count += 1

    def extend(
        self,
        src: NodeId,
        destinations: np.ndarray,
        payloads: Sequence[Any] | np.ndarray,
        bits: np.ndarray,
    ) -> None:
        """Queue a whole batch of messages from one source (the bulk path).

        ``destinations`` and ``bits`` must be int64 arrays of equal length
        and ``payloads`` a sequence (or object array) of the same length;
        callers (:meth:`~repro.congest.node.NodeContext.bulk_send`) validate
        before appending.
        """
        count = int(destinations.shape[0])
        if count == 0:
            return
        self._seal_scalars()
        self._chunks.append(
            (
                np.full(count, src, dtype=np.int64),
                destinations,
                bits,
                _object_array(payloads),
                None,
            )
        )
        self._count += count

    def _seal_scalars(self) -> None:
        """Convert staged scalar sends into one chunk, preserving order."""
        if not self._scalar_src:
            return
        scalar_bits = self._scalar_bits
        bits = np.fromiter(
            (size if size is not None else 0 for size in scalar_bits),
            dtype=np.int64,
            count=len(scalar_bits),
        )
        unset = np.fromiter(
            (size is None for size in scalar_bits),
            dtype=bool,
            count=len(scalar_bits),
        )
        if unset.any():
            self._has_unset = True
        else:
            unset = None
        self._chunks.append(
            (
                np.array(self._scalar_src, dtype=np.int64),
                np.array(self._scalar_dst, dtype=np.int64),
                bits,
                _object_array(self._scalar_payloads),
                unset,
            )
        )
        self._scalar_src = []
        self._scalar_dst = []
        self._scalar_bits = []
        self._scalar_payloads = []

    def flush(self) -> PhaseTraffic:
        """Drain the buffer into a :class:`PhaseTraffic` and reset it.

        Default bit sizes are resolved here (not at send time) so size
        errors surface when the phase runs, matching the engines' historical
        behaviour.

        Raises
        ------
        SimulationError
            If any message carries a negative size.
        """
        if self._count == 0:
            return empty_traffic()
        self._seal_scalars()
        if len(self._chunks) == 1:
            src, dst, bits, payloads, unset = self._chunks[0]
        else:
            src = np.concatenate([chunk[0] for chunk in self._chunks])
            dst = np.concatenate([chunk[1] for chunk in self._chunks])
            bits = np.concatenate([chunk[2] for chunk in self._chunks])
            payloads = np.concatenate([chunk[3] for chunk in self._chunks])
            if self._has_unset:
                unset = np.concatenate(
                    [
                        chunk[4]
                        if chunk[4] is not None
                        else np.zeros(chunk[0].shape[0], dtype=bool)
                        for chunk in self._chunks
                    ]
                )
            else:
                unset = None
        self._chunks = []
        self._count = 0
        self._has_unset = False

        if unset is not None:
            size_of = self._size_of
            for index in np.flatnonzero(unset).tolist():
                bits[index] = size_of(payloads[index])
        if bits.shape[0] and int(bits.min()) < 0:
            raise SimulationError(
                f"message size must be non-negative, got {int(bits.min())}"
            )
        return PhaseTraffic(src=src, dst=dst, bits=bits, payloads=payloads)


def deliver_traffic(contexts: Sequence[Any], traffic: PhaseTraffic) -> None:
    """Replace every context's inbox with this phase's deliveries.

    One stable argsort groups the flat record arrays by destination; each
    receiving context gets an :class:`InboxSlice` over zero-copy views, and
    everyone else the shared empty inbox (inboxes never carry over between
    phases).  Works for any context type exposing ``_deliver``.
    """
    for context in contexts:
        context._deliver(EMPTY_INBOX)
    if traffic.count == 0:
        return
    order = np.argsort(traffic.dst, kind="stable")
    dst_sorted = traffic.dst[order]
    src_sorted = traffic.src[order]
    payload_sorted = traffic.payloads[order]
    starts = np.flatnonzero(
        np.concatenate(([True], dst_sorted[1:] != dst_sorted[:-1]))
    )
    start_list = starts.tolist()
    bounds = start_list[1:] + [int(dst_sorted.shape[0])]
    receivers = dst_sorted[starts].tolist()
    for which, start in enumerate(start_list):
        end = bounds[which]
        contexts[receivers[which]]._deliver(
            InboxSlice(src_sorted[start:end], payload_sorted[start:end])
        )


def record_deliveries(metrics: ExecutionMetrics, traffic: PhaseTraffic) -> None:
    """Fold per-node received bits/messages into ``metrics`` in bulk."""
    if traffic.count == 0:
        return
    num_nodes = int(traffic.dst.max()) + 1
    received_msgs = np.bincount(traffic.dst, minlength=num_nodes)
    received_bits = np.bincount(traffic.dst, weights=traffic.bits, minlength=num_nodes)
    metrics.record_deliveries_bulk(
        np.flatnonzero(received_msgs).tolist(),
        received_bits,
        received_msgs,
    )


def max_link_bits(traffic: PhaseTraffic, num_nodes: int) -> int:
    """Return the maximum total bits queued on any directed link.

    Links are encoded as ``src * n + dst`` keys.  When the occupied key
    range is small relative to the message count, one dense ``np.bincount``
    does the whole reduction; otherwise (sparse traffic on a large network,
    where the histogram would dwarf the records) it falls back to
    sort-and-segment, still without any per-message Python work.
    """
    if traffic.count == 0:
        return 0
    keys = traffic.src * np.int64(num_nodes) + traffic.dst
    key_span = int(keys.max()) + 1
    if key_span <= 4 * max(traffic.count, 4096):
        per_link = np.bincount(keys, weights=traffic.bits)
        return int(per_link.max())
    order = np.argsort(keys, kind="stable")
    sorted_bits = traffic.bits[order]
    sorted_keys = keys[order]
    starts = np.flatnonzero(
        np.concatenate(([True], sorted_keys[1:] != sorted_keys[:-1]))
    )
    per_link = np.add.reduceat(sorted_bits, starts)
    return int(per_link.max())


def spawn_node_rngs(
    num_nodes: int, seed: Optional[int | np.random.Generator]
) -> List[np.random.Generator]:
    """Return one independent, reproducible child generator per node."""
    root_rng = (
        seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    )
    child_seeds = root_rng.integers(0, 2**63 - 1, size=num_nodes)
    return [np.random.default_rng(int(child_seeds[node])) for node in range(num_nodes)]


class CongestRuntime:
    """The execution kernel shared by the phase and strict engines.

    Owns the graph, bandwidth policy, metrics, round budget, the message
    plane, and the contexts (built through :meth:`build_contexts` so each
    engine can supply its own context type).
    """

    __slots__ = ("graph", "bandwidth", "round_limit", "metrics", "plane", "contexts")

    def __init__(
        self,
        graph: Graph,
        bandwidth: BandwidthPolicy = DEFAULT_BANDWIDTH,
        round_limit: Optional[int] = None,
    ) -> None:
        if graph.num_nodes < 1:
            raise SimulationError("cannot simulate an empty network")
        self.graph = graph
        self.bandwidth = bandwidth
        self.round_limit = round_limit
        self.metrics = ExecutionMetrics()
        self.plane = MessagePlane(graph.num_nodes)
        self.contexts: List[Any] = []

    def build_contexts(
        self,
        seed: Optional[int | np.random.Generator],
        factory: Callable[[NodeId, np.random.Generator], Any],
    ) -> List[Any]:
        """Build one context per node with independent child RNGs."""
        rngs = spawn_node_rngs(self.graph.num_nodes, seed)
        self.contexts = [factory(node, rngs[node]) for node in self.graph.nodes()]
        return self.contexts

    def collect_traffic(self) -> PhaseTraffic:
        """Drain the message plane for this phase."""
        return self.plane.flush()

    def complete_phase(
        self, name: str, rounds: int, traffic: PhaseTraffic, link_bits: int
    ) -> PhaseReport:
        """Record one phase's cost, deliver its traffic, enforce the budget."""
        report = PhaseReport(
            name=name,
            rounds=rounds,
            messages=traffic.count,
            bits=traffic.total_bits,
            max_link_bits=link_bits,
        )
        self.metrics.record_phase(report)
        record_deliveries(self.metrics, traffic)
        deliver_traffic(self.contexts, traffic)
        self.enforce_round_limit()
        return report

    def exchange(self) -> PhaseTraffic:
        """Deliver the queued traffic without phase/round accounting.

        The strict engine calls this once per round; it accounts the rounds
        itself (one per exchange) and records a single phase report at the
        end of the run.
        """
        traffic = self.collect_traffic()
        record_deliveries(self.metrics, traffic)
        deliver_traffic(self.contexts, traffic)
        return traffic

    def enforce_round_limit(self) -> None:
        """Raise when the cumulative round count exceeds the budget."""
        if self.round_limit is not None and self.metrics.total_rounds > self.round_limit:
            raise RoundLimitExceededError(
                f"round budget of {self.round_limit} exceeded "
                f"(now at {self.metrics.total_rounds} rounds)"
            )
