"""The local view a node program is allowed to use.

A central modelling rule of the CONGEST model (Section 2 of the paper) is
that initially every node knows only *its own incident edges* and the value
of ``n``, plus private randomness.  The :class:`NodeContext` object is the
only handle node programs receive; it exposes exactly that local knowledge,
an outgoing ``send`` primitive restricted to the communication topology, and
whatever messages were delivered in the previous phase.  Node programs never
touch the global :class:`~repro.graphs.graph.Graph`.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from ..errors import TopologyError
from ..types import NodeId, Triangle, make_triangle


class NodeContext:
    """The state and capabilities of one node in a simulated execution.

    Instances are created by the simulator; algorithms interact with them
    through the documented methods and the free-form :attr:`state` dict.
    """

    __slots__ = (
        "node_id",
        "num_nodes",
        "neighbors",
        "rng",
        "state",
        "_comm_targets",
        "_outgoing",
        "_inbox",
        "_output",
    )

    def __init__(
        self,
        node_id: NodeId,
        num_nodes: int,
        neighbors: Iterable[NodeId],
        comm_targets: Iterable[NodeId],
        rng: np.random.Generator,
    ) -> None:
        #: This node's identifier (``0 .. n-1``).
        self.node_id = node_id
        #: The number of nodes ``n`` (globally known, per the model).
        self.num_nodes = num_nodes
        #: The node's neighbours in the *input graph* ``G`` — its initial
        #: knowledge of the topology.
        self.neighbors: frozenset[NodeId] = frozenset(neighbors)
        #: Private randomness for this node.
        self.rng = rng
        #: Free-form per-node algorithm state.
        self.state: Dict[str, Any] = {}
        # Nodes this node may send to: equal to ``neighbors`` in the CONGEST
        # model, and to all other nodes in the CONGEST clique model.
        self._comm_targets: frozenset[NodeId] = frozenset(comm_targets)
        self._outgoing: List[Tuple[NodeId, Any, Optional[int]]] = []
        self._inbox: List[Tuple[NodeId, Any]] = []
        self._output: Set[Triangle] = set()

    # ------------------------------------------------------------------
    # topology queries
    # ------------------------------------------------------------------
    @property
    def degree(self) -> int:
        """The node's degree in the input graph."""
        return len(self.neighbors)

    def sorted_neighbors(self) -> List[NodeId]:
        """Return the node's neighbours in increasing identifier order."""
        return sorted(self.neighbors)

    def can_send_to(self, destination: NodeId) -> bool:
        """Return ``True`` when the communication topology has a link to ``destination``."""
        return destination in self._comm_targets

    @property
    def communication_targets(self) -> frozenset[NodeId]:
        """All nodes this node may address directly (model dependent)."""
        return self._comm_targets

    # ------------------------------------------------------------------
    # communication
    # ------------------------------------------------------------------
    def send(self, destination: NodeId, payload: Any, bits: Optional[int] = None) -> None:
        """Queue ``payload`` for delivery to ``destination`` in the current phase.

        Parameters
        ----------
        destination:
            The receiving node.  Must be reachable in the communication
            topology (a graph neighbour in the CONGEST model; any other node
            in the clique model).
        payload:
            The message content.  Any Python object; the default bit size is
            computed by :func:`repro.congest.wire.default_bit_size`.
        bits:
            Optional explicit on-wire size, overriding the default.

        Raises
        ------
        TopologyError
            If ``destination`` is not reachable from this node.
        """
        if destination == self.node_id:
            raise TopologyError(f"node {self.node_id} cannot send to itself")
        if destination not in self._comm_targets:
            raise TopologyError(
                f"node {self.node_id} has no communication link to {destination}"
            )
        self._outgoing.append((destination, payload, bits))

    def broadcast(self, payload: Any, bits: Optional[int] = None) -> None:
        """Queue ``payload`` for delivery to every neighbour in the input graph.

        In the CONGEST model a "broadcast" is simply the same message sent on
        each incident edge; it is charged per edge accordingly.
        """
        for neighbor in self.neighbors:
            self.send(neighbor, payload, bits)

    def received(self) -> List[Tuple[NodeId, Any]]:
        """Return the ``(sender, payload)`` pairs delivered in the last phase."""
        return list(self._inbox)

    def received_from(self, sender: NodeId) -> List[Any]:
        """Return the payloads delivered by ``sender`` in the last phase."""
        return [payload for source, payload in self._inbox if source == sender]

    def received_senders(self) -> Set[NodeId]:
        """Return the set of nodes that delivered something in the last phase."""
        return {source for source, _ in self._inbox}

    # ------------------------------------------------------------------
    # output
    # ------------------------------------------------------------------
    def output_triangle(self, a: NodeId, b: NodeId, c: NodeId) -> None:
        """Add the triple ``{a, b, c}`` to this node's output set ``T_i``."""
        self._output.add(make_triangle(a, b, c))

    @property
    def output(self) -> frozenset[Triangle]:
        """The node's current output set ``T_i`` (canonicalised triples)."""
        return frozenset(self._output)

    # ------------------------------------------------------------------
    # simulator-facing internals
    # ------------------------------------------------------------------
    def _drain_outgoing(self) -> List[Tuple[NodeId, Any, Optional[int]]]:
        outgoing = self._outgoing
        self._outgoing = []
        return outgoing

    def _deliver(self, messages: List[Tuple[NodeId, Any]]) -> None:
        self._inbox = messages

    def __repr__(self) -> str:
        return (
            f"NodeContext(node_id={self.node_id}, degree={self.degree}, "
            f"outputs={len(self._output)})"
        )
