"""The local view a node program is allowed to use.

A central modelling rule of the CONGEST model (Section 2 of the paper) is
that initially every node knows only *its own incident edges* and the value
of ``n``, plus private randomness.  The :class:`NodeContext` object is the
only handle node programs receive; it exposes exactly that local knowledge,
an outgoing ``send`` primitive restricted to the communication topology, and
whatever messages were delivered in the previous phase.  Node programs never
touch the global :class:`~repro.graphs.graph.Graph`.

Sends are accumulated in the runtime kernel's shared
:class:`~repro.congest.runtime.MessagePlane`.  Besides the scalar
:meth:`NodeContext.send`, the context offers two batched fast paths —
:meth:`NodeContext.bulk_send` and :meth:`NodeContext.broadcast_bits` — that
enqueue thousands of messages with O(1) Python overhead; algorithms with
heavy fan-out (A2's edge shipping, the clique router) use them.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..errors import SimulationError, TopologyError
from ..types import (
    TRIANGLE_KEY_MAX_NODES,
    NodeId,
    Triangle,
    decode_triangle_keys,
    make_triangle,
    triangle_keys,
)
from .runtime import (
    EMPTY_INBOX,
    Inbox,
    MessagePlane,
    TypedInboxView,
    inbox_columns,
    inbox_pairs,
    repeated_payload,
)
from .wire import WireSchema


def emit_grouped_keys(
    contexts: Sequence["NodeContext"], receivers: np.ndarray, keys: np.ndarray
) -> None:
    """Append triangle keys to their receiving contexts, one run at a time.

    ``receivers`` must be non-decreasing (the natural order of
    destination-grouped channel data); ``keys[i]`` is credited to node
    ``receivers[i]``.  The shared emission tail of every fused
    direct-exchange receiver: per receiver it costs one
    :meth:`NodeContext.output_triangle_keys` append.
    """
    if receivers.shape[0] == 0:
        return
    starts = np.flatnonzero(
        np.concatenate(([True], receivers[1:] != receivers[:-1]))
    ).tolist()
    bounds = starts[1:] + [int(receivers.shape[0])]
    for which, start in enumerate(starts):
        contexts[int(receivers[start])].output_triangle_keys(
            keys[start : bounds[which]]
        )


class NodeContext:
    """The state and capabilities of one node in a simulated execution.

    Instances are created by the simulator; algorithms interact with them
    through the documented methods and the free-form :attr:`state` dict.
    """

    __slots__ = (
        "node_id",
        "num_nodes",
        "neighbors",
        "rng",
        "state",
        "_comm_targets",
        "_clique_targets_cache",
        "_targets_array",
        "_neighbor_array",
        "_plane",
        "_inbox",
        "_output",
        "_output_key_chunks",
        "_output_frozen",
    )

    def __init__(
        self,
        node_id: NodeId,
        num_nodes: int,
        neighbors: Iterable[NodeId],
        comm_targets: Optional[Iterable[NodeId]],
        rng: np.random.Generator,
        plane: MessagePlane,
        neighbor_array: Optional[np.ndarray] = None,
    ) -> None:
        #: This node's identifier (``0 .. n-1``).
        self.node_id = node_id
        #: The number of nodes ``n`` (globally known, per the model).
        self.num_nodes = num_nodes
        #: The node's neighbours in the *input graph* ``G`` — its initial
        #: knowledge of the topology.
        self.neighbors: frozenset[NodeId] = (
            neighbors if isinstance(neighbors, frozenset) else frozenset(neighbors)
        )
        #: Private randomness for this node.
        self.rng = rng
        #: Free-form per-node algorithm state.
        self.state: Dict[str, Any] = {}
        # Nodes this node may send to: equal to ``neighbors`` in the CONGEST
        # model, and to all other nodes in the CONGEST clique model.  ``None``
        # encodes the clique case without materialising n-1 identifiers per
        # node; the frozenset is then built lazily on first access.  When the
        # caller passes the same object for both (the standard-model
        # simulator does), the frozenset is shared rather than copied.
        if comm_targets is None:
            self._comm_targets: Optional[frozenset[NodeId]] = None
        elif comm_targets is neighbors:
            self._comm_targets = self.neighbors
        else:
            self._comm_targets = frozenset(comm_targets)
        self._clique_targets_cache: Optional[frozenset[NodeId]] = None
        self._targets_array: Optional[np.ndarray] = None
        # Sorted int64 neighbour identifiers; simulators built on the CSR
        # substrate hand in the graph view's (immutable) row slice so the
        # broadcast fast path never re-sorts or re-materialises it.
        self._neighbor_array: Optional[np.ndarray] = neighbor_array
        self._plane = plane
        self._inbox: Inbox = EMPTY_INBOX
        self._output: Set[Triangle] = set()
        # Bulk outputs accumulate as int64 triangle-key chunks (the columnar
        # output plane); tuples are only materialised if someone reads the
        # ``output`` frozenset.  May hold duplicate keys — consumers dedup.
        self._output_key_chunks: List[np.ndarray] = []
        self._output_frozen: Optional[frozenset] = None

    # ------------------------------------------------------------------
    # topology queries
    # ------------------------------------------------------------------
    @property
    def degree(self) -> int:
        """The node's degree in the input graph."""
        return len(self.neighbors)

    def sorted_neighbors(self) -> List[NodeId]:
        """Return the node's neighbours in increasing identifier order."""
        return sorted(self.neighbors)

    def can_send_to(self, destination: NodeId) -> bool:
        """Return ``True`` when the communication topology has a link to ``destination``."""
        if self._comm_targets is None:
            return 0 <= destination < self.num_nodes and destination != self.node_id
        return destination in self._comm_targets

    @property
    def communication_targets(self) -> frozenset[NodeId]:
        """All nodes this node may address directly (model dependent).

        On the clique the set is built (and cached) on demand, in a field
        separate from the ``None`` sentinel so reading it never disables
        the O(1) clique range-check fast path in ``send``/``bulk_send``.
        """
        if self._comm_targets is not None:
            return self._comm_targets
        if self._clique_targets_cache is None:
            self._clique_targets_cache = frozenset(
                other for other in range(self.num_nodes) if other != self.node_id
            )
        return self._clique_targets_cache

    # ------------------------------------------------------------------
    # communication
    # ------------------------------------------------------------------
    def send(self, destination: NodeId, payload: Any, bits: Optional[int] = None) -> None:
        """Queue ``payload`` for delivery to ``destination`` in the current phase.

        Parameters
        ----------
        destination:
            The receiving node.  Must be reachable in the communication
            topology (a graph neighbour in the CONGEST model; any other node
            in the clique model).
        payload:
            The message content.  Any Python object; the default bit size is
            computed by :func:`repro.congest.wire.default_bit_size`.
        bits:
            Optional explicit on-wire size, overriding the default.

        Raises
        ------
        TopologyError
            If ``destination`` is not reachable from this node.
        """
        if destination == self.node_id:
            raise TopologyError(f"node {self.node_id} cannot send to itself")
        if not self.can_send_to(destination):
            raise TopologyError(
                f"node {self.node_id} has no communication link to {destination}"
            )
        self._plane.append(self.node_id, destination, payload, bits)

    def bulk_send(
        self,
        destinations: Sequence[NodeId] | np.ndarray,
        payloads: Sequence[Any],
        bits: int | Sequence[int] | np.ndarray,
    ) -> None:
        """Queue one message per destination with a single batched operation.

        The fast path for fan-out-heavy steps: topology validation is
        vectorized and the records land in the message plane as one numpy
        chunk, so enqueueing k messages costs O(1) Python-level operations
        instead of k ``send`` calls.

        Parameters
        ----------
        destinations:
            The receiving nodes (one message each; duplicates allowed, they
            queue multiple messages on the same link).
        payloads:
            One payload per destination (must match ``destinations`` in
            length).
        bits:
            Explicit on-wire sizes — a single int applied to every message,
            or one size per message.  The bulk path requires explicit sizes;
            per-payload default sizing would reintroduce the per-message
            Python loop this method exists to avoid.

        Raises
        ------
        TopologyError
            If any destination is this node itself or unreachable.
        SimulationError
            If lengths disagree.
        """
        # Copy the caller's arrays (including an object-dtype payload
        # array): the plane holds these until the phase runs, so later
        # mutation must not alter (or un-validate) queued messages.
        dst = np.array(destinations, dtype=np.int64)
        if isinstance(payloads, np.ndarray):
            payloads = payloads.copy()
        if dst.ndim != 1:
            raise SimulationError("bulk_send destinations must be one-dimensional")
        count = int(dst.shape[0])
        if count == 0:
            return
        if len(payloads) != count:
            raise SimulationError(
                f"bulk_send got {count} destinations but {len(payloads)} payloads"
            )
        if np.ndim(bits) == 0:
            sizes = np.full(count, int(bits), dtype=np.int64)
        else:
            sizes = np.array(bits, dtype=np.int64)
            if sizes.shape[0] != count:
                raise SimulationError(
                    f"bulk_send got {count} destinations but {sizes.shape[0]} sizes"
                )
        self._validate_destinations(dst)
        self._plane.extend(self.node_id, dst, payloads, sizes)

    def _validate_destinations(self, dst: np.ndarray) -> None:
        """Vectorized topology validation shared by the batched send paths.

        Raises
        ------
        TopologyError
            If any destination is this node itself or unreachable.
        """
        if (dst == self.node_id).any():
            raise TopologyError(f"node {self.node_id} cannot send to itself")
        if self._comm_targets is None:
            # Clique: every node except self is reachable; a range check is
            # all the validation needed.
            if dst.min() < 0 or dst.max() >= self.num_nodes:
                bad = next(
                    int(d) for d in dst.tolist() if d < 0 or d >= self.num_nodes
                )
                raise TopologyError(
                    f"node {self.node_id} has no communication link to {bad}"
                )
        else:
            reachable = np.isin(dst, self._sorted_targets())
            if not reachable.all():
                bad = int(dst[np.flatnonzero(~reachable)[0]])
                raise TopologyError(
                    f"node {self.node_id} has no communication link to {bad}"
                )

    def send_columns(
        self,
        schema: WireSchema,
        destinations: Sequence[NodeId] | np.ndarray,
        data: Dict[str, np.ndarray],
        lengths: Optional[Sequence[int] | np.ndarray] = None,
        bits: Optional[int | Sequence[int] | np.ndarray] = None,
    ) -> None:
        """Queue a typed columnar batch of messages from this node.

        The schema fast path: one call stages a whole ``(destinations,
        columns)`` batch on the message plane, with per-message sizes
        computed by ``schema.bit_size`` as a single vectorized reduction.
        Topology validation matches :meth:`bulk_send`.

        Parameters
        ----------
        schema:
            The :class:`~repro.congest.wire.WireSchema` of every message.
        destinations:
            One receiving node per message.
        data:
            Flattened int64 element columns (one array per schema column);
            message ``i`` owns the rows ``offsets[i]:offsets[i+1]`` implied
            by ``lengths``.
        lengths:
            Per-message element counts; defaults to the schema's fixed
            length when it has one.
        bits:
            Optional explicit sizes overriding the schema accounting.

        Raises
        ------
        TopologyError
            If any destination is this node itself or unreachable.
        SimulationError
            If column names or lengths disagree with the schema.
        """
        dst = np.array(destinations, dtype=np.int64)
        if dst.ndim != 1:
            raise SimulationError("send_columns destinations must be one-dimensional")
        if dst.shape[0] == 0:
            return
        self._validate_destinations(dst)
        self._plane.extend_columns(
            schema, self.node_id, dst, data, lengths=lengths, bits=bits
        )

    def broadcast(self, payload: Any, bits: Optional[int] = None) -> None:
        """Queue ``payload`` for delivery to every neighbour in the input graph.

        In the CONGEST model a "broadcast" is simply the same message sent on
        each incident edge; it is charged per edge accordingly.
        """
        if bits is not None:
            self.broadcast_bits(payload, bits)
            return
        for neighbor in self.neighbors:
            self.send(neighbor, payload, bits)

    def broadcast_bits(self, payload: Any, bits: int) -> None:
        """Fast-path broadcast: one payload of known size to every neighbour.

        Equivalent to ``broadcast(payload, bits)`` but enqueues the whole
        neighbourhood as one batched chunk.
        """
        if self._neighbor_array is None:
            self._neighbor_array = np.fromiter(
                sorted(self.neighbors), dtype=np.int64, count=len(self.neighbors)
            )
        neighbors = self._neighbor_array
        count = int(neighbors.shape[0])
        if count == 0:
            return
        self._plane.extend(
            self.node_id,
            neighbors,
            repeated_payload(payload, count),
            np.full(count, int(bits), dtype=np.int64),
        )

    def _sorted_targets(self) -> np.ndarray:
        """Sorted array of explicit communication targets (cached, O(degree))."""
        if self._targets_array is None:
            if self._neighbor_array is not None and self._comm_targets is self.neighbors:
                self._targets_array = self._neighbor_array
            else:
                self._targets_array = np.fromiter(
                    sorted(self._comm_targets),
                    dtype=np.int64,
                    count=len(self._comm_targets),
                )
        return self._targets_array

    def received(self) -> List[Tuple[NodeId, Any]]:
        """Return the ``(sender, payload)`` pairs delivered in the last phase."""
        return list(inbox_pairs(self._inbox))

    def received_from(self, sender: NodeId) -> List[Any]:
        """Return the payloads delivered by ``sender`` in the last phase."""
        return [
            payload
            for source, payload in inbox_pairs(self._inbox)
            if source == sender
        ]

    def received_senders(self) -> Set[NodeId]:
        """Return the set of nodes that delivered something in the last phase."""
        return {source for source, _ in inbox_pairs(self._inbox)}

    def received_columns(self, schema: WireSchema) -> TypedInboxView:
        """Return the typed column view of last phase's ``schema`` messages.

        The zero-copy fast path for batched kernels: instead of decoding
        ``(sender, payload)`` objects, consumers read the delivered element
        columns (and the per-message offsets) directly.  Empty when no
        typed traffic of this kind arrived.
        """
        return inbox_columns(self._inbox, schema)

    # ------------------------------------------------------------------
    # output
    # ------------------------------------------------------------------
    def output_triangle(self, a: NodeId, b: NodeId, c: NodeId) -> None:
        """Add the triple ``{a, b, c}`` to this node's output set ``T_i``."""
        self._output.add(make_triangle(a, b, c))
        self._output_frozen = None

    def output_triangles(
        self, a: np.ndarray, b: np.ndarray, c: np.ndarray, canonical: bool = False
    ) -> None:
        """Bulk variant of :meth:`output_triangle` over vertex arrays.

        Canonicalises all triples with one vectorized sort (skipped when the
        caller passes ``canonical=True`` for rows already sorted ``a < b <
        c``, as the triangle oracle produces) and accumulates them as int64
        triangle keys on the columnar output plane — no per-triple Python
        tuples until someone reads :attr:`output`.

        Raises
        ------
        SimulationError
            If any triple has fewer than three distinct vertices.
        """
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        c = np.asarray(c, dtype=np.int64)
        if a.shape[0] == 0:
            return
        if canonical:
            if ((a >= b) | (b >= c)).any():
                raise SimulationError(
                    "a triangle must contain three distinct vertices"
                )
        else:
            stacked = np.stack((a, b, c), axis=1)
            stacked.sort(axis=1)
            if (stacked[:, 1:] == stacked[:, :-1]).any():
                raise SimulationError(
                    "a triangle must contain three distinct vertices"
                )
            a, b, c = stacked[:, 0], stacked[:, 1], stacked[:, 2]
        if self.num_nodes <= TRIANGLE_KEY_MAX_NODES:
            self._output_key_chunks.append(triangle_keys(a, b, c, self.num_nodes))
        else:  # pragma: no cover - beyond any simulated size
            self._output.update(zip(a.tolist(), b.tolist(), c.tolist()))
        self._output_frozen = None

    def output_triangle_keys(self, keys: np.ndarray) -> None:
        """Append precomputed canonical triangle keys (the kernel fast door).

        ``keys`` must encode canonical triples under
        :func:`repro.types.triangle_keys` for this network's ``n``; the
        fused phase kernels, which build keys directly from oracle output,
        are the only intended callers.
        """
        if keys.shape[0] == 0:
            return
        self._output_key_chunks.append(keys)
        self._output_frozen = None

    def output_state(self) -> Tuple[Set[Triangle], List[np.ndarray]]:
        """Hand the raw output accumulators to the result layer.

        Returns the scalar tuple set and the (possibly duplicated) key
        chunks; :class:`~repro.core.output.TriangleOutput` wraps them
        without materialising anything.
        """
        return self._output, self._output_key_chunks

    @property
    def output(self) -> frozenset[Triangle]:
        """The node's current output set ``T_i`` (canonicalised triples).

        Cached between mutations: repeated reads (result collection over
        millions of listed triples) must not re-copy the whole set.
        """
        if self._output_frozen is None:
            if self._output_key_chunks:
                keys = np.unique(np.concatenate(self._output_key_chunks))
                a, b, c = decode_triangle_keys(keys, self.num_nodes)
                combined = set(zip(a.tolist(), b.tolist(), c.tolist()))
                combined.update(self._output)
                self._output_frozen = frozenset(combined)
            else:
                self._output_frozen = frozenset(self._output)
        return self._output_frozen

    # ------------------------------------------------------------------
    # simulator-facing internals
    # ------------------------------------------------------------------
    def _deliver(self, messages: Inbox) -> None:
        self._inbox = messages

    def __repr__(self) -> str:
        return (
            f"NodeContext(node_id={self.node_id}, degree={self.degree}, "
            f"outputs={len(self._output)})"
        )
