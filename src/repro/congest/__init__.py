"""CONGEST and CONGEST-clique simulation substrate.

The simulator provides two complementary execution models:

* :class:`~repro.congest.simulator.CongestSimulator` — phase-based execution
  with exact per-phase round accounting; used by all the paper's algorithms.
* :class:`~repro.congest.engine.RoundEngine` — strict round-by-round
  execution of generator node programs; used for cross-validation and
  pedagogy.

Both engines are thin policy layers over one execution kernel,
:class:`~repro.congest.runtime.CongestRuntime`, whose vectorized message
plane (:class:`~repro.congest.runtime.MessagePlane`) batches sends into
numpy arrays and performs delivery fan-out and traffic aggregation with
``np.bincount``-style reductions instead of per-message Python loops.

The clique variant (:class:`~repro.congest.clique.CliqueSimulator`) and the
Lenzen routing primitive (:class:`~repro.congest.routing.LenzenRouter`)
support the CONGEST-clique baselines and lower-bound experiments.
"""

from .aggregation import broadcast_from_root, build_bfs_tree, convergecast_sum
from .bandwidth import DEFAULT_BANDWIDTH, BandwidthPolicy
from .broadcast import BroadcastCongestSimulator
from .clique import CliqueSimulator
from .engine import NodeProgram, RoundContext, RoundEngine
from .metrics import AlgorithmCost, ExecutionMetrics, PhaseReport
from .node import NodeContext
from .routing import LenzenRouter, RoutingRequest
from .backends import (
    DEFAULT_CHUNK_BYTES,
    VALID_BACKENDS,
    KernelBackend,
    active_backend,
    active_chunk_bytes,
    available_backends,
    chunk_rows,
    get_backend,
    numba_available,
    register_backend,
    use_backend,
    validate_backend,
    validate_chunk_bytes,
)
from .runtime import (
    CongestRuntime,
    DeliveredChannel,
    DeliveredPhase,
    MessagePlane,
    PhaseArena,
    PhaseTraffic,
    TypedChannel,
    TypedInboxView,
    group_channel,
    set_allocation_hook,
)
from .simulator import CongestSimulator
from .wire import (
    WIRE_SCHEMAS,
    EdgeListSchema,
    FlagSchema,
    HashDescriptorSchema,
    IdListSchema,
    RoutedEdgeSchema,
    WireSchema,
    default_bit_size,
    edge_bits,
    id_bits,
    integer_bits,
    register_schema,
    schema_for,
    triangle_bits,
)

__all__ = [
    "broadcast_from_root",
    "build_bfs_tree",
    "convergecast_sum",
    "DEFAULT_BANDWIDTH",
    "BandwidthPolicy",
    "BroadcastCongestSimulator",
    "CliqueSimulator",
    "NodeProgram",
    "RoundContext",
    "RoundEngine",
    "AlgorithmCost",
    "ExecutionMetrics",
    "PhaseReport",
    "NodeContext",
    "LenzenRouter",
    "RoutingRequest",
    "DEFAULT_CHUNK_BYTES",
    "VALID_BACKENDS",
    "KernelBackend",
    "active_backend",
    "active_chunk_bytes",
    "available_backends",
    "chunk_rows",
    "get_backend",
    "numba_available",
    "register_backend",
    "use_backend",
    "validate_backend",
    "validate_chunk_bytes",
    "CongestRuntime",
    "DeliveredChannel",
    "DeliveredPhase",
    "MessagePlane",
    "PhaseArena",
    "PhaseTraffic",
    "TypedChannel",
    "TypedInboxView",
    "group_channel",
    "set_allocation_hook",
    "CongestSimulator",
    "WIRE_SCHEMAS",
    "WireSchema",
    "IdListSchema",
    "FlagSchema",
    "EdgeListSchema",
    "HashDescriptorSchema",
    "RoutedEdgeSchema",
    "register_schema",
    "schema_for",
    "default_bit_size",
    "edge_bits",
    "id_bits",
    "integer_bits",
    "triangle_bits",
]
