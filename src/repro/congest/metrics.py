"""Execution metrics collected by the CONGEST simulator.

The quantity the paper's theorems bound is the *round complexity*, so the
simulator's first-class metric is the number of synchronous rounds.  The
metrics object additionally tracks message and bit counts (useful for the
lower-bound experiments, which reason about the number of bits received by a
single node) and a per-phase breakdown so component costs (e.g. "Step 2 of
Algorithm A(X, r)") can be attributed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class PhaseReport:
    """The cost of one phase of a phase-structured protocol."""

    name: str
    rounds: int
    messages: int
    bits: int
    max_link_bits: int

    def __str__(self) -> str:
        return (
            f"{self.name}: rounds={self.rounds} messages={self.messages} "
            f"bits={self.bits} max_link_bits={self.max_link_bits}"
        )

    def to_dict(self) -> Dict[str, object]:
        """Return a JSON-ready dictionary (inverse of :meth:`from_dict`).

        The field set is derived from the dataclass itself (as is
        :meth:`from_dict`'s), so adding a field cannot desynchronise
        writer and reader.
        """
        return {name: getattr(self, name) for name in self.__dataclass_fields__}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "PhaseReport":
        """Rebuild a phase report from :meth:`to_dict` output."""
        return cls(**{name: payload[name] for name in cls.__dataclass_fields__})


@dataclass
class ExecutionMetrics:
    """Aggregate metrics for a full protocol execution."""

    total_rounds: int = 0
    total_messages: int = 0
    total_bits: int = 0
    phases: List[PhaseReport] = field(default_factory=list)
    bits_received_per_node: Dict[int, int] = field(default_factory=dict)
    messages_received_per_node: Dict[int, int] = field(default_factory=dict)

    def record_phase(self, report: PhaseReport) -> None:
        """Append a phase report and fold its totals into the aggregates."""
        self.phases.append(report)
        self.total_rounds += report.rounds
        self.total_messages += report.messages
        self.total_bits += report.bits

    def record_delivery(self, node: int, bits: int, messages: int = 1) -> None:
        """Account bits/messages received by ``node`` (lower-bound accounting)."""
        self.bits_received_per_node[node] = (
            self.bits_received_per_node.get(node, 0) + bits
        )
        self.messages_received_per_node[node] = (
            self.messages_received_per_node.get(node, 0) + messages
        )

    def record_deliveries_bulk(
        self, nodes: "Sequence[int]", bits_per_node, messages_per_node
    ) -> None:
        """Account a whole phase's deliveries at once.

        ``bits_per_node`` / ``messages_per_node`` are indexable by node
        identifier (typically ``np.bincount`` outputs); only the listed
        ``nodes`` are folded in, so nodes that received nothing never gain a
        spurious zero entry.
        """
        bits_map = self.bits_received_per_node
        msgs_map = self.messages_received_per_node
        for node in nodes:
            bits_map[node] = bits_map.get(node, 0) + int(bits_per_node[node])
            msgs_map[node] = msgs_map.get(node, 0) + int(messages_per_node[node])

    def max_bits_received(self) -> int:
        """Return the maximum number of bits received by any single node.

        Theorem 3's argument bounds the information a single node can
        receive (``O(n log n)`` bits per round), so this is the measured
        counterpart of the transcript length ``H(π_i)``.
        """
        if not self.bits_received_per_node:
            return 0
        return max(self.bits_received_per_node.values())

    def rounds_by_phase_name(self) -> Dict[str, int]:
        """Return total rounds grouped by phase name."""
        grouped: Dict[str, int] = {}
        for report in self.phases:
            grouped[report.name] = grouped.get(report.name, 0) + report.rounds
        return grouped

    def merge(self, other: "ExecutionMetrics") -> None:
        """Fold another execution's metrics into this one.

        Used when an algorithm is a sequential composition of sub-algorithms
        (e.g. Theorem 1 = A1 then A3): the composite round count is the sum
        of the parts.
        """
        for report in other.phases:
            self.record_phase(report)
        for node, bits in other.bits_received_per_node.items():
            self.bits_received_per_node[node] = (
                self.bits_received_per_node.get(node, 0) + bits
            )
        for node, count in other.messages_received_per_node.items():
            self.messages_received_per_node[node] = (
                self.messages_received_per_node.get(node, 0) + count
            )

    def to_dict(self) -> Dict[str, object]:
        """Return a JSON-ready dictionary (inverse of :meth:`from_dict`).

        Per-node maps are keyed by the node identifier rendered as a
        string (JSON objects only allow string keys); :meth:`from_dict`
        converts them back to integers.
        """
        return {
            "total_rounds": self.total_rounds,
            "total_messages": self.total_messages,
            "total_bits": self.total_bits,
            "phases": [phase.to_dict() for phase in self.phases],
            "bits_received_per_node": {
                str(node): bits
                for node, bits in sorted(self.bits_received_per_node.items())
            },
            "messages_received_per_node": {
                str(node): count
                for node, count in sorted(self.messages_received_per_node.items())
            },
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ExecutionMetrics":
        """Rebuild execution metrics from :meth:`to_dict` output.

        Every field written by :meth:`to_dict` is required — a payload
        missing one raises ``KeyError`` instead of silently defaulting,
        preserving the store's lossless round-trip contract.
        """
        return cls(
            total_rounds=int(payload["total_rounds"]),  # type: ignore[arg-type]
            total_messages=int(payload["total_messages"]),  # type: ignore[arg-type]
            total_bits=int(payload["total_bits"]),  # type: ignore[arg-type]
            phases=[
                PhaseReport.from_dict(phase)
                for phase in payload["phases"]  # type: ignore[union-attr]
            ],
            bits_received_per_node={
                int(node): int(bits)
                for node, bits in payload["bits_received_per_node"].items()  # type: ignore[union-attr]
            },
            messages_received_per_node={
                int(node): int(count)
                for node, count in payload["messages_received_per_node"].items()  # type: ignore[union-attr]
            },
        )

    def summary(self) -> str:
        """Return a human-readable multi-line summary."""
        lines = [
            f"total rounds:   {self.total_rounds}",
            f"total messages: {self.total_messages}",
            f"total bits:     {self.total_bits}",
            f"phases:         {len(self.phases)}",
        ]
        for name, rounds in sorted(self.rounds_by_phase_name().items()):
            lines.append(f"  {name}: {rounds} rounds")
        return "\n".join(lines)


@dataclass(frozen=True)
class AlgorithmCost:
    """A compact, immutable cost record attached to algorithm results."""

    rounds: int
    messages: int
    bits: int
    max_bits_received: int

    @classmethod
    def from_metrics(cls, metrics: ExecutionMetrics) -> "AlgorithmCost":
        """Build a cost record from execution metrics."""
        return cls(
            rounds=metrics.total_rounds,
            messages=metrics.total_messages,
            bits=metrics.total_bits,
            max_bits_received=metrics.max_bits_received(),
        )

    def __str__(self) -> str:
        return (
            f"rounds={self.rounds} messages={self.messages} "
            f"bits={self.bits} max_bits_received={self.max_bits_received}"
        )

    def to_dict(self) -> Dict[str, int]:
        """Return a JSON-ready dictionary (inverse of :meth:`from_dict`).

        The field set is derived from the dataclass itself (as is
        :meth:`from_dict`'s), so adding a field cannot desynchronise
        writer and reader.
        """
        return {name: getattr(self, name) for name in self.__dataclass_fields__}

    @classmethod
    def from_dict(cls, payload: Dict[str, int]) -> "AlgorithmCost":
        """Rebuild a cost record from :meth:`to_dict` output."""
        return cls(**{name: int(payload[name]) for name in cls.__dataclass_fields__})
