"""Phase-based CONGEST simulator with exact round accounting.

The algorithms in the paper are *phase structured*: each step ("every node
sends its hash function to its neighbours", "every node k sends the set
``S(j, k)`` to each neighbour j with a small set", ...) has all nodes
enqueue data for their neighbours and then wait until the slowest link has
delivered everything before the next step begins.  For such protocols the
round cost of a phase in the CONGEST model is exactly

    ``max over directed edges e of ⌈ queued_bits(e) / B ⌉``

where ``B`` is the per-round bandwidth.  The simulator exploits this: instead
of stepping every round individually (which would make large experiments
infeasible in Python), :meth:`CongestSimulator.run_phase` computes that
maximum, advances the global round counter by it, and delivers all queued
messages at once.  The accounting is identical to literal round-by-round
execution of the same phase-synchronous protocol — a property covered by the
test suite, which cross-checks against the literal low-level engine in
:mod:`repro.congest.engine`.

The simulator also enforces the model's knowledge discipline: node programs
receive only :class:`~repro.congest.node.NodeContext` objects built from the
input graph's local neighbourhoods.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..errors import RoundLimitExceededError, SimulationError
from ..graphs.graph import Graph
from ..types import NodeId
from .bandwidth import DEFAULT_BANDWIDTH, BandwidthPolicy
from .metrics import ExecutionMetrics, PhaseReport
from .node import NodeContext
from .wire import default_bit_size


class CongestSimulator:
    """Simulate a phase-synchronous protocol in the standard CONGEST model.

    Parameters
    ----------
    graph:
        The network topology (also the input graph).
    bandwidth:
        The per-edge per-round bandwidth policy.  Defaults to
        ``⌈log2 n⌉``-bit messages.
    seed:
        Seed for the per-node private randomness.  Each node receives an
        independent child generator, so executions are reproducible and
        node programs cannot share randomness implicitly.
    round_limit:
        Optional budget; exceeding it raises
        :class:`~repro.errors.RoundLimitExceededError`.  Algorithm A3 uses
        this to implement the paper's "stop as soon as the round complexity
        exceeds the budget" rule.
    """

    def __init__(
        self,
        graph: Graph,
        bandwidth: BandwidthPolicy = DEFAULT_BANDWIDTH,
        seed: Optional[int | np.random.Generator] = None,
        round_limit: Optional[int] = None,
    ) -> None:
        if graph.num_nodes < 1:
            raise SimulationError("cannot simulate an empty network")
        self._graph = graph
        self._bandwidth = bandwidth
        self._round_limit = round_limit
        self._metrics = ExecutionMetrics()
        root_rng = (
            seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        )
        child_seeds = root_rng.integers(0, 2**63 - 1, size=graph.num_nodes)
        self._contexts: List[NodeContext] = [
            NodeContext(
                node_id=node,
                num_nodes=graph.num_nodes,
                neighbors=graph.neighbors(node),
                comm_targets=self._communication_targets(graph, node),
                rng=np.random.default_rng(int(child_seeds[node])),
            )
            for node in graph.nodes()
        ]

    # ------------------------------------------------------------------
    # topology hooks (overridden by the clique variant)
    # ------------------------------------------------------------------
    def _communication_targets(self, graph: Graph, node: NodeId) -> Iterable[NodeId]:
        """Return the nodes ``node`` may address directly.

        In the standard CONGEST model the communication topology *is* the
        input graph, so the targets are the graph neighbours.
        """
        return graph.neighbors(node)

    @property
    def model_name(self) -> str:
        """Human-readable name of the communication model."""
        return "CONGEST"

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """The input graph / network topology."""
        return self._graph

    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n`` in the network."""
        return self._graph.num_nodes

    @property
    def bandwidth(self) -> BandwidthPolicy:
        """The bandwidth policy in force."""
        return self._bandwidth

    @property
    def contexts(self) -> List[NodeContext]:
        """The per-node contexts, indexed by node identifier."""
        return self._contexts

    def context(self, node: NodeId) -> NodeContext:
        """Return the context of a single node."""
        return self._contexts[node]

    @property
    def metrics(self) -> ExecutionMetrics:
        """The execution metrics accumulated so far."""
        return self._metrics

    @property
    def total_rounds(self) -> int:
        """Rounds elapsed so far."""
        return self._metrics.total_rounds

    @property
    def round_limit(self) -> Optional[int]:
        """The configured round budget, if any."""
        return self._round_limit

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def for_each_node(self, action: Callable[[NodeContext], None]) -> None:
        """Run a local-computation step on every node.

        Local computation is free in the CONGEST model, so this does not
        advance the round counter.  The ``action`` receives each node's
        context in identifier order.
        """
        for context in self._contexts:
            action(context)

    def run_phase(self, name: str = "phase", extra_rounds: int = 0) -> PhaseReport:
        """Deliver everything queued by :meth:`NodeContext.send` and charge rounds.

        Parameters
        ----------
        name:
            Label recorded in the metrics for this phase.
        extra_rounds:
            Additional rounds to charge on top of the communication cost.
            Used for steps the paper charges even when no data flows (e.g. a
            fixed one-round announcement that may be empty for some nodes).

        Returns
        -------
        PhaseReport
            The cost of this phase.

        Raises
        ------
        RoundLimitExceededError
            If the cumulative round count would exceed the configured budget.
        """
        per_link_bits: Dict[Tuple[NodeId, NodeId], int] = {}
        deliveries: Dict[NodeId, List[Tuple[NodeId, object]]] = {
            context.node_id: [] for context in self._contexts
        }
        total_messages = 0
        total_bits = 0
        per_node_received_bits: Dict[NodeId, int] = {}
        per_node_received_msgs: Dict[NodeId, int] = {}

        for context in self._contexts:
            for destination, payload, bits in context._drain_outgoing():
                size = (
                    bits
                    if bits is not None
                    else default_bit_size(payload, self._graph.num_nodes)
                )
                if size < 0:
                    raise SimulationError(f"message size must be non-negative, got {size}")
                link = (context.node_id, destination)
                per_link_bits[link] = per_link_bits.get(link, 0) + size
                deliveries[destination].append((context.node_id, payload))
                total_messages += 1
                total_bits += size
                per_node_received_bits[destination] = (
                    per_node_received_bits.get(destination, 0) + size
                )
                per_node_received_msgs[destination] = (
                    per_node_received_msgs.get(destination, 0) + 1
                )

        max_link_bits = max(per_link_bits.values()) if per_link_bits else 0
        rounds = self._bandwidth.rounds_for_bits(max_link_bits, self._graph.num_nodes)
        rounds += extra_rounds

        report = PhaseReport(
            name=name,
            rounds=rounds,
            messages=total_messages,
            bits=total_bits,
            max_link_bits=max_link_bits,
        )
        self._metrics.record_phase(report)
        for node, bits in per_node_received_bits.items():
            self._metrics.record_delivery(
                node, bits, per_node_received_msgs.get(node, 0)
            )

        for context in self._contexts:
            context._deliver(deliveries[context.node_id])

        if self._round_limit is not None and self._metrics.total_rounds > self._round_limit:
            raise RoundLimitExceededError(
                f"round budget of {self._round_limit} exceeded "
                f"(now at {self._metrics.total_rounds} rounds)"
            )
        return report

    def charge_rounds(self, rounds: int, name: str = "charged") -> PhaseReport:
        """Charge a fixed number of rounds without moving any data.

        Used when an algorithm's specification charges a deterministic,
        data-independent number of rounds (for instance a worst-case phase
        length that every node waits out regardless of the actual traffic).
        """
        if rounds < 0:
            raise SimulationError(f"rounds must be non-negative, got {rounds}")
        report = PhaseReport(
            name=name, rounds=rounds, messages=0, bits=0, max_link_bits=0
        )
        self._metrics.record_phase(report)
        if self._round_limit is not None and self._metrics.total_rounds > self._round_limit:
            raise RoundLimitExceededError(
                f"round budget of {self._round_limit} exceeded "
                f"(now at {self._metrics.total_rounds} rounds)"
            )
        return report

    # ------------------------------------------------------------------
    # output collection
    # ------------------------------------------------------------------
    def collect_outputs(self) -> Dict[NodeId, frozenset]:
        """Return the per-node output sets ``(T_0, ..., T_{n-1})``."""
        return {context.node_id: context.output for context in self._contexts}

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n={self._graph.num_nodes}, "
            f"m={self._graph.num_edges}, rounds={self._metrics.total_rounds})"
        )
