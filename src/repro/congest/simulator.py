"""Phase-based CONGEST simulator with exact round accounting.

The algorithms in the paper are *phase structured*: each step ("every node
sends its hash function to its neighbours", "every node k sends the set
``S(j, k)`` to each neighbour j with a small set", ...) has all nodes
enqueue data for their neighbours and then wait until the slowest link has
delivered everything before the next step begins.  For such protocols the
round cost of a phase in the CONGEST model is exactly

    ``max over directed edges e of ⌈ queued_bits(e) / B ⌉``

where ``B`` is the per-round bandwidth.  The simulator exploits this: instead
of stepping every round individually (which would make large experiments
infeasible in Python), :meth:`CongestSimulator.run_phase` computes that
maximum, advances the global round counter by it, and delivers all queued
messages at once.  The accounting is identical to literal round-by-round
execution of the same phase-synchronous protocol — a property covered by the
test suite, which cross-checks against the literal low-level engine in
:mod:`repro.congest.engine`.

Execution mechanics — context construction, per-node RNG seeding, the
batched message plane, vectorized delivery fan-out, metrics recording and
round-limit enforcement — live in the shared
:class:`~repro.congest.runtime.CongestRuntime` kernel; this class is the
*policy* layer that decides how a phase's round cost is computed from the
drained traffic (subclasses override :meth:`_phase_cost` and
:meth:`_communication_targets` to obtain the clique and broadcast model
variants).

The simulator also enforces the model's knowledge discipline: node programs
receive only :class:`~repro.congest.node.NodeContext` objects built from the
input graph's local neighbourhoods.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..errors import SimulationError
from ..graphs.graph import Graph
from ..types import NodeId
from .bandwidth import DEFAULT_BANDWIDTH, BandwidthPolicy
from .metrics import ExecutionMetrics, PhaseReport
from .node import NodeContext
from .runtime import CongestRuntime, DeliveredPhase, PhaseTraffic, max_link_bits

#: Sentinel returned by :meth:`CongestSimulator._communication_targets` when
#: the communication topology is the input graph itself.  The constructor
#: then reuses the CSR-derived neighbour frozenset instead of building a
#: second copy per node.
GRAPH_NEIGHBORS = object()


class CongestSimulator:
    """Simulate a phase-synchronous protocol in the standard CONGEST model.

    Parameters
    ----------
    graph:
        The network topology (also the input graph).
    bandwidth:
        The per-edge per-round bandwidth policy.  Defaults to
        ``⌈log2 n⌉``-bit messages.
    seed:
        Seed for the per-node private randomness.  Each node receives an
        independent child generator, so executions are reproducible and
        node programs cannot share randomness implicitly.
    round_limit:
        Optional budget; exceeding it raises
        :class:`~repro.errors.RoundLimitExceededError`.  Algorithm A3 uses
        this to implement the paper's "stop as soon as the round complexity
        exceeds the budget" rule.
    """

    def __init__(
        self,
        graph: Graph,
        bandwidth: BandwidthPolicy = DEFAULT_BANDWIDTH,
        seed: Optional[int | np.random.Generator] = None,
        round_limit: Optional[int] = None,
    ) -> None:
        self._runtime = CongestRuntime(graph, bandwidth, round_limit)
        # Contexts are built straight from the immutable CSR view: each node
        # receives the view's sorted neighbour row (zero-copy) plus one
        # frozenset, shared with the communication-target set in the
        # standard model instead of materialised twice.
        csr = graph.csr()

        def build_context(node: NodeId, rng: np.random.Generator) -> NodeContext:
            neighbor_row = csr.neighbor_slice(node)
            neighbors = frozenset(neighbor_row.tolist())
            targets = self._communication_targets(graph, node)
            if targets is GRAPH_NEIGHBORS:
                targets = neighbors
            return NodeContext(
                node_id=node,
                num_nodes=graph.num_nodes,
                neighbors=neighbors,
                comm_targets=targets,
                rng=rng,
                plane=self._runtime.plane,
                neighbor_array=neighbor_row,
            )

        self._runtime.build_contexts(seed, build_context)

    # ------------------------------------------------------------------
    # topology hooks (overridden by the clique variant)
    # ------------------------------------------------------------------
    def _communication_targets(
        self, graph: Graph, node: NodeId
    ) -> Optional[Iterable[NodeId]]:
        """Return the nodes ``node`` may address directly.

        In the standard CONGEST model the communication topology *is* the
        input graph, so the targets are the graph neighbours — signalled by
        the :data:`GRAPH_NEIGHBORS` sentinel, which lets the constructor
        reuse one frozenset for both roles.  The clique variant returns
        ``None``, the "all other nodes" sentinel.  Subclasses may also
        return any explicit iterable of node identifiers.
        """
        return GRAPH_NEIGHBORS

    @property
    def model_name(self) -> str:
        """Human-readable name of the communication model."""
        return "CONGEST"

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def runtime(self) -> CongestRuntime:
        """The shared execution kernel this simulator drives."""
        return self._runtime

    @property
    def graph(self) -> Graph:
        """The input graph / network topology."""
        return self._runtime.graph

    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n`` in the network."""
        return self._runtime.graph.num_nodes

    @property
    def bandwidth(self) -> BandwidthPolicy:
        """The bandwidth policy in force."""
        return self._runtime.bandwidth

    @property
    def _contexts(self) -> List[NodeContext]:
        # Single source of truth: the kernel owns the context list it
        # delivers to.
        return self._runtime.contexts

    @property
    def contexts(self) -> List[NodeContext]:
        """The per-node contexts, indexed by node identifier."""
        return self._runtime.contexts

    def context(self, node: NodeId) -> NodeContext:
        """Return the context of a single node."""
        return self._contexts[node]

    @property
    def metrics(self) -> ExecutionMetrics:
        """The execution metrics accumulated so far."""
        return self._runtime.metrics

    @property
    def total_rounds(self) -> int:
        """Rounds elapsed so far."""
        return self._runtime.metrics.total_rounds

    @property
    def round_limit(self) -> Optional[int]:
        """The configured round budget, if any."""
        return self._runtime.round_limit

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def for_each_node(self, action: Callable[[NodeContext], None]) -> None:
        """Run a local-computation step on every node.

        Local computation is free in the CONGEST model, so this does not
        advance the round counter.  The ``action`` receives each node's
        context in identifier order.
        """
        for context in self._contexts:
            action(context)

    def stage_columns(
        self,
        schema,
        src,
        dst,
        data,
        lengths=None,
        bits=None,
    ) -> None:
        """Stage a network-wide typed batch on the message plane.

        The batched phase kernels' staging door: one call enqueues an
        entire phase's columnar traffic (``src``/``dst`` per message plus
        the schema's flattened element columns).  Callers are the layer-3
        array programs, which construct destinations from each sender's CSR
        neighbour row — the topology every per-node fast path validates —
        and are differentially tested against the per-node reference
        closures, so the per-destination membership checks are not repeated
        here.
        """
        self._runtime.plane.extend_columns(
            schema, src, dst, data, lengths=lengths, bits=bits
        )

    def _phase_cost(self, traffic: PhaseTraffic) -> Tuple[int, int]:
        """Return ``(rounds, reported max bits)`` for one phase's traffic.

        The standard CONGEST rule: the phase lasts as long as the most
        loaded directed link needs.
        """
        link_bits = max_link_bits(traffic, self.num_nodes)
        rounds = self._runtime.bandwidth.rounds_for_bits(link_bits, self.num_nodes)
        return rounds, link_bits

    def run_phase(self, name: str = "phase", extra_rounds: int = 0) -> PhaseReport:
        """Deliver everything queued by :meth:`NodeContext.send` and charge rounds.

        Parameters
        ----------
        name:
            Label recorded in the metrics for this phase.
        extra_rounds:
            Additional rounds to charge on top of the communication cost.
            Used for steps the paper charges even when no data flows (e.g. a
            fixed one-round announcement that may be empty for some nodes).

        Returns
        -------
        PhaseReport
            The cost of this phase.

        Raises
        ------
        RoundLimitExceededError
            If the cumulative round count would exceed the configured budget.
        """
        traffic = self._runtime.collect_traffic()
        rounds, link_bits = self._phase_cost(traffic)
        return self._runtime.complete_phase(
            name, rounds + extra_rounds, traffic, link_bits
        )

    def exchange_phase(
        self, name: str = "phase", extra_rounds: int = 0
    ) -> DeliveredPhase:
        """Run one phase on the **direct-exchange** path.

        Same accounting as :meth:`run_phase` (same rounds, link-bit maxima,
        message/bit totals, per-node delivery tallies, round-budget
        enforcement), but instead of fanning the typed traffic out into
        per-node inboxes the phase's channels come back as a
        :class:`~repro.congest.runtime.DeliveredPhase`: the driving batched
        kernel consumes the destination-grouped channel arrays in place,
        and no per-node ``InboxSlice``/``TypedInboxView`` objects (nor the
        receiver dict) are ever materialized.  Object-payload messages, if
        any were queued, are still delivered as inboxes.

        Raises
        ------
        RoundLimitExceededError
            If the cumulative round count would exceed the configured
            budget — after recording the phase, exactly like
            :meth:`run_phase`, so truncation points match the inbox path.
        """
        traffic = self._runtime.collect_traffic()
        rounds, link_bits = self._phase_cost(traffic)
        return self._runtime.complete_phase_direct(
            name, rounds + extra_rounds, traffic, link_bits
        )

    def charge_rounds(self, rounds: int, name: str = "charged") -> PhaseReport:
        """Charge a fixed number of rounds without moving any data.

        Used when an algorithm's specification charges a deterministic,
        data-independent number of rounds (for instance a worst-case phase
        length that every node waits out regardless of the actual traffic).
        """
        if rounds < 0:
            raise SimulationError(f"rounds must be non-negative, got {rounds}")
        report = PhaseReport(
            name=name, rounds=rounds, messages=0, bits=0, max_link_bits=0
        )
        self._runtime.metrics.record_phase(report)
        self._runtime.enforce_round_limit()
        return report

    # ------------------------------------------------------------------
    # output collection
    # ------------------------------------------------------------------
    def collect_outputs(self) -> Dict[NodeId, frozenset]:
        """Return the per-node output sets ``(T_0, ..., T_{n-1})``."""
        return {context.node_id: context.output for context in self._contexts}

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n={self.num_nodes}, "
            f"m={self.graph.num_edges}, rounds={self.total_rounds})"
        )
