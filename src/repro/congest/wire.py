"""On-wire size accounting for message payloads.

The CONGEST model constrains the number of *bits* crossing each edge per
round, so every payload the simulator carries needs a well-defined bit size.
This module centralises that accounting:

* a node identifier costs ``⌈log2 n⌉`` bits,
* an edge (pair of identifiers) costs ``2⌈log2 n⌉`` bits,
* a boolean flag costs 1 bit,
* a hash-function description costs whatever its ``encoded_bits()`` reports,
* small integers cost their binary length (at least 1 bit).

Algorithms may always override the default by passing an explicit ``bits``
argument to :meth:`repro.congest.node.NodeContext.send`; the defaults here
exist so the common cases stay concise and consistent.
"""

from __future__ import annotations

import math
from typing import Any

from ..errors import SimulationError


def id_bits(num_nodes: int) -> int:
    """Return the number of bits needed to name one of ``num_nodes`` nodes."""
    if num_nodes < 1:
        raise SimulationError(f"num_nodes must be positive, got {num_nodes}")
    return max(1, math.ceil(math.log2(num_nodes)))


def edge_bits(num_nodes: int) -> int:
    """Return the number of bits needed to name an edge (two node ids)."""
    return 2 * id_bits(num_nodes)


def triangle_bits(num_nodes: int) -> int:
    """Return the number of bits needed to name a triangle (three node ids)."""
    return 3 * id_bits(num_nodes)


def integer_bits(value: int) -> int:
    """Return the number of bits of the binary representation of ``value``."""
    magnitude = abs(int(value))
    return max(1, magnitude.bit_length()) + (1 if value < 0 else 0)


def default_bit_size(payload: Any, num_nodes: int) -> int:
    """Return the default on-wire size of ``payload`` in bits.

    Supported payloads:

    * ``bool`` — 1 bit,
    * ``int`` — interpreted as a node identifier (``⌈log2 n⌉`` bits),
    * ``str`` — 8 bits per character (protocol tags are short constant
      strings, so this keeps them O(1) bits as the algorithms assume),
    * tuples/lists of supported payloads — the sum of their element sizes
      (so an edge ``(u, v)`` costs ``2⌈log2 n⌉`` bits),
    * objects exposing ``encoded_bits()`` (e.g.
      :class:`repro.hashing.HashFunction`) — whatever that method reports,
    * ``None`` — 1 bit (a bare signal).

    Raises
    ------
    SimulationError
        For payload types without a defined default size.  Such payloads
        must be sent with an explicit ``bits`` argument.
    """
    if payload is None:
        return 1
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return id_bits(num_nodes)
    if isinstance(payload, str):
        return max(1, 8 * len(payload))
    if isinstance(payload, (tuple, list)):
        return sum(default_bit_size(element, num_nodes) for element in payload)
    if isinstance(payload, frozenset) or isinstance(payload, set):
        return sum(default_bit_size(element, num_nodes) for element in payload)
    encoded_bits = getattr(payload, "encoded_bits", None)
    if callable(encoded_bits):
        return int(encoded_bits())
    raise SimulationError(
        f"no default bit size defined for payload of type {type(payload).__name__}; "
        "pass an explicit bits= argument"
    )
