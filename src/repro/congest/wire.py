"""On-wire size accounting and typed wire schemas for message payloads.

The CONGEST model constrains the number of *bits* crossing each edge per
round, so every payload the simulator carries needs a well-defined bit size.
This module centralises that accounting:

* a node identifier costs ``⌈log2 n⌉`` bits,
* an edge (pair of identifiers) costs ``2⌈log2 n⌉`` bits,
* a boolean flag costs 1 bit,
* a hash-function description costs whatever its ``encoded_bits()`` reports,
* small integers cost their binary length (at least 1 bit),
* empty containers and ``None`` cost 1 bit (nothing is free on the wire).

Algorithms may always override the default by passing an explicit ``bits``
argument to :meth:`repro.congest.node.NodeContext.send`; the defaults here
exist so the common cases stay concise and consistent.

Typed wire schemas
------------------

Besides the scalar defaults, the module hosts the **wire-schema registry**:
every message kind the paper's protocols put on the wire (hash descriptor,
filtered edge batch, landmark announcement, neighbourhood/withholding id
lists, routed clique edges) declares a :class:`WireSchema` — a fixed set of
int64 element columns plus a vectorized ``bit_size(lengths, n)``.  Schemas
are what the columnar payload plane
(:meth:`repro.congest.runtime.MessagePlane.extend_columns`) carries: a whole
``(targets, columns)`` batch is staged and sized with numpy reductions
instead of one Python ``send``/``default_bit_size`` call per message.  Each
schema also round-trips between its column layout and the object payload the
per-node reference closures send (:meth:`WireSchema.encode` /
:meth:`WireSchema.decode`), which is what keeps the lazy ``(sender,
payload)`` inbox view consistent across both paths and lets the differential
tests compare them message for message.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np

from ..errors import SimulationError


def id_bits(num_nodes: int) -> int:
    """Return the number of bits needed to name one of ``num_nodes`` nodes."""
    if num_nodes < 1:
        raise SimulationError(f"num_nodes must be positive, got {num_nodes}")
    return max(1, math.ceil(math.log2(num_nodes)))


def edge_bits(num_nodes: int) -> int:
    """Return the number of bits needed to name an edge (two node ids)."""
    return 2 * id_bits(num_nodes)


def triangle_bits(num_nodes: int) -> int:
    """Return the number of bits needed to name a triangle (three node ids)."""
    return 3 * id_bits(num_nodes)


def integer_bits(value: int) -> int:
    """Return the number of bits of the binary representation of ``value``."""
    magnitude = abs(int(value))
    return max(1, magnitude.bit_length()) + (1 if value < 0 else 0)


def default_bit_size(payload: Any, num_nodes: int) -> int:
    """Return the default on-wire size of ``payload`` in bits.

    Supported payloads:

    * ``bool`` — 1 bit,
    * ``int`` — interpreted as a node identifier (``⌈log2 n⌉`` bits),
    * ``str`` — 8 bits per character (protocol tags are short constant
      strings, so this keeps them O(1) bits as the algorithms assume),
    * tuples/lists of supported payloads — the sum of their element sizes
      (so an edge ``(u, v)`` costs ``2⌈log2 n⌉`` bits), floored at 1 bit for
      empty containers — like ``None``, an empty set still occupies a
      message slot and is never free on the wire,
    * objects exposing ``encoded_bits()`` (e.g.
      :class:`repro.hashing.HashFunction`) — whatever that method reports,
    * ``None`` — 1 bit (a bare signal).

    Raises
    ------
    SimulationError
        For payload types without a defined default size.  Such payloads
        must be sent with an explicit ``bits`` argument.
    """
    if payload is None:
        return 1
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return id_bits(num_nodes)
    if isinstance(payload, str):
        return max(1, 8 * len(payload))
    if isinstance(payload, (tuple, list)):
        return max(1, sum(default_bit_size(element, num_nodes) for element in payload))
    if isinstance(payload, frozenset) or isinstance(payload, set):
        return max(1, sum(default_bit_size(element, num_nodes) for element in payload))
    encoded_bits = getattr(payload, "encoded_bits", None)
    if callable(encoded_bits):
        return int(encoded_bits())
    raise SimulationError(
        f"no default bit size defined for payload of type {type(payload).__name__}; "
        "pass an explicit bits= argument"
    )


# ----------------------------------------------------------------------
# typed wire schemas
# ----------------------------------------------------------------------
class WireSchema:
    """A typed message kind: named int64 element columns + vectorized sizing.

    A *message* under a schema is a run of consecutive element rows in the
    schema's flattened columns (delimited by an offsets array in the
    columnar plane).  Subclasses declare

    * :attr:`kind` — the registry key and channel identifier,
    * :attr:`columns` — the per-element column names,
    * :meth:`element_bits` — the on-wire cost of one element row, and
    * :meth:`encode` / :meth:`decode` — the mapping between one message's
      column rows and the object payload the reference closures send.

    The default :meth:`bit_size` charges ``max(1, length · element_bits)``
    per message — the pattern every protocol in the paper uses (``len(S) ·
    ⌈log2 n⌉`` bits for an id list, ``len(E) · 2⌈log2 n⌉`` for an edge
    batch, 1 bit for an empty announcement).
    """

    #: Registry key; also the channel name in :class:`~repro.congest.runtime.PhaseTraffic`.
    kind: str = "abstract"
    #: Names of the per-element int64 columns.
    columns: Tuple[str, ...] = ()
    #: Elements per message when the schema is fixed-width (``None`` = ragged).
    fixed_length: Optional[int] = None

    def element_bits(self, num_nodes: int) -> int:
        """Return the on-wire cost of one element row, in bits."""
        raise NotImplementedError

    def bit_size(
        self,
        lengths: np.ndarray | Sequence[int],
        num_nodes: int,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Return the per-message bit sizes for a batch of element counts.

        Vectorized over the whole batch: one numpy expression sizes every
        message, replacing the per-payload ``default_bit_size`` recursion of
        the scalar path.  Empty messages are floored at 1 bit (consistent
        with :func:`default_bit_size` on empty containers).  ``out``, when
        given, receives the sizes in place (the arena-backed staging path
        passes a pooled buffer).
        """
        counts = np.asarray(lengths, dtype=np.int64)
        if out is None:
            return np.maximum(counts * np.int64(self.element_bits(num_nodes)), 1)
        np.multiply(counts, np.int64(self.element_bits(num_nodes)), out=out)
        np.maximum(out, 1, out=out)
        return out

    def encode(self, payload: Any) -> Dict[str, np.ndarray]:
        """Convert one reference-path payload object into column rows."""
        raise NotImplementedError

    def decode(self, data: Dict[str, np.ndarray]) -> Any:
        """Convert one message's column rows back into the payload object."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(kind={self.kind!r}, columns={self.columns!r})"


class IdListSchema(WireSchema):
    """A tagged list of node identifiers (A1 samples, A3's NX/S/V sets).

    One element = one node id = ``⌈log2 n⌉`` bits; the constant protocol
    tag is O(1) and not charged, matching the reference closures' explicit
    ``bits=max(1, len · id_bits)`` arguments.
    """

    columns = ("member",)

    def __init__(self, kind: str, tag: str) -> None:
        self.kind = kind
        self.tag = tag

    def element_bits(self, num_nodes: int) -> int:
        return id_bits(num_nodes)

    def encode(self, payload: Any) -> Dict[str, np.ndarray]:
        tag, members = payload
        if tag != self.tag:
            raise SimulationError(f"schema {self.kind!r} cannot encode tag {tag!r}")
        return {"member": np.asarray(list(members), dtype=np.int64)}

    def decode(self, data: Dict[str, np.ndarray]) -> Any:
        return (self.tag, tuple(int(member) for member in data["member"]))


class FlagSchema(WireSchema):
    """A tagged 1-bit announcement (A3's ``in_X`` / ``in_U`` broadcasts)."""

    columns = ("flag",)
    fixed_length = 1

    def __init__(self, kind: str, tag: str) -> None:
        self.kind = kind
        self.tag = tag

    def element_bits(self, num_nodes: int) -> int:
        return 1

    def encode(self, payload: Any) -> Dict[str, np.ndarray]:
        tag, flag = payload
        if tag != self.tag:
            raise SimulationError(f"schema {self.kind!r} cannot encode tag {tag!r}")
        return {"flag": np.asarray([int(bool(flag))], dtype=np.int64)}

    def decode(self, data: Dict[str, np.ndarray]) -> Any:
        return (self.tag, bool(int(data["flag"][0])))


class EdgeListSchema(WireSchema):
    """A batch of canonical edges (A2's filtered edge sets ``E_ja``).

    One element = one edge = ``2⌈log2 n⌉`` bits.
    """

    columns = ("u", "v")

    def __init__(self, kind: str = "a2-edges", tag: str = "edges") -> None:
        self.kind = kind
        self.tag = tag

    def element_bits(self, num_nodes: int) -> int:
        return edge_bits(num_nodes)

    def encode(self, payload: Any) -> Dict[str, np.ndarray]:
        tag, edges = payload
        if tag != self.tag:
            raise SimulationError(f"schema {self.kind!r} cannot encode tag {tag!r}")
        pairs = list(edges)
        return {
            "u": np.asarray([edge[0] for edge in pairs], dtype=np.int64),
            "v": np.asarray([edge[1] for edge in pairs], dtype=np.int64),
        }

    def decode(self, data: Dict[str, np.ndarray]) -> Any:
        return (
            self.tag,
            tuple(
                (int(u), int(v))
                for u, v in zip(data["u"].tolist(), data["v"].tolist())
            ),
        )


class HashDescriptorSchema(WireSchema):
    """A k-wise hash-function description (A2 step 1).

    One element = one GF(p) coefficient = ``⌈log2 p⌉`` bits, so a whole
    descriptor of ``k`` coefficients costs ``k⌈log2 p⌉`` bits — exactly
    :meth:`repro.hashing.KWiseIndependentFamily.description_bits`.  The
    prime and range are public parameters derived from ``n`` and ε, so they
    parameterize the schema instance instead of travelling on the wire.
    """

    kind = "hash-descriptor"
    columns = ("coefficient",)
    tag = "hash"

    def __init__(self, independence: int, prime: int) -> None:
        if independence < 1:
            raise SimulationError(f"independence must be positive, got {independence}")
        if prime < 2:
            raise SimulationError(f"prime must be at least 2, got {prime}")
        self.independence = independence
        self.prime = prime
        self.fixed_length = independence

    def element_bits(self, num_nodes: int) -> int:
        return max(1, math.ceil(math.log2(self.prime)))

    def encode(self, payload: Any) -> Dict[str, np.ndarray]:
        tag, coefficients = payload
        if tag != self.tag:
            raise SimulationError(f"schema {self.kind!r} cannot encode tag {tag!r}")
        if len(coefficients) != self.independence:
            raise SimulationError(
                f"expected {self.independence} coefficients, got {len(coefficients)}"
            )
        return {"coefficient": np.asarray(list(coefficients), dtype=np.int64)}

    def decode(self, data: Dict[str, np.ndarray]) -> Any:
        return (self.tag, tuple(int(c) for c in data["coefficient"]))


class RoutedEdgeSchema(WireSchema):
    """One routed edge of the Dolev clique baseline (edge + group triple).

    Each message carries exactly one edge; the assigned group triple rides
    along as an index into the publicly computable triple list, so the
    charged size stays the reference's ``2⌈log2 n⌉`` bits per edge.
    """

    kind = "routed-edge"
    columns = ("u", "v", "triple")
    tag = "edge"
    fixed_length = 1

    def __init__(self, triples: Sequence[Tuple[int, int, int]]) -> None:
        self.triples = tuple(tuple(triple) for triple in triples)

    def element_bits(self, num_nodes: int) -> int:
        return edge_bits(num_nodes)

    def encode(self, payload: Any) -> Dict[str, np.ndarray]:
        tag, edge, triple = payload
        if tag != self.tag:
            raise SimulationError(f"schema {self.kind!r} cannot encode tag {tag!r}")
        return {
            "u": np.asarray([edge[0]], dtype=np.int64),
            "v": np.asarray([edge[1]], dtype=np.int64),
            "triple": np.asarray([self.triples.index(tuple(triple))], dtype=np.int64),
        }

    def decode(self, data: Dict[str, np.ndarray]) -> Any:
        return (
            self.tag,
            (int(data["u"][0]), int(data["v"][0])),
            self.triples[int(data["triple"][0])],
        )


#: Singleton schemas for the protocols' unparameterized message kinds.
A1_SAMPLE_SCHEMA = IdListSchema("a1-sample", "sample")
A2_EDGE_SCHEMA = EdgeListSchema("a2-edges", "edges")
A3_NX_SCHEMA = IdListSchema("a3-landmark-neighborhood", "NX")
A3_S_SCHEMA = IdListSchema("a3-candidate-set", "S")
A3_V_SCHEMA = IdListSchema("a3-withholding-set", "V")
A3_IN_X_SCHEMA = FlagSchema("a3-landmark-flag", "in_X")
A3_IN_U_SCHEMA = FlagSchema("a3-active-flag", "in_U")

#: The wire-schema registry: every registered message kind by name.
WIRE_SCHEMAS: Dict[str, WireSchema] = {}


def register_schema(schema: WireSchema) -> WireSchema:
    """Register ``schema`` under its kind (idempotent for the same object).

    Raises
    ------
    SimulationError
        When a *different* schema object is already registered under the
        same kind — two message kinds must never share a channel name.
    """
    existing = WIRE_SCHEMAS.get(schema.kind)
    if existing is not None and existing is not schema:
        raise SimulationError(f"wire schema kind {schema.kind!r} already registered")
    WIRE_SCHEMAS[schema.kind] = schema
    return schema


def schema_for(kind: str) -> WireSchema:
    """Return the registered schema for ``kind``.

    Raises
    ------
    SimulationError
        For unknown kinds.
    """
    try:
        return WIRE_SCHEMAS[kind]
    except KeyError:
        raise SimulationError(f"unknown wire schema kind {kind!r}") from None


for _schema in (
    A1_SAMPLE_SCHEMA,
    A2_EDGE_SCHEMA,
    A3_NX_SCHEMA,
    A3_S_SCHEMA,
    A3_V_SCHEMA,
    A3_IN_X_SCHEMA,
    A3_IN_U_SCHEMA,
):
    register_schema(_schema)
del _schema
