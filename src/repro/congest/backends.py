"""Pluggable kernel backends for the hot inner loops.

The batched phase kernels funnel their innermost array programs through a
small set of named operations — sorted-key membership (``CSRGraph.has_edges``),
packed-row popcount reductions (the chunked triangle-matrix rows of the dense
oracle), Horner evaluation of k-wise hash descriptors (A2), and the Δ(X)
landmark-incidence build (A3).  This module gives each operation a *backend*:

* ``backend="numpy"`` — the reference implementation, always available.  It
  is byte-for-byte the code that previously lived inline at the call sites.
* ``backend="numba"`` — optional JIT twins of the same loops.  ``numba`` is
  an optional dependency (``pip install repro[numba]``); when it is absent
  the registry degrades to the numpy backend with a single warning, so a
  ``backend="numba"`` run spec is portable across environments.

Backends are selected the same way ``kernel="pernode"|"batched"`` already
is: algorithms take a ``backend=`` constructor parameter (validated by
:func:`validate_backend`) and wrap their execution in :func:`use_backend`.
The active backend is thread-local, so sweep workers with different
settings never interfere.

The module also owns the ``chunk_bytes`` knob: the bound on the working-set
size of the streamed row blocks used by the chunked phase evaluators (dense
Δ(X) disjointness, fused ``has_edges`` receiver sweeps, packed popcount
reductions).  The default is sized to stay L2/L3-resident on current cores.

This module must not import anything from :mod:`repro` — it sits below both
``repro.graphs`` and ``repro.core`` in the import graph.
"""

from __future__ import annotations

import contextlib
import operator
import threading
import warnings
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional, Tuple

import numpy as np

#: The backend names algorithms accept, mirroring ``VALID_KERNELS``.
VALID_BACKENDS: Tuple[str, ...] = ("numpy", "numba")

#: Default bound (bytes) on the per-block working set of chunked phase
#: evaluation.  2 MiB keeps a row block plus its outputs L2-resident on
#: current cores while amortising the per-block numpy dispatch overhead.
DEFAULT_CHUNK_BYTES = 2 * 1024 * 1024

#: Popcount lookup table for packed-``uint8`` adjacency rows.
_POPCOUNT = np.array([bin(value).count("1") for value in range(256)], dtype=np.int64)


@dataclass(frozen=True)
class KernelBackend:
    """A named implementation of the four hot inner-loop operations.

    Every operation has identical semantics across backends; the
    differential suite pins numpy and numba executions byte-for-byte on
    every workload family.
    """

    name: str
    #: ``(sorted_keys, queries) -> bool[queries]`` — membership of each
    #: query in an ascending int64 key array (binary search).
    sorted_membership: Callable[[np.ndarray, np.ndarray], np.ndarray]
    #: ``(coefficient_rows, points, prime, range_size) -> bool[rows, points]``
    #: — Horner evaluation of each descriptor row at each point over
    #: GF(prime), testing ``h(x) % range_size == 0`` (A2's bucket-zero test).
    hash_zero_block: Callable[[np.ndarray, np.ndarray, int, int], np.ndarray]
    #: ``(indptr, indices, landmarks, num_nodes) -> int64[num_nodes, len(landmarks)]``
    #: — the Δ(X) landmark-incidence matrix: entry ``(v, j)`` is 1 iff
    #: vertex ``v`` is adjacent to landmark ``landmarks[j]``.
    landmark_incidence: Callable[[np.ndarray, np.ndarray, np.ndarray, int], np.ndarray]
    #: ``(packed, edge_u, edge_v) -> int64[edges]`` — per-edge common
    #: neighbourhood sizes from bit-packed adjacency rows (AND + popcount).
    edge_support_chunk: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray]


# ----------------------------------------------------------------------
# numpy reference implementations
# ----------------------------------------------------------------------


def _np_sorted_membership(sorted_keys: np.ndarray, queries: np.ndarray) -> np.ndarray:
    positions = np.searchsorted(sorted_keys, queries)
    found = np.zeros(queries.shape, dtype=bool)
    in_range = positions < sorted_keys.shape[0]
    found[in_range] = sorted_keys[positions[in_range]] == queries[in_range]
    return found


def _np_hash_zero_block(
    coefficient_rows: np.ndarray, points: np.ndarray, prime: int, range_size: int
) -> np.ndarray:
    reduced_points = (points % prime)[None, :]
    accumulator = np.zeros(
        (coefficient_rows.shape[0], points.shape[0]), dtype=np.int64
    )
    for index in range(coefficient_rows.shape[1] - 1, -1, -1):
        accumulator *= reduced_points
        accumulator += coefficient_rows[:, index : index + 1]
        accumulator %= prime
    return (accumulator % range_size) == 0


def _np_landmark_incidence(
    indptr: np.ndarray, indices: np.ndarray, landmarks: np.ndarray, num_nodes: int
) -> np.ndarray:
    incidence = np.zeros((num_nodes, landmarks.shape[0]), dtype=np.int64)
    for column, landmark in enumerate(landmarks.tolist()):
        incidence[indices[indptr[landmark] : indptr[landmark + 1]], column] = 1
    return incidence


def _np_edge_support_chunk(
    packed: np.ndarray, edge_u: np.ndarray, edge_v: np.ndarray
) -> np.ndarray:
    both = packed[edge_u] & packed[edge_v]
    return _POPCOUNT[both].sum(axis=1)


_NUMPY_BACKEND = KernelBackend(
    name="numpy",
    sorted_membership=_np_sorted_membership,
    hash_zero_block=_np_hash_zero_block,
    landmark_incidence=_np_landmark_incidence,
    edge_support_chunk=_np_edge_support_chunk,
)


# ----------------------------------------------------------------------
# optional numba twins
# ----------------------------------------------------------------------


def _build_numba_backend() -> Optional[KernelBackend]:
    try:
        import numba  # type: ignore[import-not-found]
    except Exception:  # pragma: no cover - exercised only without numba
        return None

    njit = numba.njit(cache=False, nogil=True)

    @njit
    def nb_sorted_membership(sorted_keys, queries):  # pragma: no cover - jit
        found = np.zeros(queries.shape[0], dtype=np.bool_)
        size = sorted_keys.shape[0]
        for index in range(queries.shape[0]):
            query = queries[index]
            low, high = 0, size
            while low < high:
                mid = (low + high) >> 1
                if sorted_keys[mid] < query:
                    low = mid + 1
                else:
                    high = mid
            if low < size and sorted_keys[low] == query:
                found[index] = True
        return found

    @njit
    def nb_hash_zero_block(
        coefficient_rows, points, prime, range_size
    ):  # pragma: no cover - jit
        rows = coefficient_rows.shape[0]
        order = coefficient_rows.shape[1]
        count = points.shape[0]
        zero = np.empty((rows, count), dtype=np.bool_)
        for row in range(rows):
            for column in range(count):
                point = points[column] % prime
                accumulator = np.int64(0)
                for index in range(order - 1, -1, -1):
                    accumulator = (
                        accumulator * point + coefficient_rows[row, index]
                    ) % prime
                zero[row, column] = (accumulator % range_size) == 0
        return zero

    @njit
    def nb_landmark_incidence(
        indptr, indices, landmarks, num_nodes
    ):  # pragma: no cover - jit
        incidence = np.zeros((num_nodes, landmarks.shape[0]), dtype=np.int64)
        for column in range(landmarks.shape[0]):
            landmark = landmarks[column]
            for position in range(indptr[landmark], indptr[landmark + 1]):
                incidence[indices[position], column] = 1
        return incidence

    popcount_table = _POPCOUNT.copy()

    @njit
    def nb_edge_support_chunk(packed, edge_u, edge_v):  # pragma: no cover - jit
        width = packed.shape[1]
        support = np.zeros(edge_u.shape[0], dtype=np.int64)
        for index in range(edge_u.shape[0]):
            total = np.int64(0)
            for byte in range(width):
                total += popcount_table[packed[edge_u[index], byte] & packed[edge_v[index], byte]]
            support[index] = total
        return support

    def sorted_membership(sorted_keys, queries):
        return nb_sorted_membership(
            np.ascontiguousarray(sorted_keys, dtype=np.int64),
            np.ascontiguousarray(queries, dtype=np.int64).ravel(),
        ).reshape(np.shape(queries))

    def hash_zero_block(coefficient_rows, points, prime, range_size):
        return nb_hash_zero_block(
            np.ascontiguousarray(coefficient_rows, dtype=np.int64),
            np.ascontiguousarray(points, dtype=np.int64),
            np.int64(prime),
            np.int64(range_size),
        )

    def landmark_incidence(indptr, indices, landmarks, num_nodes):
        return nb_landmark_incidence(
            np.ascontiguousarray(indptr, dtype=np.int64),
            np.ascontiguousarray(indices, dtype=np.int64),
            np.ascontiguousarray(landmarks, dtype=np.int64),
            np.int64(num_nodes),
        )

    def edge_support_chunk(packed, edge_u, edge_v):
        return nb_edge_support_chunk(
            np.ascontiguousarray(packed),
            np.ascontiguousarray(edge_u, dtype=np.int64),
            np.ascontiguousarray(edge_v, dtype=np.int64),
        )

    return KernelBackend(
        name="numba",
        sorted_membership=sorted_membership,
        hash_zero_block=hash_zero_block,
        landmark_incidence=landmark_incidence,
        edge_support_chunk=edge_support_chunk,
    )


# ----------------------------------------------------------------------
# registry and thread-local selection
# ----------------------------------------------------------------------

_REGISTRY: Dict[str, KernelBackend] = {"numpy": _NUMPY_BACKEND}
_numba_backend_built = False
_numba_fallback_warned = False


def register_backend(backend: KernelBackend) -> None:
    """Register (or replace) a backend under its name."""
    _REGISTRY[backend.name] = backend


def numba_available() -> bool:
    """True when the numba backend imported and registered successfully."""
    _ensure_numba()
    return "numba" in _REGISTRY


def available_backends() -> Tuple[str, ...]:
    """The names that resolve without fallback, in registration order."""
    _ensure_numba()
    return tuple(_REGISTRY)


def validate_backend(backend: str) -> str:
    """Validate a ``backend=`` constructor argument (mirrors ``validate_kernel``)."""
    if backend not in VALID_BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {VALID_BACKENDS}"
        )
    return backend


def validate_chunk_bytes(chunk_bytes: Optional[int]) -> Optional[int]:
    """Validate a ``chunk_bytes=`` constructor argument (``None`` = default)."""
    if chunk_bytes is None:
        return None
    try:
        value = operator.index(chunk_bytes)
    except TypeError:
        raise ValueError(
            f"chunk_bytes must be a positive integer, got {chunk_bytes!r}"
        ) from None
    if value < 1:
        raise ValueError(f"chunk_bytes must be positive, got {chunk_bytes}")
    return value


def _ensure_numba() -> None:
    global _numba_backend_built
    if not _numba_backend_built:
        _numba_backend_built = True
        backend = _build_numba_backend()
        if backend is not None:  # pragma: no cover - requires numba installed
            _REGISTRY[backend.name] = backend


def get_backend(name: str) -> KernelBackend:
    """Resolve a backend name, degrading ``numba -> numpy`` when absent.

    The degradation emits a single :class:`RuntimeWarning` per process; the
    resolved numpy backend is the reference implementation, so results are
    unchanged — only speed differs.
    """
    global _numba_fallback_warned
    validate_backend(name)
    _ensure_numba()
    backend = _REGISTRY.get(name)
    if backend is None:
        if not _numba_fallback_warned:
            _numba_fallback_warned = True
            warnings.warn(
                "backend='numba' requested but numba is not importable; "
                "falling back to the numpy backend",
                RuntimeWarning,
                stacklevel=2,
            )
        backend = _REGISTRY["numpy"]
    return backend


class _ActiveState(threading.local):
    backend: Optional[str]
    chunk_bytes: int

    def __init__(self) -> None:  # called once per thread
        self.backend = None
        self.chunk_bytes = DEFAULT_CHUNK_BYTES


_ACTIVE = _ActiveState()


def active_backend() -> KernelBackend:
    """The backend the current thread's phase kernels dispatch to."""
    return get_backend(_ACTIVE.backend or "numpy")


def active_chunk_bytes() -> int:
    """The current thread's bound on chunked-evaluation working sets."""
    return _ACTIVE.chunk_bytes


def chunk_rows(row_bytes: int, minimum: int = 1) -> int:
    """Rows per block so a block of ``row_bytes``-wide rows fits the bound."""
    return max(minimum, active_chunk_bytes() // max(int(row_bytes), 1))


@contextlib.contextmanager
def use_backend(
    backend: Optional[str] = None, chunk_bytes: Optional[int] = None
) -> Iterator[None]:
    """Select the backend / chunk size for the duration of a ``with`` block.

    ``None`` leaves the corresponding setting untouched, so algorithms can
    thread just the knobs they carry.  Settings are thread-local and restored
    on exit even when the block raises.
    """
    previous_backend = _ACTIVE.backend
    previous_chunk = _ACTIVE.chunk_bytes
    if backend is not None:
        _ACTIVE.backend = validate_backend(backend)
    if chunk_bytes is not None:
        _ACTIVE.chunk_bytes = validate_chunk_bytes(chunk_bytes)
    try:
        yield
    finally:
        _ACTIVE.backend = previous_backend
        _ACTIVE.chunk_bytes = previous_chunk
