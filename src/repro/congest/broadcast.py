"""The broadcast CONGEST model: one common message per node per round.

Table 1 cites the Drucker et al. lower bound in the *broadcast* CONGEST
model, where at each round a node sends the same single ``O(log n)``-bit
message to all of its neighbours (rather than a possibly different message
per link).  The model is strictly weaker than CONGEST, which is why a lower
bound proved there does not transfer to the standard model.

This simulator variant exists for completeness of the model family and for
experiments that want to quantify how much the per-link addressing of full
CONGEST buys: any protocol written for the broadcast model runs unchanged on
the standard simulator, but not vice versa.  The accounting rule is the
broadcast constraint taken literally: within one phase, the rounds charged
to a node are determined by the *total* bits it broadcasts (every neighbour
receives every message), and the phase cost is the maximum over nodes rather
than over directed links.

On the shared runtime kernel this is a pure policy override: delivery,
metrics and round-limit enforcement come from
:class:`~repro.congest.runtime.CongestRuntime`; only
:meth:`BroadcastCongestSimulator._phase_cost` differs, validating the
broadcast discipline and charging per source node.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from ..errors import TopologyError
from ..types import NodeId
from .runtime import PhaseTraffic
from .simulator import CongestSimulator


class BroadcastCongestSimulator(CongestSimulator):
    """Phase-based simulator for the broadcast CONGEST model.

    The programming interface is identical to
    :class:`~repro.congest.simulator.CongestSimulator` except that per-link
    ``send`` is rejected: node programs must use
    :meth:`~repro.congest.node.NodeContext.broadcast`, which queues the same
    payload on every incident edge.  The phase accounting then charges each
    node ``⌈broadcast bits / bandwidth⌉`` rounds and takes the maximum over
    nodes.
    """

    def _phase_cost(self, traffic: PhaseTraffic) -> Tuple[int, int]:
        """Validate the broadcast discipline and charge per-node rounds.

        Raises
        ------
        TopologyError
            If any node queued different payload sequences for different
            neighbours (i.e. used point-to-point addressing), which the
            broadcast model does not allow.
        """
        node_bits = self._check_broadcast_discipline(traffic) if traffic.count else 0
        rounds = self.bandwidth.rounds_for_bits(node_bits, self.num_nodes)
        return rounds, node_bits

    def _check_broadcast_discipline(self, traffic: PhaseTraffic) -> int:
        """Require every sender's per-neighbour message sequences to agree.

        Returns the maximum per-node broadcast load in bits, counting each
        broadcast message once (every neighbour hears the same transmission,
        so copies are not cumulative the way per-link sends are).
        """
        per_source: Dict[NodeId, Dict[NodeId, List[Tuple[Any, int]]]] = {}
        untyped = int(traffic.payloads.shape[0])
        src_list = traffic.src[:untyped].tolist()
        dst_list = traffic.dst[:untyped].tolist()
        bits_list = traffic.bits[:untyped].tolist()
        payloads = traffic.payloads
        for index, source in enumerate(src_list):
            per_source.setdefault(source, {}).setdefault(dst_list[index], []).append(
                (payloads[index], bits_list[index])
            )
        # Columnar sends join the same discipline check through their schema
        # codec (the broadcast model is a validation layer, not a hot path).
        for channel in traffic.channels:
            offsets = channel.offsets
            channel_bits = channel.bits.tolist()
            for index, (source, destination) in enumerate(
                zip(channel.src.tolist(), channel.dst.tolist())
            ):
                payload = channel.schema.decode(
                    {
                        name: column[offsets[index] : offsets[index + 1]]
                        for name, column in channel.data.items()
                    }
                )
                per_source.setdefault(source, {}).setdefault(
                    destination, []
                ).append((payload, channel_bits[index]))
        max_node_bits = 0
        for source, per_destination in per_source.items():
            neighbors = self._contexts[source].neighbors
            reference = (
                per_destination.get(next(iter(neighbors)), []) if neighbors else []
            )
            for neighbor in neighbors:
                if per_destination.get(neighbor, []) != reference:
                    raise TopologyError(
                        f"node {source} sent per-link messages; the "
                        "broadcast CONGEST model only supports broadcast()"
                    )
            if set(per_destination) - set(neighbors):
                raise TopologyError(
                    f"node {source} addressed a non-neighbour in the "
                    "broadcast CONGEST model"
                )
            max_node_bits = max(
                max_node_bits, sum(size for _, size in reference)
            )
        return max_node_bits

    @property
    def model_name(self) -> str:
        """Human-readable name of the communication model."""
        return "CONGEST broadcast"
