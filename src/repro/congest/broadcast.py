"""The broadcast CONGEST model: one common message per node per round.

Table 1 cites the Drucker et al. lower bound in the *broadcast* CONGEST
model, where at each round a node sends the same single ``O(log n)``-bit
message to all of its neighbours (rather than a possibly different message
per link).  The model is strictly weaker than CONGEST, which is why a lower
bound proved there does not transfer to the standard model.

This simulator variant exists for completeness of the model family and for
experiments that want to quantify how much the per-link addressing of full
CONGEST buys: any protocol written for the broadcast model runs unchanged on
the standard simulator, but not vice versa.  The accounting rule is the
broadcast constraint taken literally: within one phase, the rounds charged
to a node are determined by the *total* bits it broadcasts (every neighbour
receives every message), and the phase cost is the maximum over nodes rather
than over directed links.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..errors import RoundLimitExceededError, SimulationError, TopologyError
from ..graphs.graph import Graph
from ..types import NodeId
from .metrics import PhaseReport
from .node import NodeContext
from .simulator import CongestSimulator
from .wire import default_bit_size


class BroadcastCongestSimulator(CongestSimulator):
    """Phase-based simulator for the broadcast CONGEST model.

    The programming interface is identical to
    :class:`~repro.congest.simulator.CongestSimulator` except that per-link
    ``send`` is rejected: node programs must use
    :meth:`~repro.congest.node.NodeContext.broadcast`, which queues the same
    payload on every incident edge.  The phase accounting then charges each
    node ``⌈broadcast bits / bandwidth⌉`` rounds and takes the maximum over
    nodes.
    """

    def run_phase(self, name: str = "phase", extra_rounds: int = 0) -> PhaseReport:
        """Deliver queued broadcasts and charge broadcast-model rounds.

        Raises
        ------
        TopologyError
            If any node queued different payload sequences for different
            neighbours (i.e. used point-to-point addressing), which the
            broadcast model does not allow.
        """
        per_node_bits: Dict[NodeId, int] = {}
        deliveries: Dict[NodeId, List[Tuple[NodeId, Any]]] = {
            context.node_id: [] for context in self._contexts
        }
        total_messages = 0
        total_bits = 0
        received_bits: Dict[NodeId, int] = {}
        received_msgs: Dict[NodeId, int] = {}

        for context in self._contexts:
            outgoing = context._drain_outgoing()
            if not outgoing:
                continue
            per_destination: Dict[NodeId, List[Tuple[Any, Optional[int]]]] = {}
            for destination, payload, bits in outgoing:
                per_destination.setdefault(destination, []).append((payload, bits))
            neighbors = context.neighbors
            reference = per_destination.get(next(iter(neighbors)), []) if neighbors else []
            for neighbor in neighbors:
                if per_destination.get(neighbor, []) != reference:
                    raise TopologyError(
                        f"node {context.node_id} sent per-link messages; the "
                        "broadcast CONGEST model only supports broadcast()"
                    )
            if set(per_destination) - set(neighbors):
                raise TopologyError(
                    f"node {context.node_id} addressed a non-neighbour in the "
                    "broadcast CONGEST model"
                )
            node_bits = sum(
                size if size is not None else default_bit_size(payload, self.num_nodes)
                for payload, size in reference
            )
            per_node_bits[context.node_id] = node_bits
            for neighbor in neighbors:
                for payload, size in reference:
                    actual = (
                        size
                        if size is not None
                        else default_bit_size(payload, self.num_nodes)
                    )
                    deliveries[neighbor].append((context.node_id, payload))
                    total_messages += 1
                    total_bits += actual
                    received_bits[neighbor] = received_bits.get(neighbor, 0) + actual
                    received_msgs[neighbor] = received_msgs.get(neighbor, 0) + 1

        max_node_bits = max(per_node_bits.values()) if per_node_bits else 0
        rounds = self._bandwidth.rounds_for_bits(max_node_bits, self.num_nodes)
        rounds += extra_rounds

        report = PhaseReport(
            name=name,
            rounds=rounds,
            messages=total_messages,
            bits=total_bits,
            max_link_bits=max_node_bits,
        )
        self._metrics.record_phase(report)
        for node, bits in received_bits.items():
            self._metrics.record_delivery(node, bits, received_msgs.get(node, 0))
        for context in self._contexts:
            context._deliver(deliveries[context.node_id])

        if self._round_limit is not None and self._metrics.total_rounds > self._round_limit:
            raise RoundLimitExceededError(
                f"round budget of {self._round_limit} exceeded "
                f"(now at {self._metrics.total_rounds} rounds)"
            )
        return report

    @property
    def model_name(self) -> str:
        """Human-readable name of the communication model."""
        return "CONGEST broadcast"
