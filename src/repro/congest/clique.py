"""The CONGEST clique model: all-to-all communication topology.

Section 2 of the paper: "the CONGEST clique model ... allows an algorithm to
transfer a O(log n)-bit message per round between any two nodes not
necessarily adjacent in G".  The input graph ``G`` is still the problem
instance (each node initially knows its incident edges), but the
communication topology is the complete graph ``K_n``.

The clique simulator reuses the phase-based accounting of
:class:`~repro.congest.simulator.CongestSimulator`; only the communication
targets differ.  It is used by the Dolev et al. baseline (Table 1, row 1)
and by the lower-bound experiments (Theorem 3 is proved against the clique,
which makes the bound stronger).
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..graphs.graph import Graph
from ..types import NodeId
from .simulator import CongestSimulator


class CliqueSimulator(CongestSimulator):
    """Phase-based simulator for the CONGEST clique model.

    The constructor signature is identical to
    :class:`~repro.congest.simulator.CongestSimulator`; the only difference
    is that every node may address every other node directly, so per-phase
    round accounting runs over all ``n(n-1)`` directed node pairs instead of
    only the edges of ``G``.
    """

    def _communication_targets(
        self, graph: Graph, node: NodeId
    ) -> Optional[Iterable[NodeId]]:
        """All other nodes: the communication topology is the complete graph.

        Returns the runtime kernel's ``None`` sentinel, which the
        :class:`~repro.congest.node.NodeContext` interprets as "every node
        but myself" without materialising ``n - 1`` identifiers per node —
        keeping clique construction O(n) instead of O(n²).
        """
        return None

    @property
    def model_name(self) -> str:
        """Human-readable name of the communication model."""
        return "CONGEST clique"
