"""Literal round-by-round CONGEST engine for generator-style node programs.

The phase-based :class:`~repro.congest.simulator.CongestSimulator` is the
workhorse used by the paper's algorithms, because they are phase-synchronous
and the bulk accounting is exact for that class of protocols.  This module
provides the complementary *strict* engine: node programs are Python
generators that ``yield`` once per round, and the engine enforces the raw
CONGEST constraint that a single round carries at most one bandwidth-sized
message per directed edge.

The strict engine serves three purposes:

* it documents the model precisely (one message per edge per round, no bulk
  shortcuts),
* it lets the test suite cross-validate the phase-based accounting: a
  phase-synchronous protocol implemented on both engines must report the
  same number of rounds,
* it is a convenient substrate for tiny pedagogical protocols (the examples
  use it to show what a literal round looks like).

Both engines share one execution kernel
(:class:`~repro.congest.runtime.CongestRuntime`): context construction,
RNG seeding, the message plane, delivery fan-out (with the kernel's
O(touched-nodes) dirty-tracked inbox resets — an idle round on a large
network clears only the inboxes the previous round filled) and metrics
recording are the same code paths the phase simulator uses.  What makes
this engine *strict* is purely a validation hook —
:meth:`RoundContext.send` rejects a second message on the same link within
a round and any message exceeding the per-round bandwidth before it
reaches the plane.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Set, Tuple

import numpy as np

from ..errors import BandwidthExceededError, ProtocolError, SimulationError, TopologyError
from ..graphs.graph import Graph
from ..types import NodeId
from .bandwidth import DEFAULT_BANDWIDTH, BandwidthPolicy
from .metrics import ExecutionMetrics, PhaseReport
from .runtime import CongestRuntime, EMPTY_INBOX, Inbox, MessagePlane, inbox_pairs
from .wire import default_bit_size

#: A node program: receives its RoundContext and yields once per round.
NodeProgram = Callable[["RoundContext"], Generator[None, None, None]]


class RoundContext:
    """Per-node interface for the strict round-by-round engine.

    Unlike the phase-based :class:`~repro.congest.node.NodeContext`, sends
    are limited to **one message per neighbour per round**, and each message
    must individually fit into the per-round bandwidth.  Those two checks
    are this class's whole job; accepted messages land in the shared
    message plane exactly like phase-simulator sends.
    """

    __slots__ = (
        "node_id",
        "num_nodes",
        "neighbors",
        "rng",
        "state",
        "_bandwidth_bits",
        "_plane",
        "_sent_to",
        "_inbox",
    )

    def __init__(
        self,
        node_id: NodeId,
        num_nodes: int,
        neighbors: frozenset[NodeId],
        rng: np.random.Generator,
        bandwidth_bits: int,
        plane: MessagePlane,
    ) -> None:
        self.node_id = node_id
        self.num_nodes = num_nodes
        self.neighbors = neighbors
        self.rng = rng
        self.state: Dict[str, Any] = {}
        self._bandwidth_bits = bandwidth_bits
        self._plane = plane
        self._sent_to: Set[NodeId] = set()
        self._inbox: Inbox = EMPTY_INBOX

    def send(self, destination: NodeId, payload: Any, bits: Optional[int] = None) -> None:
        """Send one message to ``destination`` this round.

        Raises
        ------
        TopologyError
            If ``destination`` is not a neighbour.
        ProtocolError
            If a message was already queued for ``destination`` this round.
        BandwidthExceededError
            If the message exceeds the per-round bandwidth.
        """
        if destination not in self.neighbors:
            raise TopologyError(
                f"node {self.node_id} has no edge to {destination}"
            )
        if destination in self._sent_to:
            raise ProtocolError(
                f"node {self.node_id} already sent to {destination} this round"
            )
        size = bits if bits is not None else default_bit_size(payload, self.num_nodes)
        if size > self._bandwidth_bits:
            raise BandwidthExceededError(
                f"message of {size} bits exceeds the per-round bandwidth of "
                f"{self._bandwidth_bits} bits; use the phase-based simulator "
                "for multi-round transfers"
            )
        self._sent_to.add(destination)
        self._plane.append(self.node_id, destination, payload, size)

    def received(self) -> List[Tuple[NodeId, Any]]:
        """Return the ``(sender, payload)`` pairs delivered at the start of this round."""
        return list(inbox_pairs(self._inbox))

    def _start_round(self) -> None:
        self._sent_to.clear()

    def _deliver(self, messages: Inbox) -> None:
        self._inbox = messages


class RoundEngine:
    """Execute generator node programs round by round.

    Parameters
    ----------
    graph:
        The network topology.
    bandwidth:
        Per-edge per-round bandwidth policy.
    seed:
        Seed for per-node private randomness.
    max_rounds:
        Safety limit; exceeding it raises :class:`SimulationError` so a
        non-terminating protocol cannot hang the test suite.
    """

    def __init__(
        self,
        graph: Graph,
        bandwidth: BandwidthPolicy = DEFAULT_BANDWIDTH,
        seed: Optional[int | np.random.Generator] = None,
        max_rounds: int = 1_000_000,
    ) -> None:
        self._runtime = CongestRuntime(graph, bandwidth)
        self._max_rounds = max_rounds
        bits = bandwidth.bits_per_round(graph.num_nodes)
        self._runtime.build_contexts(
            seed,
            lambda node, rng: RoundContext(
                node_id=node,
                num_nodes=graph.num_nodes,
                neighbors=graph.neighbors(node),
                rng=rng,
                bandwidth_bits=bits,
                plane=self._runtime.plane,
            ),
        )

    @property
    def runtime(self) -> CongestRuntime:
        """The shared execution kernel this engine drives."""
        return self._runtime

    @property
    def _contexts(self) -> List[RoundContext]:
        # Single source of truth: the kernel owns the context list it
        # delivers to.
        return self._runtime.contexts

    @property
    def contexts(self) -> List[RoundContext]:
        """The per-node round contexts, indexed by node identifier."""
        return self._runtime.contexts

    @property
    def metrics(self) -> ExecutionMetrics:
        """Execution metrics accumulated so far."""
        return self._runtime.metrics

    def run(self, program: NodeProgram) -> int:
        """Run ``program`` on every node until all generators finish.

        Returns
        -------
        int
            The number of rounds executed.
        """
        generators: Dict[NodeId, Generator[None, None, None]] = {
            context.node_id: program(context) for context in self._contexts
        }
        active = dict(generators)
        rounds = 0
        run_messages = 0
        run_bits = 0
        # Prime every generator: execution up to the first yield is the
        # node's round-1 computation and sends.
        finished = [node for node, gen in active.items() if _advance(gen)]
        for node in finished:
            del active[node]

        while active or not self._runtime.plane.is_empty:
            if rounds >= self._max_rounds:
                raise SimulationError(
                    f"protocol did not terminate within {self._max_rounds} rounds"
                )
            rounds += 1
            traffic = self._runtime.exchange()
            run_messages += traffic.count
            run_bits += traffic.total_bits
            for context in self._contexts:
                context._start_round()
            finished = [node for node, gen in active.items() if _advance(gen)]
            for node in finished:
                del active[node]

        report = PhaseReport(
            name="strict-run",
            rounds=rounds,
            messages=run_messages,
            bits=run_bits,
            max_link_bits=self._runtime.bandwidth.bits_per_round(
                self._runtime.graph.num_nodes
            ),
        )
        # One phase report covers the whole run; record_phase keeps the
        # ExecutionMetrics invariants (totals = sum of phases) in one place.
        self._runtime.metrics.record_phase(report)
        return rounds


def _advance(generator: Generator[None, None, None]) -> bool:
    """Advance a node program by one round; return ``True`` when it finished."""
    try:
        next(generator)
        return False
    except StopIteration:
        return True
