"""Literal round-by-round CONGEST engine for generator-style node programs.

The phase-based :class:`~repro.congest.simulator.CongestSimulator` is the
workhorse used by the paper's algorithms, because they are phase-synchronous
and the bulk accounting is exact for that class of protocols.  This module
provides the complementary *strict* engine: node programs are Python
generators that ``yield`` once per round, and the engine enforces the raw
CONGEST constraint that a single round carries at most one bandwidth-sized
message per directed edge.

The strict engine serves three purposes:

* it documents the model precisely (one message per edge per round, no bulk
  shortcuts),
* it lets the test suite cross-validate the phase-based accounting: a
  phase-synchronous protocol implemented on both engines must report the
  same number of rounds,
* it is a convenient substrate for tiny pedagogical protocols (the examples
  use it to show what a literal round looks like).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

import numpy as np

from ..errors import BandwidthExceededError, ProtocolError, SimulationError, TopologyError
from ..graphs.graph import Graph
from ..types import NodeId
from .bandwidth import DEFAULT_BANDWIDTH, BandwidthPolicy
from .metrics import ExecutionMetrics, PhaseReport
from .wire import default_bit_size

#: A node program: receives its RoundContext and yields once per round.
NodeProgram = Callable[["RoundContext"], Generator[None, None, None]]


class RoundContext:
    """Per-node interface for the strict round-by-round engine.

    Unlike the phase-based :class:`~repro.congest.node.NodeContext`, sends
    are limited to **one message per neighbour per round**, and each message
    must individually fit into the per-round bandwidth.
    """

    __slots__ = (
        "node_id",
        "num_nodes",
        "neighbors",
        "rng",
        "state",
        "_bandwidth_bits",
        "_pending",
        "_inbox",
    )

    def __init__(
        self,
        node_id: NodeId,
        num_nodes: int,
        neighbors: frozenset[NodeId],
        rng: np.random.Generator,
        bandwidth_bits: int,
    ) -> None:
        self.node_id = node_id
        self.num_nodes = num_nodes
        self.neighbors = neighbors
        self.rng = rng
        self.state: Dict[str, Any] = {}
        self._bandwidth_bits = bandwidth_bits
        self._pending: Dict[NodeId, Tuple[Any, int]] = {}
        self._inbox: List[Tuple[NodeId, Any]] = []

    def send(self, destination: NodeId, payload: Any, bits: Optional[int] = None) -> None:
        """Send one message to ``destination`` this round.

        Raises
        ------
        TopologyError
            If ``destination`` is not a neighbour.
        ProtocolError
            If a message was already queued for ``destination`` this round.
        BandwidthExceededError
            If the message exceeds the per-round bandwidth.
        """
        if destination not in self.neighbors:
            raise TopologyError(
                f"node {self.node_id} has no edge to {destination}"
            )
        if destination in self._pending:
            raise ProtocolError(
                f"node {self.node_id} already sent to {destination} this round"
            )
        size = bits if bits is not None else default_bit_size(payload, self.num_nodes)
        if size > self._bandwidth_bits:
            raise BandwidthExceededError(
                f"message of {size} bits exceeds the per-round bandwidth of "
                f"{self._bandwidth_bits} bits; use the phase-based simulator "
                "for multi-round transfers"
            )
        self._pending[destination] = (payload, size)

    def received(self) -> List[Tuple[NodeId, Any]]:
        """Return the ``(sender, payload)`` pairs delivered at the start of this round."""
        return list(self._inbox)

    def _drain(self) -> Dict[NodeId, Tuple[Any, int]]:
        pending = self._pending
        self._pending = {}
        return pending

    def _deliver(self, messages: List[Tuple[NodeId, Any]]) -> None:
        self._inbox = messages


class RoundEngine:
    """Execute generator node programs round by round.

    Parameters
    ----------
    graph:
        The network topology.
    bandwidth:
        Per-edge per-round bandwidth policy.
    seed:
        Seed for per-node private randomness.
    max_rounds:
        Safety limit; exceeding it raises :class:`SimulationError` so a
        non-terminating protocol cannot hang the test suite.
    """

    def __init__(
        self,
        graph: Graph,
        bandwidth: BandwidthPolicy = DEFAULT_BANDWIDTH,
        seed: Optional[int | np.random.Generator] = None,
        max_rounds: int = 1_000_000,
    ) -> None:
        if graph.num_nodes < 1:
            raise SimulationError("cannot simulate an empty network")
        self._graph = graph
        self._bandwidth = bandwidth
        self._max_rounds = max_rounds
        self._metrics = ExecutionMetrics()
        root_rng = (
            seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        )
        child_seeds = root_rng.integers(0, 2**63 - 1, size=graph.num_nodes)
        bits = bandwidth.bits_per_round(graph.num_nodes)
        self._contexts = [
            RoundContext(
                node_id=node,
                num_nodes=graph.num_nodes,
                neighbors=graph.neighbors(node),
                rng=np.random.default_rng(int(child_seeds[node])),
                bandwidth_bits=bits,
            )
            for node in graph.nodes()
        ]

    @property
    def contexts(self) -> List[RoundContext]:
        """The per-node round contexts, indexed by node identifier."""
        return self._contexts

    @property
    def metrics(self) -> ExecutionMetrics:
        """Execution metrics accumulated so far."""
        return self._metrics

    def run(self, program: NodeProgram) -> int:
        """Run ``program`` on every node until all generators finish.

        Returns
        -------
        int
            The number of rounds executed.
        """
        generators: Dict[NodeId, Generator[None, None, None]] = {
            context.node_id: program(context) for context in self._contexts
        }
        active = dict(generators)
        rounds = 0
        # Prime every generator: execution up to the first yield is the
        # node's round-1 computation and sends.
        finished = [node for node, gen in active.items() if _advance(gen)]
        for node in finished:
            del active[node]

        while active or any(ctx._pending for ctx in self._contexts):
            if rounds >= self._max_rounds:
                raise SimulationError(
                    f"protocol did not terminate within {self._max_rounds} rounds"
                )
            rounds += 1
            self._exchange(rounds)
            finished = [node for node, gen in active.items() if _advance(gen)]
            for node in finished:
                del active[node]

        report = PhaseReport(
            name="strict-run",
            rounds=rounds,
            messages=self._metrics.total_messages,
            bits=self._metrics.total_bits,
            max_link_bits=self._bandwidth.bits_per_round(self._graph.num_nodes),
        )
        # Messages/bits were recorded per round by _exchange; only add rounds.
        self._metrics.phases.append(report)
        self._metrics.total_rounds += rounds
        return rounds

    def _exchange(self, round_number: int) -> None:
        deliveries: Dict[NodeId, List[Tuple[NodeId, Any]]] = {
            context.node_id: [] for context in self._contexts
        }
        for context in self._contexts:
            for destination, (payload, size) in context._drain().items():
                deliveries[destination].append((context.node_id, payload))
                self._metrics.total_messages += 1
                self._metrics.total_bits += size
                self._metrics.record_delivery(destination, size, 1)
        for context in self._contexts:
            context._deliver(deliveries[context.node_id])


def _advance(generator: Generator[None, None, None]) -> bool:
    """Advance a node program by one round; return ``True`` when it finished."""
    try:
        next(generator)
        return False
    except StopIteration:
        return True
