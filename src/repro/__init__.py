"""repro — reproduction of *Triangle Finding and Listing in CONGEST Networks*.

This package implements, from scratch, the algorithms, substrates and
experiments of Izumi & Le Gall (PODC 2017):

* :mod:`repro.graphs` — graph representation, synthetic workload generators
  and centralized triangle ground truth,
* :mod:`repro.hashing` — 3-wise independent hash families (Wegman–Carter),
* :mod:`repro.congest` — round-accurate CONGEST and CONGEST-clique
  simulators,
* :mod:`repro.core` — the paper's algorithms (A1, A2, A3, Theorem 1 finding,
  Theorem 2 listing), the baselines and the lower-bound accounting,
* :mod:`repro.analysis` — complexity predictions, output verification, the
  experiment harness and the Table-1 renderer,
* :mod:`repro.api` — the declarative front door: algorithm/workload
  registries, JSON run/sweep specs, the JSONL experiment store, and the
  ``repro`` command line (``python -m repro``),
* :mod:`repro.service` — the persistent worker-fleet experiment
  service: a dispatcher that leases sweep cells to long-lived warm
  worker processes (``repro serve`` / ``submit`` / ``status``).

Quickstart::

    from repro.graphs import gnp_random_graph
    from repro.core import TriangleListing

    graph = gnp_random_graph(60, 0.3, seed=7)
    result = TriangleListing().run(graph, seed=7)
    print(result.summary())
    print(f"recall = {result.listing_recall(graph):.2f}")

or, declaratively (the same run, pinned by test to the constructor path)::

    from repro.api import AlgorithmSpec, RunSpec, WorkloadSpec

    spec = RunSpec(
        algorithm=AlgorithmSpec("theorem2-listing"),
        workload=WorkloadSpec("gnp", {"num_nodes": 60, "edge_probability": 0.3}),
        seed=7,
    )
    print(spec.run())
"""

from ._version import __version__
from . import api
from . import dynamic
from . import service
from .errors import (
    AnalysisError,
    BandwidthExceededError,
    GraphError,
    HashingError,
    ProtocolError,
    ReproError,
    RoundLimitExceededError,
    ServiceError,
    SimulationError,
    TopologyError,
    VerificationError,
)
from .types import (
    Edge,
    NodeId,
    Triangle,
    edges_of_triangles,
    make_edge,
    make_triangle,
    triangle_edges,
)

__all__ = [
    "__version__",
    "api",
    "dynamic",
    "service",
    "AnalysisError",
    "BandwidthExceededError",
    "GraphError",
    "HashingError",
    "ProtocolError",
    "ReproError",
    "RoundLimitExceededError",
    "ServiceError",
    "SimulationError",
    "TopologyError",
    "VerificationError",
    "Edge",
    "NodeId",
    "Triangle",
    "edges_of_triangles",
    "make_edge",
    "make_triangle",
    "triangle_edges",
]
