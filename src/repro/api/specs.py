"""Declarative, JSON-serializable run and sweep specifications.

A spec is a frozen description of an experiment that round-trips
losslessly through JSON (``spec == Spec.from_json(spec.to_json())``) and
*resolves* to the existing public classes — running a spec is, by
construction, identical to wiring the same constructors up by hand:

* :class:`AlgorithmSpec` — a registered algorithm name plus constructor
  parameters,
* :class:`WorkloadSpec` — a registered workload name plus generator
  parameters (pin ``seed`` in the parameters to hold the workload fixed
  across a sweep; leave it out to resample the workload from each cell's
  seed),
* :class:`RunSpec` — one (algorithm, workload, seed) execution,
* :class:`SweepSpec` — an (algorithms × seeds) grid over one workload,
  which feeds :meth:`repro.analysis.SweepRunner.run_grid` unchanged.

Documents are versioned (``"schema": 1``) so stored specs stay readable
as the format evolves.  All parameter values must be JSON scalars,
arrays or objects; tuples are canonicalised to lists at construction so
equality after a JSON round-trip is exact.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..analysis.experiments import (
    ExperimentRecord,
    SweepCell,
    SweepRunner,
    run_single,
)
from ..errors import AnalysisError
from .records import canonical_json
from .registry import AlgorithmEntry, WorkloadEntry, get_algorithm, get_workload

__all__ = [
    "SPEC_SCHEMA_VERSION",
    "AlgorithmSpec",
    "WorkloadSpec",
    "RunSpec",
    "SweepSpec",
    "AlgorithmFactory",
    "WorkloadFactory",
    "run_specs_to_cells",
    "load_spec",
]

#: Version stamped into every serialized spec document.
SPEC_SCHEMA_VERSION = 1


def _canonical_value(value: Any, where: str) -> Any:
    """Return ``value`` restricted and canonicalised to JSON types.

    Tuples become lists and dictionary keys must be strings, so a spec
    compares equal to itself after a JSON round-trip.  Anything that JSON
    cannot represent is rejected here, at construction, instead of
    surfacing later as a serialization failure inside the store.
    """
    if isinstance(value, float) and not math.isfinite(value):
        raise AnalysisError(
            f"{where}: NaN/Infinity cannot be represented in JSON, got {value!r}"
        )
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_canonical_value(item, where) for item in value]
    if isinstance(value, Mapping):
        canonical = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise AnalysisError(
                    f"{where}: mapping keys must be strings, got {key!r}"
                )
            canonical[key] = _canonical_value(item, where)
        return canonical
    raise AnalysisError(
        f"{where}: parameter values must be JSON scalars, arrays or "
        f"objects, got {type(value).__name__} ({value!r})"
    )


def _canonical_params(params: Optional[Mapping[str, Any]], where: str) -> Dict[str, Any]:
    if params is None:
        return {}
    return {key: _canonical_value(value, where) for key, value in dict(params).items()}


def _require_mapping(payload: Any, where: str) -> Mapping[str, Any]:
    """Reject non-object document fields with a catchable error.

    Everything reachable from a user-supplied JSON file must fail as
    :class:`AnalysisError` (the CLI's exit-2 contract), never as a raw
    ``TypeError``/``KeyError`` from indexing a string.
    """
    if not isinstance(payload, Mapping):
        raise AnalysisError(
            f"{where} must be a JSON object, got {type(payload).__name__} "
            f"({payload!r})"
        )
    return payload


def _check_schema_version(payload: Mapping[str, Any], where: str) -> None:
    version = payload.get("schema", SPEC_SCHEMA_VERSION)
    if not isinstance(version, int) or version < 1 or version > SPEC_SCHEMA_VERSION:
        raise AnalysisError(
            f"{where}: unsupported spec schema version {version!r} "
            f"(this build reads versions 1..{SPEC_SCHEMA_VERSION})"
        )


@dataclass(frozen=True)
class AlgorithmSpec:
    """A registered algorithm name plus constructor parameters."""

    name: str
    params: Mapping[str, Any] = field(default_factory=dict)
    #: Optional display label; sweeps require distinct labels when the
    #: same algorithm appears twice with different parameters.
    label: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "params", _canonical_params(self.params, f"algorithm {self.name!r}")
        )
        if self.label is not None and not isinstance(self.label, str):
            raise AnalysisError(
                f"algorithm label must be a string, got {self.label!r}"
            )

    def __hash__(self) -> int:
        # The generated frozen-dataclass hash would choke on the params
        # dict; hash the canonical JSON form instead (order-insensitive,
        # consistent with the generated __eq__).
        return hash((self.name, json.dumps(self.params, sort_keys=True), self.label))

    @property
    def display_label(self) -> str:
        """The label records are grouped under (defaults to the name)."""
        return self.label if self.label is not None else self.name

    def entry(self) -> AlgorithmEntry:
        """Resolve the registry entry this spec names."""
        return get_algorithm(self.name)

    def build(self) -> Any:
        """Instantiate the algorithm exactly as the direct constructor would."""
        return self.entry().build(self.params)

    def to_dict(self) -> Dict[str, Any]:
        """Return the JSON-ready document form."""
        payload: Dict[str, Any] = {"name": self.name, "params": dict(self.params)}
        if self.label is not None:
            payload["label"] = self.label
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "AlgorithmSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        payload = _require_mapping(payload, "algorithm spec")
        if "name" not in payload:
            raise AnalysisError("algorithm spec is missing 'name'")
        return cls(
            name=str(payload["name"]),
            params=_require_mapping(
                payload.get("params", {}), "algorithm spec 'params'"
            ),
            label=payload.get("label"),
        )


@dataclass(frozen=True)
class WorkloadSpec:
    """A registered workload name plus generator parameters."""

    name: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "params", _canonical_params(self.params, f"workload {self.name!r}")
        )

    def __hash__(self) -> int:
        # See AlgorithmSpec.__hash__: the params dict needs a canonical form.
        return hash((self.name, json.dumps(self.params, sort_keys=True)))

    def entry(self) -> WorkloadEntry:
        """Resolve the registry entry this spec names."""
        return get_workload(self.name)

    def build(self, seed: Optional[int] = None) -> Any:
        """Build the workload graph (``seed`` is the per-run harness seed)."""
        return self.entry().build(self.params, seed=seed)

    def factory(self) -> "WorkloadFactory":
        """Return the picklable ``seed -> Graph`` factory for sweep cells."""
        return WorkloadFactory(self)

    def to_dict(self) -> Dict[str, Any]:
        """Return the JSON-ready document form."""
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "WorkloadSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        payload = _require_mapping(payload, "workload spec")
        if "name" not in payload:
            raise AnalysisError("workload spec is missing 'name'")
        return cls(
            name=str(payload["name"]),
            params=_require_mapping(
                payload.get("params", {}), "workload spec 'params'"
            ),
        )


@dataclass(frozen=True)
class AlgorithmFactory:
    """Picklable zero-argument factory over an :class:`AlgorithmSpec`.

    This is what sweep cells carry into worker processes: building from
    the spec in the worker avoids shipping (and sharing) algorithm
    instances, and two cells with the same spec pickle to the same bytes
    — which is the workload-cache identity the sweep scheduler keys on.
    """

    spec: AlgorithmSpec

    def __call__(self) -> Any:
        return self.spec.build()


@dataclass(frozen=True)
class WorkloadFactory:
    """Picklable ``seed -> Graph`` factory over a :class:`WorkloadSpec`."""

    spec: WorkloadSpec

    def __call__(self, seed: Optional[int] = None) -> Any:
        return self.spec.build(seed=seed)


@dataclass(frozen=True)
class RunSpec:
    """One (algorithm, workload, seed) execution, as a JSON document."""

    algorithm: AlgorithmSpec
    workload: WorkloadSpec
    seed: int = 0
    experiment: str = "run"

    def to_dict(self) -> Dict[str, Any]:
        """Return the JSON-ready document form (versioned)."""
        return {
            "schema": SPEC_SCHEMA_VERSION,
            "kind": "run",
            "experiment": self.experiment,
            "algorithm": self.algorithm.to_dict(),
            "workload": self.workload.to_dict(),
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        payload = _require_mapping(payload, "run spec")
        _check_schema_version(payload, "run spec")
        kind = payload.get("kind", "run")
        if kind != "run":
            raise AnalysisError(f"expected a run spec, got kind={kind!r}")
        missing = {"algorithm", "workload"} - set(payload)
        if missing:
            raise AnalysisError(f"run spec is missing {sorted(missing)}")
        seed = payload.get("seed", 0)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise AnalysisError(f"run spec seed must be an integer, got {seed!r}")
        return cls(
            algorithm=AlgorithmSpec.from_dict(payload["algorithm"]),
            workload=WorkloadSpec.from_dict(payload["workload"]),
            seed=seed,
            experiment=str(payload.get("experiment", "run")),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialize to JSON text."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        """Parse JSON text produced by :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    def content_hash(self) -> str:
        """Return the spec's content address: sha256 of its canonical JSON.

        Two specs hash equal exactly when their :meth:`to_dict` documents
        are equal — the same identity a JSON round-trip preserves — so the
        hash is stable across processes, sessions and machines.  This is
        the key :class:`repro.api.store.ResultCache` files records under.
        """
        digest = hashlib.sha256(canonical_json(self.to_dict()).encode("utf-8"))
        return digest.hexdigest()

    def cell(self) -> SweepCell:
        """Return the equivalent :class:`~repro.analysis.SweepCell`.

        The cell carries this spec as its ``run_spec`` so cache-aware
        sweeps can serve or record it by content hash.
        """
        return SweepCell(
            experiment=self.experiment,
            algorithm_factory=AlgorithmFactory(self.algorithm),
            graph_factory=self.workload.factory(),
            seed=self.seed,
            run_spec=self,
        )

    def run_raw(self) -> Any:
        """Build and run, returning the algorithm's native result object."""
        graph = self.workload.build(seed=self.seed)
        return self.algorithm.build().run(graph, seed=self.seed)

    def run(self) -> ExperimentRecord:
        """Run and return the verified :class:`ExperimentRecord`.

        Only sweepable algorithms produce experiment records; for the
        counting extension use :meth:`run_raw`.
        """
        entry = self.algorithm.entry()
        if not entry.sweepable:
            raise AnalysisError(
                f"algorithm {entry.name!r} does not produce experiment "
                "records; use run_raw() for its native result"
            )
        graph = self.workload.build(seed=self.seed)
        return run_single(self.experiment, self.algorithm.build(), graph, self.seed)


def run_specs_to_cells(runs: "List[RunSpec] | Tuple[RunSpec, ...]") -> List[SweepCell]:
    """Return the sweep cells of a list of run specs, in order.

    The declarative counterpart of building :class:`SweepCell` lists by
    hand — the scaling benchmarks express their per-size grids this way.
    """
    return [run.cell() for run in runs]


@dataclass(frozen=True)
class SweepSpec:
    """An (algorithms × seeds) grid over one workload, as a JSON document.

    The grid is exactly what :meth:`repro.analysis.SweepRunner.run_grid`
    executes: cells are ordered workload-major (all algorithms of a seed
    adjacent) so the per-process workload cache builds each graph once.
    """

    experiment: str
    algorithms: Tuple[AlgorithmSpec, ...]
    workload: WorkloadSpec
    seeds: Tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "algorithms", tuple(self.algorithms))
        for seed in self.seeds:
            if not isinstance(seed, int) or isinstance(seed, bool):
                raise AnalysisError(
                    f"sweep seeds must be integers, got {seed!r} in "
                    f"{tuple(self.seeds)!r}"
                )
        object.__setattr__(self, "seeds", tuple(self.seeds))
        if not self.algorithms:
            raise AnalysisError("a sweep spec needs at least one algorithm")
        if not self.seeds:
            raise AnalysisError("a sweep spec needs at least one seed")
        labels = [algorithm.display_label for algorithm in self.algorithms]
        if len(set(labels)) != len(labels):
            raise AnalysisError(
                f"sweep algorithm labels must be distinct, got {labels}; "
                "give repeated algorithms explicit labels"
            )

    @classmethod
    def with_spawned_seeds(
        cls,
        experiment: str,
        algorithms: "Tuple[AlgorithmSpec, ...] | List[AlgorithmSpec]",
        workload: WorkloadSpec,
        base_seed: int,
        num_seeds: int,
    ) -> "SweepSpec":
        """Build a spec whose seeds are spawned from one base seed.

        Seeds are derived once, here, with
        :meth:`SweepRunner.spawn_seeds` and stored explicitly in the
        spec, so the serialized document pins the exact grid.
        """
        return cls(
            experiment=experiment,
            algorithms=tuple(algorithms),
            workload=workload,
            seeds=tuple(SweepRunner.spawn_seeds(base_seed, num_seeds)),
        )

    def labels(self) -> List[str]:
        """Return the algorithm labels, in spec order."""
        return [algorithm.display_label for algorithm in self.algorithms]

    def algorithm_factories(self) -> Dict[str, AlgorithmFactory]:
        """Return the label -> factory mapping ``run_grid`` consumes."""
        return {
            algorithm.display_label: AlgorithmFactory(algorithm)
            for algorithm in self.algorithms
        }

    def graph_factory(self) -> WorkloadFactory:
        """Return the shared workload factory ``run_grid`` consumes."""
        return self.workload.factory()

    def run_specs(self) -> List[RunSpec]:
        """Return the grid's cells as run specs, aligned with :meth:`cells`.

        Each cell of the grid has a standalone :class:`RunSpec` identity;
        its :meth:`RunSpec.content_hash` is what the result cache keys the
        cell's record under, independent of which sweep executed it.
        """
        return [
            RunSpec(
                algorithm=algorithm,
                workload=self.workload,
                seed=seed,
                experiment=self.experiment,
            )
            for seed in self.seeds
            for algorithm in self.algorithms
        ]

    def cells(self) -> List[SweepCell]:
        """Return the grid's cells in ``run_grid`` order (workload-major)."""
        return [run.cell() for run in self.run_specs()]

    def cell_labels(self) -> List[str]:
        """Return the algorithm label of each cell, aligned with :meth:`cells`."""
        labels = self.labels()
        return [label for _ in self.seeds for label in labels]

    def require_sweepable(self) -> None:
        """Reject grids containing algorithms without experiment records."""
        for algorithm in self.algorithms:
            entry = algorithm.entry()
            if not entry.sweepable:
                raise AnalysisError(
                    f"algorithm {entry.name!r} cannot be swept (it does "
                    "not produce experiment records)"
                )

    def run(
        self, runner: Optional[SweepRunner] = None
    ) -> Dict[str, List[ExperimentRecord]]:
        """Execute the grid via :meth:`SweepRunner.run_grid`, unchanged."""
        self.require_sweepable()
        runner = runner if runner is not None else SweepRunner()
        return runner.run_grid(
            self.experiment,
            self.algorithm_factories(),
            self.graph_factory(),
            self.seeds,
        )

    def to_dict(self) -> Dict[str, Any]:
        """Return the JSON-ready document form (versioned)."""
        return {
            "schema": SPEC_SCHEMA_VERSION,
            "kind": "sweep",
            "experiment": self.experiment,
            "algorithms": [algorithm.to_dict() for algorithm in self.algorithms],
            "workload": self.workload.to_dict(),
            "seeds": list(self.seeds),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SweepSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        payload = _require_mapping(payload, "sweep spec")
        _check_schema_version(payload, "sweep spec")
        kind = payload.get("kind", "sweep")
        if kind != "sweep":
            raise AnalysisError(f"expected a sweep spec, got kind={kind!r}")
        missing = {"experiment", "algorithms", "workload", "seeds"} - set(payload)
        if missing:
            raise AnalysisError(f"sweep spec is missing {sorted(missing)}")
        algorithms = payload["algorithms"]
        if not isinstance(algorithms, (list, tuple)):
            raise AnalysisError("sweep spec 'algorithms' must be a JSON array")
        seeds = payload["seeds"]
        if not isinstance(seeds, (list, tuple)):
            raise AnalysisError("sweep spec 'seeds' must be a JSON array")
        return cls(
            experiment=str(payload["experiment"]),
            algorithms=tuple(
                AlgorithmSpec.from_dict(algorithm) for algorithm in algorithms
            ),
            workload=WorkloadSpec.from_dict(payload["workload"]),
            seeds=tuple(seeds),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialize to JSON text."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        """Parse JSON text produced by :meth:`to_json`."""
        return cls.from_dict(json.loads(text))


def load_spec(text: str) -> "RunSpec | SweepSpec":
    """Parse a spec document of either kind from JSON text."""
    payload = json.loads(text)
    if not isinstance(payload, Mapping):
        raise AnalysisError("a spec document must be a JSON object")
    kind = payload.get("kind")
    if kind == "run":
        return RunSpec.from_dict(payload)
    if kind == "sweep":
        return SweepSpec.from_dict(payload)
    raise AnalysisError(
        f"spec documents must declare kind 'run' or 'sweep', got {kind!r}"
    )
