"""Named registries of algorithms and workload generators.

The declarative run-spec layer (:mod:`repro.api.specs`) and the ``repro``
CLI refer to algorithms and workloads *by name*.  This module owns those
names: a registry entry couples a name to the factory that builds the
object (an algorithm class from :mod:`repro.core`, a generator function
from :mod:`repro.graphs.generators`), a one-line summary, and a parameter
schema derived from the factory's signature — so ``repro list --json``
can tell a user exactly which parameters each name accepts without
importing anything else.

Every algorithm and generator already in the repository is registered at
import time, below.  Third-party extensions use the same two decorators::

    from repro.api import register_algorithm, register_workload

    @register_algorithm("my-lister", kind="listing")
    class MyLister(TriangleAlgorithm):
        ...

    @register_workload("my-workload")
    def my_workload(num_nodes: int, seed=None) -> Graph:
        ...

Names are case-insensitive and must be unique; registering a taken name
raises :class:`~repro.errors.AnalysisError`.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..errors import AnalysisError

__all__ = [
    "ParameterSchema",
    "AlgorithmEntry",
    "WorkloadEntry",
    "register_algorithm",
    "register_workload",
    "unregister_algorithm",
    "unregister_workload",
    "get_algorithm",
    "get_workload",
    "list_algorithms",
    "list_workloads",
]


@dataclass(frozen=True)
class ParameterSchema:
    """One constructor/generator parameter, as advertised by the registry."""

    name: str
    required: bool
    default: Any = None
    annotation: str = ""

    def to_dict(self) -> Dict[str, Any]:
        """Return a JSON-ready description of the parameter."""
        payload: Dict[str, Any] = {"name": self.name, "required": self.required}
        if not self.required:
            payload["default"] = self.default
        if self.annotation:
            payload["annotation"] = self.annotation
        return payload


def _first_doc_line(obj: Any) -> str:
    doc = inspect.getdoc(obj)
    return doc.splitlines()[0].strip() if doc else ""


def _schema_from_factory(factory: Callable[..., Any]) -> Tuple[ParameterSchema, ...]:
    """Derive the parameter schema from a factory's call signature.

    ``inspect.signature`` on a class resolves to its ``__init__`` (minus
    ``self``), so algorithm classes and generator functions are handled
    uniformly.  Variadic parameters are omitted — registry names exist so
    specs can be validated, and ``**kwargs`` cannot be.
    """
    parameters: List[ParameterSchema] = []
    for parameter in inspect.signature(factory).parameters.values():
        if parameter.kind in (
            inspect.Parameter.VAR_POSITIONAL,
            inspect.Parameter.VAR_KEYWORD,
        ):
            continue
        required = parameter.default is inspect.Parameter.empty
        annotation = (
            ""
            if parameter.annotation is inspect.Parameter.empty
            else str(parameter.annotation)
        )
        parameters.append(
            ParameterSchema(
                name=parameter.name,
                required=required,
                default=None if required else parameter.default,
                annotation=annotation,
            )
        )
    return tuple(parameters)


def _check_params(
    entry_kind: str,
    name: str,
    schema: Tuple[ParameterSchema, ...],
    params: Mapping[str, Any],
) -> None:
    """Reject unknown or missing-required parameters with a clear error."""
    known = {parameter.name for parameter in schema}
    unknown = set(params) - known
    if unknown:
        raise AnalysisError(
            f"{entry_kind} {name!r} does not accept parameters "
            f"{sorted(unknown)}; valid parameters are {sorted(known)}"
        )
    missing = {
        parameter.name
        for parameter in schema
        if parameter.required and parameter.name not in params
    }
    if missing:
        raise AnalysisError(
            f"{entry_kind} {name!r} requires parameters {sorted(missing)}"
        )


@dataclass(frozen=True)
class AlgorithmEntry:
    """A named, buildable algorithm with its parameter schema."""

    name: str
    factory: Callable[..., Any]
    summary: str
    kind: str
    model: str
    #: Whether runs produce :class:`~repro.core.output.AlgorithmResult`
    #: records that the sweep/verification harness understands.  The
    #: counting extension returns its own result type, so it can be run
    #: but not swept.
    sweepable: bool
    parameters: Tuple[ParameterSchema, ...]

    def validate_params(self, params: Mapping[str, Any]) -> None:
        """Raise :class:`AnalysisError` for unknown/missing parameters."""
        _check_params("algorithm", self.name, self.parameters, params)

    def build(self, params: Optional[Mapping[str, Any]] = None) -> Any:
        """Instantiate the algorithm with the given constructor parameters."""
        params = dict(params or {})
        self.validate_params(params)
        return self.factory(**params)

    def describe(self) -> Dict[str, Any]:
        """Return a JSON-ready description (what ``repro list --json`` emits)."""
        return {
            "name": self.name,
            "summary": self.summary,
            "kind": self.kind,
            "model": self.model,
            "sweepable": self.sweepable,
            "parameters": [parameter.to_dict() for parameter in self.parameters],
        }


@dataclass(frozen=True)
class WorkloadEntry:
    """A named, buildable workload generator with its parameter schema."""

    name: str
    factory: Callable[..., Any]
    summary: str
    #: Whether the generator accepts a ``seed`` argument.  Deterministic
    #: constructions (cycles, cliques, lollipops) do not; for them the
    #: sweep's cell seed only drives the algorithm.
    takes_seed: bool
    #: Whether the generator returns ``(graph, metadata)`` instead of a
    #: bare graph (the planted and heavy-edge gadget families do); the
    #: registry unwraps the graph.
    returns_tuple: bool
    parameters: Tuple[ParameterSchema, ...]

    def validate_params(self, params: Mapping[str, Any]) -> None:
        """Raise :class:`AnalysisError` for unknown/missing parameters."""
        _check_params("workload", self.name, self.parameters, params)

    def build(
        self,
        params: Optional[Mapping[str, Any]] = None,
        seed: Optional[int] = None,
    ) -> Any:
        """Build the workload graph.

        ``seed`` is the per-run seed supplied by the harness; a ``seed``
        pinned inside ``params`` takes precedence (that is how a sweep
        holds a workload fixed while resampling the algorithm's coins).
        """
        kwargs = dict(params or {})
        if self.takes_seed and seed is not None and "seed" not in kwargs:
            kwargs["seed"] = seed
        self.validate_params(kwargs)
        built = self.factory(**kwargs)
        return built[0] if self.returns_tuple else built

    def describe(self) -> Dict[str, Any]:
        """Return a JSON-ready description (what ``repro list --json`` emits)."""
        return {
            "name": self.name,
            "summary": self.summary,
            "takes_seed": self.takes_seed,
            "parameters": [parameter.to_dict() for parameter in self.parameters],
        }


_ALGORITHMS: Dict[str, AlgorithmEntry] = {}
_WORKLOADS: Dict[str, WorkloadEntry] = {}


def _normalize(name: str) -> str:
    return name.strip().lower()


def register_algorithm(
    name: str,
    *,
    kind: str,
    summary: Optional[str] = None,
    sweepable: bool = True,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Return a decorator registering an algorithm factory under ``name``.

    ``kind`` labels the problem the algorithm solves (``"finding"``,
    ``"listing"`` or ``"counting"``).  The decorated factory is returned
    unchanged, so registration does not alter the class.
    """
    key = _normalize(name)

    def decorator(factory: Callable[..., Any]) -> Callable[..., Any]:
        if key in _ALGORITHMS:
            raise AnalysisError(f"algorithm {name!r} is already registered")
        _ALGORITHMS[key] = AlgorithmEntry(
            name=key,
            factory=factory,
            summary=summary or _first_doc_line(factory),
            kind=kind,
            model=getattr(factory, "model", "CONGEST"),
            sweepable=sweepable,
            parameters=_schema_from_factory(factory),
        )
        return factory

    return decorator


def register_workload(
    name: str,
    *,
    summary: Optional[str] = None,
    returns_tuple: bool = False,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Return a decorator registering a workload generator under ``name``."""
    key = _normalize(name)

    def decorator(factory: Callable[..., Any]) -> Callable[..., Any]:
        if key in _WORKLOADS:
            raise AnalysisError(f"workload {name!r} is already registered")
        schema = _schema_from_factory(factory)
        _WORKLOADS[key] = WorkloadEntry(
            name=key,
            factory=factory,
            summary=summary or _first_doc_line(factory),
            takes_seed=any(parameter.name == "seed" for parameter in schema),
            returns_tuple=returns_tuple,
            parameters=schema,
        )
        return factory

    return decorator


def unregister_algorithm(name: str) -> None:
    """Remove a registered algorithm (primarily for tests and plugins)."""
    _ALGORITHMS.pop(_normalize(name), None)


def unregister_workload(name: str) -> None:
    """Remove a registered workload (primarily for tests and plugins)."""
    _WORKLOADS.pop(_normalize(name), None)


def get_algorithm(name: str) -> AlgorithmEntry:
    """Look up an algorithm entry by (case-insensitive) name."""
    key = _normalize(name)
    if key not in _ALGORITHMS:
        raise AnalysisError(
            f"unknown algorithm {name!r}; registered algorithms are "
            f"{sorted(_ALGORITHMS)}"
        )
    return _ALGORITHMS[key]


def get_workload(name: str) -> WorkloadEntry:
    """Look up a workload entry by (case-insensitive) name."""
    key = _normalize(name)
    if key not in _WORKLOADS:
        raise AnalysisError(
            f"unknown workload {name!r}; registered workloads are "
            f"{sorted(_WORKLOADS)}"
        )
    return _WORKLOADS[key]


def list_algorithms() -> List[AlgorithmEntry]:
    """Return every registered algorithm entry, sorted by name."""
    return [_ALGORITHMS[key] for key in sorted(_ALGORITHMS)]


def list_workloads() -> List[WorkloadEntry]:
    """Return every registered workload entry, sorted by name."""
    return [_WORKLOADS[key] for key in sorted(_WORKLOADS)]


# ---------------------------------------------------------------------------
# Built-in registrations: every algorithm and generator in the repository.
# Registry names follow the classes' ``name`` attributes (lower-cased), so
# experiment tables and registry lookups agree.
# ---------------------------------------------------------------------------

from ..core.a1_sampling import HeavySamplingFinder as _HeavySamplingFinder
from ..core.a2_heavy import HeavyHashingLister as _HeavyHashingLister
from ..core.a3_light import LightTrianglesLister as _LightTrianglesLister
from ..core.baselines import (
    LocalListing as _LocalListing,
    NaiveTwoHopListing as _NaiveTwoHopListing,
)
from ..core.clique_dolev import DolevCliqueListing as _DolevCliqueListing
from ..core.counting import TriangleCounting as _TriangleCounting
from ..core.finding import TriangleFinding as _TriangleFinding
from ..core.listing import TriangleListing as _TriangleListing
from ..graphs import generators as _generators

register_algorithm("a1-heavy-sampling", kind="finding")(_HeavySamplingFinder)
register_algorithm("a2-heavy-hashing", kind="listing")(_HeavyHashingLister)
register_algorithm("a3-light-listing", kind="listing")(_LightTrianglesLister)
register_algorithm("theorem1-finding", kind="finding")(_TriangleFinding)
register_algorithm("theorem2-listing", kind="listing")(_TriangleListing)
register_algorithm("dolev-clique-listing", kind="listing")(_DolevCliqueListing)
register_algorithm("naive-two-hop", kind="listing")(_NaiveTwoHopListing)
register_algorithm("local-listing", kind="listing")(_LocalListing)
register_algorithm("triangle-counting", kind="counting", sweepable=False)(
    _TriangleCounting
)

register_workload("gnp")(_generators.gnp_random_graph)
register_workload("bipartite")(_generators.triangle_free_bipartite)
register_workload("cycle")(_generators.cycle_graph)
register_workload("complete")(_generators.complete_graph)
register_workload("empty")(_generators.empty_graph)
register_workload("planted", returns_tuple=True)(_generators.planted_triangle_graph)
register_workload("heavy-edge", returns_tuple=True)(_generators.heavy_edge_gadget)
register_workload("ba")(_generators.barabasi_albert_graph)
register_workload("random-regular")(_generators.random_regular_graph)
register_workload("lollipop")(_generators.lollipop_graph)
register_workload("union-of-cliques")(_generators.union_of_cliques)
