"""Versioned query documents for the online triangle service.

The batch side of ``repro.api`` describes *experiments* (RunSpec/SweepSpec);
this module describes *questions* asked of a live, continuously updated
graph.  A :class:`QuerySpec` is a frozen, JSON-round-tripping document —
``{"schema": 1, "kind": ..., "params": {...}}`` — validated eagerly so a
malformed spec fails as :class:`~repro.errors.AnalysisError` (the CLI's
exit-2 contract) before it ever reaches an engine or a socket.  A
:class:`QueryResult` carries the answer plus the snapshot ``version`` it
was computed against, so a client can pin exactly which graph state it
observed.

The registered kinds mirror what the incremental oracle maintains:

* ``count`` — global triangle count and graph shape,
* ``node-counts`` — per-node triangle counts (all nodes or a subset),
* ``edge-support`` — common-neighbour count per queried edge,
* ``delta-since`` — the journal of batches applied after a given version.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from ..errors import AnalysisError
from .records import canonical_json
from .specs import _canonical_params, _check_schema_version, _require_mapping

__all__ = [
    "QUERY_SCHEMA_VERSION",
    "QueryKind",
    "QueryResult",
    "QuerySpec",
    "get_query_kind",
    "list_query_kinds",
]

QUERY_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class QueryParameter:
    name: str
    required: bool
    description: str

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "required": self.required,
            "description": self.description,
        }


@dataclass(frozen=True)
class QueryKind:
    """A registered query kind plus its parameter contract."""

    name: str
    description: str
    parameters: Tuple[QueryParameter, ...] = ()

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "parameters": [p.describe() for p in self.parameters],
        }

    def validate_params(self, params: Mapping[str, Any]) -> None:
        known = {p.name for p in self.parameters}
        for key in params:
            if key not in known:
                raise AnalysisError(
                    f"query kind {self.name!r} does not accept parameter {key!r} "
                    f"(accepts: {sorted(known) or 'none'})"
                )
        for parameter in self.parameters:
            if parameter.required and parameter.name not in params:
                raise AnalysisError(
                    f"query kind {self.name!r} requires parameter {parameter.name!r}"
                )


_QUERY_KINDS: Dict[str, QueryKind] = {}


def _register(kind: QueryKind) -> None:
    _QUERY_KINDS[kind.name] = kind


_register(
    QueryKind(
        name="count",
        description="Global triangle count plus graph shape at the answered version.",
    )
)
_register(
    QueryKind(
        name="node-counts",
        description="Per-node triangle counts, for all nodes or an explicit subset.",
        parameters=(
            QueryParameter(
                name="nodes",
                required=False,
                description="List of node ids; omitted means every node.",
            ),
        ),
    )
)
_register(
    QueryKind(
        name="edge-support",
        description="Common-neighbour count per queried edge (null for absent edges).",
        parameters=(
            QueryParameter(
                name="edges",
                required=True,
                description="Non-empty list of [u, v] pairs.",
            ),
        ),
    )
)
_register(
    QueryKind(
        name="delta-since",
        description="Batches applied after a given version, from the serving journal.",
        parameters=(
            QueryParameter(
                name="version",
                required=True,
                description="Non-negative snapshot version the client last observed.",
            ),
        ),
    )
)


def list_query_kinds() -> Tuple[QueryKind, ...]:
    """All registered query kinds, sorted by name."""
    return tuple(_QUERY_KINDS[name] for name in sorted(_QUERY_KINDS))


def get_query_kind(name: str) -> QueryKind:
    try:
        return _QUERY_KINDS[name]
    except KeyError:
        raise AnalysisError(
            f"unknown query kind {name!r} (known: {sorted(_QUERY_KINDS)})"
        ) from None


def _check_int(value: Any, where: str, *, minimum: Optional[int] = None) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise AnalysisError(f"{where} must be an integer, got {value!r}")
    if minimum is not None and value < minimum:
        raise AnalysisError(f"{where} must be >= {minimum}, got {value}")
    return value


def _validate_typed_params(kind: str, params: Mapping[str, Any]) -> None:
    if kind == "node-counts" and "nodes" in params:
        nodes = params["nodes"]
        if not isinstance(nodes, list):
            raise AnalysisError(f"query parameter 'nodes' must be a list, got {nodes!r}")
        for node in nodes:
            _check_int(node, "each entry of query parameter 'nodes'", minimum=0)
    elif kind == "edge-support":
        edges = params["edges"]
        if not isinstance(edges, list) or not edges:
            raise AnalysisError(
                f"query parameter 'edges' must be a non-empty list of [u, v] pairs, got {edges!r}"
            )
        for pair in edges:
            if not isinstance(pair, list) or len(pair) != 2:
                raise AnalysisError(
                    f"each entry of query parameter 'edges' must be a [u, v] pair, got {pair!r}"
                )
            for endpoint in pair:
                _check_int(endpoint, "each edge endpoint", minimum=0)
    elif kind == "delta-since":
        _check_int(params["version"], "query parameter 'version'", minimum=0)


@dataclass(frozen=True)
class QuerySpec:
    """One question for the query engine, frozen and canonical."""

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.kind, str) or not self.kind:
            raise AnalysisError(f"query kind must be a non-empty string, got {self.kind!r}")
        entry = get_query_kind(self.kind)
        params = _canonical_params(self.params, f"QuerySpec({self.kind}).params")
        entry.validate_params(params)
        _validate_typed_params(self.kind, params)
        object.__setattr__(self, "params", params)

    def __hash__(self) -> int:
        return hash((self.kind, json.dumps(self.params, sort_keys=True)))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": QUERY_SCHEMA_VERSION,
            "kind": self.kind,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, payload: Any) -> "QuerySpec":
        doc = _require_mapping(payload, "QuerySpec document")
        _check_schema_version(doc, "QuerySpec document")
        known = {"schema", "kind", "params"}
        unknown = set(doc) - known
        if unknown:
            raise AnalysisError(
                f"QuerySpec document has unknown fields {sorted(unknown)} (accepts {sorted(known)})"
            )
        if "kind" not in doc:
            raise AnalysisError("QuerySpec document is missing the 'kind' field")
        params = doc.get("params", {})
        if params is None:
            params = {}
        return cls(kind=doc["kind"], params=_require_mapping(params, "QuerySpec params"))

    def to_json(self) -> str:
        return canonical_json(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "QuerySpec":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise AnalysisError(f"QuerySpec document is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)

    def content_hash(self) -> str:
        import hashlib

        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class QueryResult:
    """An answer pinned to the snapshot version it was computed against."""

    kind: str
    version: int
    payload: Mapping[str, Any]

    def __post_init__(self) -> None:
        if not isinstance(self.kind, str) or not self.kind:
            raise AnalysisError(f"result kind must be a non-empty string, got {self.kind!r}")
        version = self.version
        if isinstance(version, bool) or not isinstance(version, int) or version < 0:
            raise AnalysisError(f"result version must be a non-negative integer, got {version!r}")
        payload = _canonical_params(self.payload, f"QueryResult({self.kind}).payload")
        object.__setattr__(self, "payload", payload)

    def __hash__(self) -> int:
        return hash((self.kind, self.version, json.dumps(self.payload, sort_keys=True)))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": QUERY_SCHEMA_VERSION,
            "kind": self.kind,
            "version": self.version,
            "payload": dict(self.payload),
        }

    @classmethod
    def from_dict(cls, payload: Any) -> "QueryResult":
        doc = _require_mapping(payload, "QueryResult document")
        _check_schema_version(doc, "QueryResult document")
        for fieldname in ("kind", "version", "payload"):
            if fieldname not in doc:
                raise AnalysisError(f"QueryResult document is missing the {fieldname!r} field")
        return cls(
            kind=doc["kind"],
            version=doc["version"],
            payload=_require_mapping(doc["payload"], "QueryResult payload"),
        )

    def to_json(self) -> str:
        return canonical_json(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "QueryResult":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise AnalysisError(f"QueryResult document is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)
