"""Durable experiment records: canonical JSON encoding of result objects.

The record types themselves live with the layers that produce them —
:class:`~repro.analysis.experiments.ExperimentRecord`,
:class:`~repro.congest.metrics.ExecutionMetrics` /
:class:`~repro.congest.metrics.AlgorithmCost` and
:class:`~repro.analysis.verification.VerificationReport` all carry
``to_dict`` / ``from_dict`` — this module re-exports them as the public
records surface and owns the *canonical* JSON text form the JSONL store
writes: sorted keys, compact separators, no trailing whitespace.  Two
equal records always serialize to identical bytes, which is what makes
"resume a sweep, compare the files" a byte-level check.
"""

from __future__ import annotations

import json
from typing import Any

from ..analysis.experiments import ExperimentRecord
from ..analysis.verification import VerificationReport
from ..congest.metrics import AlgorithmCost, ExecutionMetrics, PhaseReport
from ..core.counting import CountingResult

__all__ = [
    "ExperimentRecord",
    "VerificationReport",
    "ExecutionMetrics",
    "AlgorithmCost",
    "PhaseReport",
    "CountingResult",
    "canonical_json",
]


def canonical_json(payload: Any) -> str:
    """Serialize ``payload`` to the store's canonical JSON text.

    Keys are sorted and separators compact, so equal payloads produce
    identical bytes regardless of construction order.  Non-finite floats
    are rejected (``ValueError``) — Python's ``NaN``/``Infinity`` tokens
    are not valid JSON and would poison every downstream consumer of the
    store.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), allow_nan=False)
