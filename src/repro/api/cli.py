"""The ``repro`` command line: list, run, sweep, cache, table1.

Installed as the ``repro`` console script (and reachable as
``python -m repro``).  Five subcommands cover the reproduction workflow:

* ``repro list`` — registered algorithms and workloads with their
  parameter schemas,
* ``repro run`` — one (algorithm, workload, seed) execution, either from
  a JSON run-spec document or assembled from flags,
* ``repro sweep`` — an (algorithms × seeds) grid from a JSON sweep-spec
  document, recorded to an append-only JSONL store with ``--resume``;
  ``--cache DIR`` serves already-computed cells from a content-addressed
  result cache and ``--plane`` pins the parallel workload transport,
* ``repro cache`` — inspect a result cache (entry count, size, entries)
  and evict or clear entries,
* ``repro table1`` — the paper's Table-1 predictions at a given ``n``,
* ``repro serve`` / ``repro submit`` / ``repro status`` / ``repro
  worker`` — the persistent worker-fleet experiment service
  (:mod:`repro.service`): a long-lived dispatcher leases sweep cells to
  warm worker processes and streams records into the same JSONL store
  format, byte-identical to ``repro sweep``; ``repro serve --drain``
  finishes in-flight cells and exits cleanly,
* ``repro events`` — a service root's append-only incident log
  (lease expiries, evictions, retries, quarantines, fault firings),
* ``repro chaos`` — a seeded fault-injection session
  (:mod:`repro.service.chaos`): deterministic schedule, byte-identity
  check against a serial reference, poison-cell quarantine proof.

Set ``REPRO_PRELOAD`` to a comma-separated module list to import extra
algorithm/workload registrations before any command runs (the service's
``--preload`` flag, as an environment knob).

Every subcommand accepts ``--json`` and then emits a single JSON
document on stdout, so the CLI scripts as cleanly as the Python API.
Exit codes: 0 on success, 2 on any :class:`~repro.errors.ReproError`
(bad spec, unknown name, invalid parameters).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..analysis.complexity import predicted_round_complexities
from ..analysis.experiments import SWEEP_PLANE_ENV, SweepRunner
from ..analysis.tables import render_records_table, render_table, render_table1
from .._version import __version__
from ..errors import AnalysisError, ReproError
from ..faults import FAULTS_ENV
from .registry import (
    AlgorithmEntry,
    WorkloadEntry,
    list_algorithms,
    list_workloads,
)
from .specs import AlgorithmSpec, RunSpec, SweepSpec, WorkloadSpec, load_spec
from .store import RecordStore, ResultCache, run_sweep

__all__ = ["main", "build_parser"]


def _emit_json(payload: Any) -> None:
    print(json.dumps(payload, indent=2, sort_keys=True))


def _parse_params(text: Optional[str], what: str) -> Dict[str, Any]:
    if not text:
        return {}
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise AnalysisError(f"{what} must be a JSON object: {exc}") from exc
    if not isinstance(payload, dict):
        raise AnalysisError(f"{what} must be a JSON object, got {payload!r}")
    return payload


def _format_parameters(entry: "AlgorithmEntry | WorkloadEntry") -> str:
    parts = []
    for parameter in entry.parameters:
        if parameter.required:
            parts.append(f"{parameter.name}*")
        else:
            parts.append(f"{parameter.name}={parameter.default!r}")
    return ", ".join(parts)


def _read_spec(path: str) -> "RunSpec | SweepSpec":
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise AnalysisError(f"cannot read spec file {path!r}: {exc}") from exc
    return load_spec(text)


# ---------------------------------------------------------------------------
# subcommands
# ---------------------------------------------------------------------------

def _cmd_list(args: argparse.Namespace) -> int:
    from .queries import list_query_kinds

    show_algorithms = args.what in ("algorithms", "all")
    show_workloads = args.what in ("workloads", "all")
    show_queries = args.what in ("queries", "all")
    if args.json:
        payload: Dict[str, Any] = {}
        if show_algorithms:
            payload["algorithms"] = [entry.describe() for entry in list_algorithms()]
        if show_workloads:
            payload["workloads"] = [entry.describe() for entry in list_workloads()]
        if show_queries:
            payload["queries"] = [kind.describe() for kind in list_query_kinds()]
        _emit_json(payload)
        return 0
    if show_algorithms:
        print("Registered algorithms:")
        print(
            render_table(
                ["name", "kind", "model", "parameters"],
                [
                    [entry.name, entry.kind, entry.model, _format_parameters(entry)]
                    for entry in list_algorithms()
                ],
            )
        )
    if show_algorithms and show_workloads:
        print()
    if show_workloads:
        print("Registered workloads:")
        print(
            render_table(
                ["name", "seeded", "parameters"],
                [
                    [
                        entry.name,
                        "yes" if entry.takes_seed else "no",
                        _format_parameters(entry),
                    ]
                    for entry in list_workloads()
                ],
            )
        )
    if show_queries:
        if show_algorithms or show_workloads:
            print()
        print("Registered query kinds (repro query --kind NAME):")
        print(
            render_table(
                ["name", "parameters", "description"],
                [
                    [
                        kind.name,
                        ", ".join(
                            p.name + ("*" if p.required else "")
                            for p in kind.parameters
                        )
                        or "-",
                        kind.description,
                    ]
                    for kind in list_query_kinds()
                ],
            )
        )
    return 0


def _run_spec_from_args(args: argparse.Namespace) -> RunSpec:
    assemble_flags = {
        "--algorithm": args.algorithm,
        "--algorithm-params": args.algorithm_params,
        "--workload": args.workload,
        "--workload-params": args.workload_params,
        "--seed": args.seed,
        "--experiment": args.experiment,
    }
    if args.spec:
        conflicting = [flag for flag, value in assemble_flags.items() if value is not None]
        if conflicting:
            raise AnalysisError(
                f"--spec cannot be combined with {', '.join(conflicting)}; "
                "a spec document pins the whole run (edit the file to "
                "change it)"
            )
        spec = _read_spec(args.spec)
        if not isinstance(spec, RunSpec):
            raise AnalysisError(
                f"{args.spec} is a sweep spec; use `repro sweep {args.spec}`"
            )
        return spec
    if not args.algorithm or not args.workload:
        raise AnalysisError(
            "repro run needs either --spec FILE or both --algorithm and "
            "--workload"
        )
    return RunSpec(
        algorithm=AlgorithmSpec(
            name=args.algorithm,
            params=_parse_params(args.algorithm_params, "--algorithm-params"),
        ),
        workload=WorkloadSpec(
            name=args.workload,
            params=_parse_params(args.workload_params, "--workload-params"),
        ),
        seed=args.seed if args.seed is not None else 0,
        experiment=args.experiment if args.experiment is not None else "run",
    )


def _cmd_run(args: argparse.Namespace) -> int:
    spec = _run_spec_from_args(args)
    entry = spec.algorithm.entry()
    if not entry.sweepable:
        if args.cache:
            raise AnalysisError(
                f"--cache only applies to sweepable algorithms; "
                f"{entry.name!r} produces a native result, not an "
                "experiment record"
            )
        result = spec.run_raw()
        if args.out:
            RecordStore(args.out).append(
                {"kind": "result", "result": result.to_dict()}
            )
        if args.json:
            _emit_json({"spec": spec.to_dict(), "result": result.to_dict()})
        else:
            print(result.summary())
        return 0
    cache = ResultCache(args.cache) if args.cache else None
    record = cache.get(spec) if cache is not None else None
    cached = record is not None
    if record is None:
        record = spec.run()
        if cache is not None:
            cache.put(spec, record)
    if args.out:
        RecordStore(args.out).append({"kind": "record", "record": record.to_dict()})
    if args.json:
        payload = {"spec": spec.to_dict(), "record": record.to_dict()}
        if cache is not None:
            payload["cache"] = {"hit": cached, "hash": spec.content_hash()}
        _emit_json(payload)
    else:
        print(render_records_table(f"experiment {record.experiment!r}", [record]))
        print(
            f"\nseed={record.seed} messages={record.messages} "
            f"bits={record.bits} truncated={record.truncated}"
        )
        if cached:
            print(f"(served from cache: {spec.content_hash()})")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    spec = _read_spec(args.spec)
    if not isinstance(spec, SweepSpec):
        raise AnalysisError(
            f"{args.spec} is a run spec; use `repro run --spec {args.spec}`"
        )
    out = args.out or str(Path(args.spec).with_suffix(".records.jsonl"))
    cache = ResultCache(args.cache) if args.cache else None
    progress = None
    if args.progress:

        def progress(completed: int, total: int) -> None:
            print(
                f"sweep {spec.experiment!r}: {completed}/{total} cells",
                file=sys.stderr,
            )
            sys.stderr.flush()

    def on_retry(attempt: int, reason: str) -> None:
        print(
            f"sweep {spec.experiment!r}: worker pool broke "
            f"({reason}); retry {attempt}/{args.retries} resumes from "
            "the recorded prefix",
            file=sys.stderr,
        )
        sys.stderr.flush()

    runner = SweepRunner(max_workers=args.workers, plane=args.plane)
    with runner:
        stored = run_sweep(
            spec,
            out,
            runner=runner,
            resume=args.resume,
            max_cells=args.max_cells,
            cache=cache,
            progress=progress,
            retries=args.retries,
            on_retry=on_retry,
        )
        plane = runner.last_plane
    total = len(spec.cells())
    completed = len(stored.completed_cells())
    if args.json:
        payload = {
            "spec": spec.to_dict(),
            "out": out,
            "cells_total": total,
            "cells_completed": completed,
            "records": [
                {"cell": cell, "label": label, "record": record.to_dict()}
                for cell, label, record in stored.entries
            ],
        }
        if plane is not None:
            payload["plane"] = plane
        if cache is not None:
            payload["cache"] = cache.stats()
        _emit_json(payload)
        return 0
    print(render_records_table(f"sweep {spec.experiment!r}", stored.records()))
    print(f"\n{completed}/{total} cells recorded in {out}")
    if plane is not None and plane["cells"] > 0:
        print(
            f"plane={plane['plane']} workloads_shared="
            f"{plane['workloads_shared']} cache_hits={plane['cache_hits']} "
            f"executed={plane['executed']} "
            f"bytes_per_cell={plane['pickled_bytes_per_cell']:.0f}"
        )
    if cache is not None:
        stats = cache.stats()
        print(
            f"cache {stats['root']}: {stats['entries']} entries, "
            f"{stats['hits']} hits, {stats['misses']} misses, "
            f"{stats['writes']} new"
        )
    if completed < total:
        print(f"resume with: repro sweep {args.spec} --out {out} --resume")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(args.dir)
    evicted = [digest for digest in args.evict or [] if cache.evict(digest)]
    cleared = cache.clear() if args.clear else 0
    stats = cache.stats()
    if args.json:
        payload = dict(stats)
        del payload["hits"], payload["misses"], payload["writes"]
        payload["evicted"] = evicted
        payload["cleared"] = cleared
        if args.entries:
            payload["entry_list"] = cache.entries()
        _emit_json(payload)
        return 0
    print(f"cache {stats['root']}: {stats['entries']} entries, {stats['bytes']} bytes")
    if evicted:
        print(f"evicted {len(evicted)} entries")
    if args.clear:
        print(f"cleared {cleared} entries")
    if args.entries:
        rows = [
            [
                entry["hash"][:12],
                str(entry["experiment"]),
                str(entry["algorithm"]),
                str(entry["workload"]),
                str(entry["seed"]),
            ]
            for entry in cache.entries()
        ]
        if rows:
            print(
                render_table(
                    ["hash", "experiment", "algorithm", "workload", "seed"], rows
                )
            )
    return 0


# The service handlers import repro.service lazily: `repro list` or
# `repro table1` should not pay for (or be broken by) the service layer.


def _cmd_serve(args: argparse.Namespace) -> int:
    from ..service.cli import cmd_serve

    return cmd_serve(args)


def _cmd_query(args: argparse.Namespace) -> int:
    from ..dynamic.cli import cmd_query

    return cmd_query(args)


def _cmd_submit(args: argparse.Namespace) -> int:
    from ..service.cli import cmd_submit

    return cmd_submit(args)


def _cmd_status(args: argparse.Namespace) -> int:
    from ..service.cli import cmd_status

    return cmd_status(args)


def _cmd_worker(args: argparse.Namespace) -> int:
    from ..service.cli import cmd_worker

    return cmd_worker(args)


def _cmd_events(args: argparse.Namespace) -> int:
    from ..service.cli import cmd_events

    return cmd_events(args)


def _cmd_chaos(args: argparse.Namespace) -> int:
    from ..service.cli import cmd_chaos

    return cmd_chaos(args)


def _cmd_table1(args: argparse.Namespace) -> int:
    if args.json:
        _emit_json(
            {
                "num_nodes": args.num_nodes,
                "predicted_rounds": predicted_round_complexities(args.num_nodes),
            }
        )
        return 0
    print(render_table1(args.num_nodes))
    return 0


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    """Build the ``repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of Izumi & Le Gall (PODC 2017): declarative "
            "runs and sweeps of the CONGEST triangle algorithms."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser(
        "list", help="list registered algorithms, workloads and query kinds"
    )
    list_parser.add_argument(
        "what",
        nargs="?",
        choices=["algorithms", "workloads", "queries", "all"],
        default="all",
        help="what to list (default: all)",
    )
    list_parser.add_argument(
        "--json", action="store_true", help="emit a JSON document"
    )
    list_parser.set_defaults(handler=_cmd_list)

    run_parser = subparsers.add_parser(
        "run", help="run one (algorithm, workload, seed) spec"
    )
    run_parser.add_argument("--spec", help="path to a JSON run-spec document")
    run_parser.add_argument("--algorithm", help="registered algorithm name")
    run_parser.add_argument(
        "--algorithm-params",
        help='constructor parameters as a JSON object, e.g. \'{"epsilon": 0.5}\'',
    )
    run_parser.add_argument("--workload", help="registered workload name")
    run_parser.add_argument(
        "--workload-params",
        help='generator parameters as a JSON object, e.g. \'{"num_nodes": 60}\'',
    )
    run_parser.add_argument(
        "--seed", type=int, default=None, help="run seed (default 0)"
    )
    run_parser.add_argument(
        "--experiment", default=None, help="experiment label on the record"
    )
    run_parser.add_argument(
        "--out", help="append the record to this JSONL file"
    )
    run_parser.add_argument(
        "--cache",
        help="content-addressed result cache directory: serve this run "
        "from it when already computed, file the record back otherwise",
    )
    run_parser.add_argument(
        "--json", action="store_true", help="emit a JSON document"
    )
    run_parser.set_defaults(handler=_cmd_run)

    sweep_parser = subparsers.add_parser(
        "sweep", help="run an (algorithms × seeds) sweep from a JSON spec"
    )
    sweep_parser.add_argument("spec", help="path to a JSON sweep-spec document")
    sweep_parser.add_argument(
        "--out",
        help="JSONL record store (default: the spec path with a "
        ".records.jsonl suffix)",
    )
    sweep_parser.add_argument(
        "--resume",
        action="store_true",
        help="continue an interrupted sweep, skipping recorded cells",
    )
    sweep_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool workers (default: serial)",
    )
    sweep_parser.add_argument(
        "--max-cells",
        type=int,
        default=None,
        help="stop after this many new cells (checkpointing/testing)",
    )
    sweep_parser.add_argument(
        "--cache",
        help="content-addressed result cache directory: serve already-"
        "computed cells from it, file fresh records back",
    )
    sweep_parser.add_argument(
        "--plane",
        choices=["auto", "shm", "pickle"],
        default=None,
        help="parallel workload transport: auto (shared memory when "
        "usable, default), shm (require it), pickle (force the fallback); "
        f"defaults to ${SWEEP_PLANE_ENV} when set",
    )
    sweep_parser.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="rebuild a broken worker pool and retry the remaining cells "
        "up to N times (the recorded prefix is kept; default 0)",
    )
    sweep_parser.add_argument(
        "--progress",
        action="store_true",
        help="print completed/total cells (and pool retries) to stderr "
        "as records stream in",
    )
    sweep_parser.add_argument(
        "--json", action="store_true", help="emit a JSON document"
    )
    sweep_parser.set_defaults(handler=_cmd_sweep)

    serve_parser = subparsers.add_parser(
        "serve", help="run the persistent experiment service (dispatcher)"
    )
    serve_parser.add_argument(
        "root", help="service directory (socket, service.json, worker logs)"
    )
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="managed worker processes to spawn and keep alive (default 2)",
    )
    serve_parser.add_argument(
        "--lease-timeout",
        type=float,
        default=60.0,
        help="seconds a worker may hold one cell before it is requeued",
    )
    serve_parser.add_argument(
        "--heartbeat-interval",
        type=float,
        default=2.0,
        help="seconds between worker heartbeats",
    )
    serve_parser.add_argument(
        "--heartbeat-timeout",
        type=float,
        default=None,
        help="evict a worker silent for this long (default: 5x the interval)",
    )
    serve_parser.add_argument(
        "--max-segments",
        type=int,
        default=4,
        help="idle shared-memory workloads kept warm across jobs (default 4)",
    )
    serve_parser.add_argument(
        "--plane",
        choices=["auto", "shm", "pickle"],
        default="auto",
        help="workload transport to workers (default: auto)",
    )
    serve_parser.add_argument(
        "--preload",
        action="append",
        metavar="MODULE",
        help="import this module in the dispatcher and every managed "
        "worker (extra registrations); repeatable",
    )
    serve_parser.add_argument(
        "--stop",
        action="store_true",
        help="shut down the service running in this directory instead",
    )
    serve_parser.add_argument(
        "--drain",
        action="store_true",
        help="gracefully drain the running service instead: no new "
        "leases, in-flight cells finish and flush, then it exits",
    )
    serve_parser.add_argument(
        "--json", action="store_true", help="emit a JSON document on startup"
    )
    serve_parser.set_defaults(handler=_cmd_serve)

    submit_parser = subparsers.add_parser(
        "submit", help="run a sweep spec on the experiment service"
    )
    submit_parser.add_argument("root", help="service directory (as passed to serve)")
    submit_parser.add_argument("spec", help="path to a JSON sweep-spec document")
    submit_parser.add_argument(
        "--out",
        help="JSONL record store (default: the spec path with a "
        ".records.jsonl suffix); written by the dispatcher",
    )
    submit_parser.add_argument(
        "--resume",
        action="store_true",
        help="continue an interrupted sweep, skipping recorded cells",
    )
    submit_parser.add_argument(
        "--cache",
        help="content-addressed result cache directory (dispatcher-side)",
    )
    submit_parser.add_argument(
        "--max-cells",
        type=int,
        default=None,
        help="stop after this many new cells (checkpointing/testing)",
    )
    submit_parser.add_argument(
        "--no-wait",
        action="store_true",
        help="return after queueing instead of waiting for completion",
    )
    submit_parser.add_argument(
        "--json", action="store_true", help="emit a JSON document"
    )
    submit_parser.set_defaults(handler=_cmd_submit)

    status_parser = subparsers.add_parser(
        "status", help="show the experiment service's live status"
    )
    status_parser.add_argument("root", help="service directory (as passed to serve)")
    status_parser.add_argument(
        "--watch",
        type=float,
        default=None,
        metavar="SECONDS",
        help="re-render every SECONDS until interrupted",
    )
    status_parser.add_argument(
        "--json", action="store_true", help="emit a JSON document"
    )
    status_parser.set_defaults(handler=_cmd_status)

    worker_parser = subparsers.add_parser(
        "worker", help="run one experiment-service worker (foreground)"
    )
    worker_parser.add_argument("root", help="service directory (as passed to serve)")
    worker_parser.add_argument(
        "--preload",
        action="append",
        metavar="MODULE",
        help="import this module before serving (extra registrations); "
        "repeatable",
    )
    worker_parser.set_defaults(handler=_cmd_worker)

    events_parser = subparsers.add_parser(
        "events", help="show a service root's incident log (events.jsonl)"
    )
    events_parser.add_argument(
        "root", help="service directory (as passed to serve)"
    )
    events_parser.add_argument(
        "--tail",
        type=int,
        default=None,
        metavar="N",
        help="show only the last N events",
    )
    events_parser.add_argument(
        "--json", action="store_true", help="emit a JSON document"
    )
    events_parser.set_defaults(handler=_cmd_events)

    chaos_parser = subparsers.add_parser(
        "chaos",
        help="run a seeded fault-injection session against a live fleet",
    )
    chaos_parser.add_argument(
        "root", help="session directory (service roots, stores, schedule)"
    )
    chaos_parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="chaos schedule seed (default 0); same seed, same schedule",
    )
    chaos_parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="managed workers in the chaos fleet (default 2)",
    )
    chaos_parser.add_argument(
        "--control",
        action="store_true",
        help="run the same session with no faults armed (the fault plane "
        "must be invisible)",
    )
    chaos_parser.add_argument(
        "--json", action="store_true", help="emit the session report as JSON"
    )
    chaos_parser.set_defaults(handler=_cmd_chaos)

    cache_parser = subparsers.add_parser(
        "cache", help="inspect or prune a content-addressed result cache"
    )
    cache_parser.add_argument("dir", help="cache directory (as passed to --cache)")
    cache_parser.add_argument(
        "--entries",
        action="store_true",
        help="list every entry (hash, experiment, algorithm, workload, seed)",
    )
    cache_parser.add_argument(
        "--evict",
        action="append",
        metavar="HASH",
        help="remove the entry with this content hash (repeatable)",
    )
    cache_parser.add_argument(
        "--clear", action="store_true", help="remove every entry"
    )
    cache_parser.add_argument(
        "--json", action="store_true", help="emit a JSON document"
    )
    cache_parser.set_defaults(handler=_cmd_cache)

    query_parser = subparsers.add_parser(
        "query",
        help="ask triangle queries of a live graph (one-shot, --serve, or client)",
    )
    query_parser.add_argument(
        "root",
        nargs="?",
        default=None,
        help="query-service directory (service.json discovery); omit for "
        "one-shot mode with --graph/--workload",
    )
    query_parser.add_argument(
        "--serve",
        action="store_true",
        help="run a resident query service over the graph source in ROOT",
    )
    query_parser.add_argument(
        "--stop",
        action="store_true",
        help="shut down the query service running in ROOT instead",
    )
    query_parser.add_argument(
        "--graph", metavar="FILE", help="edge-list graph source (.gz supported)"
    )
    query_parser.add_argument(
        "--workload", metavar="NAME", help="registered workload as the graph source"
    )
    query_parser.add_argument(
        "--workload-params",
        metavar="JSON",
        help="workload generator parameters as a JSON object",
    )
    query_parser.add_argument(
        "--seed", type=int, default=None, help="workload seed (seeded generators)"
    )
    query_parser.add_argument(
        "--kind",
        metavar="KIND",
        help="query kind to ask (see 'repro list queries'; default: count)",
    )
    query_parser.add_argument(
        "--params", metavar="JSON", help="query parameters as a JSON object"
    )
    query_parser.add_argument(
        "--spec", metavar="FILE", help="path to a JSON QuerySpec document"
    )
    query_parser.add_argument(
        "--apply",
        action="append",
        metavar="FILE",
        help="apply this JSON update batch ({'insert': [[u,v],...], "
        "'delete': [...]}) before answering; repeatable, applied in order",
    )
    query_parser.add_argument(
        "--apply-edges",
        action="append",
        metavar="FILE",
        help="apply this edge-list file as one insert batch (streamed; "
        ".gz supported); repeatable",
    )
    query_parser.add_argument(
        "--listing",
        action="store_true",
        help="retain and report created/destroyed triangle lists per batch",
    )
    query_parser.add_argument(
        "--compact-threshold",
        type=int,
        default=None,
        metavar="N",
        help="overlay size that triggers compaction back into a fresh CSR",
    )
    query_parser.add_argument(
        "--json", action="store_true", help="emit a JSON document"
    )
    query_parser.set_defaults(handler=_cmd_query)

    table1_parser = subparsers.add_parser(
        "table1", help="render the paper's Table-1 predictions"
    )
    table1_parser.add_argument(
        "--num-nodes", type=int, default=1000, help="network size n (default 1000)"
    )
    table1_parser.add_argument(
        "--json", action="store_true", help="emit a JSON document"
    )
    table1_parser.set_defaults(handler=_cmd_table1)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``repro`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        preload = os.environ.get("REPRO_PRELOAD", "")
        if preload:
            from ..service.worker import preload_modules

            preload_modules(name.strip() for name in preload.split(","))
        if os.environ.get(FAULTS_ENV):
            # Arm the fault plane when a chaos run asks for it, for every
            # verb — even a plain `repro sweep` can be chaos-tested.
            from ..faults import install_from_env

            install_from_env()
        return args.handler(args)
    except BrokenPipeError:
        # Downstream pager/`head` closed the pipe; that is not an error.
        # (Must precede the OSError clause below — it is a subclass.)
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0
    except (ReproError, ValueError, OSError) as error:
        # ReproError covers the library's own validation; ValueError covers
        # constructor-level checks that predate the error hierarchy (e.g.
        # validate_kernel) reached through an otherwise schema-valid spec;
        # OSError covers unreadable spec files and unwritable --out paths.
        print(f"repro: error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
