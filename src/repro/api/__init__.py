"""Public front door: registries, declarative specs, records, store, CLI.

This package is the repository's layer-4 surface for *driving* the
reproduction without writing wiring code:

* :mod:`repro.api.registry` — named algorithms and workloads with
  parameter schemas (``list_algorithms`` / ``list_workloads``, the
  ``register_*`` decorators for extensions),
* :mod:`repro.api.specs` — frozen ``AlgorithmSpec`` / ``WorkloadSpec`` /
  ``RunSpec`` / ``SweepSpec`` documents that round-trip through JSON and
  resolve to the existing public constructors (zero behavior change:
  a spec-driven run is pinned by test to the direct-constructor run),
* :mod:`repro.api.records` — the durable record types and the canonical
  JSON encoding,
* :mod:`repro.api.store` — the append-only JSONL experiment store with
  interrupted-sweep resume, plus the content-addressed ``ResultCache``
  keyed by ``RunSpec.content_hash()``,
* :mod:`repro.api.cli` — the ``repro`` command line (``list`` / ``run``
  / ``sweep`` / ``cache`` / ``table1``).

Quickstart::

    from repro.api import AlgorithmSpec, RunSpec, WorkloadSpec

    spec = RunSpec(
        algorithm=AlgorithmSpec("theorem2-listing", {"repetitions": 1}),
        workload=WorkloadSpec("gnp", {"num_nodes": 60, "edge_probability": 0.3}),
        seed=7,
    )
    record = spec.run()          # same result as TriangleListing(...).run(...)
    print(spec.to_json(indent=2))  # ... and the whole run is one JSON document
"""

from .records import (
    AlgorithmCost,
    CountingResult,
    ExecutionMetrics,
    ExperimentRecord,
    PhaseReport,
    VerificationReport,
    canonical_json,
)
from .registry import (
    AlgorithmEntry,
    ParameterSchema,
    WorkloadEntry,
    get_algorithm,
    get_workload,
    list_algorithms,
    list_workloads,
    register_algorithm,
    register_workload,
    unregister_algorithm,
    unregister_workload,
)
from .queries import (
    QUERY_SCHEMA_VERSION,
    QueryKind,
    QueryResult,
    QuerySpec,
    get_query_kind,
    list_query_kinds,
)
from .specs import (
    SPEC_SCHEMA_VERSION,
    AlgorithmFactory,
    AlgorithmSpec,
    RunSpec,
    SweepSpec,
    WorkloadFactory,
    WorkloadSpec,
    load_spec,
    run_specs_to_cells,
)
from .store import (
    RecordStore,
    ResultCache,
    StoredSweep,
    SweepStoreWriter,
    load_sweep,
    run_sweep,
)
from .cli import build_parser, main

__all__ = [
    "AlgorithmCost",
    "CountingResult",
    "ExecutionMetrics",
    "ExperimentRecord",
    "PhaseReport",
    "VerificationReport",
    "canonical_json",
    "AlgorithmEntry",
    "ParameterSchema",
    "WorkloadEntry",
    "get_algorithm",
    "get_workload",
    "list_algorithms",
    "list_workloads",
    "register_algorithm",
    "register_workload",
    "unregister_algorithm",
    "unregister_workload",
    "QUERY_SCHEMA_VERSION",
    "QueryKind",
    "QueryResult",
    "QuerySpec",
    "get_query_kind",
    "list_query_kinds",
    "SPEC_SCHEMA_VERSION",
    "AlgorithmFactory",
    "AlgorithmSpec",
    "RunSpec",
    "SweepSpec",
    "WorkloadFactory",
    "WorkloadSpec",
    "load_spec",
    "run_specs_to_cells",
    "RecordStore",
    "ResultCache",
    "StoredSweep",
    "SweepStoreWriter",
    "load_sweep",
    "run_sweep",
    "build_parser",
    "main",
]
