"""Append-only JSONL store for sweep records, with resume.

A sweep's durable artifact is one JSONL file:

* line 1 — the sweep header: ``{"kind": "sweep-header", "schema": 1,
  "spec": <SweepSpec document>}``,
* every further line — one completed cell: ``{"kind": "record",
  "cell": <index>, "label": <algorithm label>, "record":
  <ExperimentRecord document>}``.

Lines are written in deterministic cell order as records complete (the
sweep scheduler streams them in order — see
:meth:`repro.analysis.SweepRunner.iter_cells`) and each line is flushed
on write, so an interrupted sweep leaves a valid prefix behind.
:func:`run_sweep` with ``resume=True`` reads that prefix, skips every
cell whose record already exists, reruns only the remainder with the
cells' original explicit seeds, and therefore reproduces the one-shot
file byte for byte — the acceptance test compares the files with
``filecmp``.

The store refuses to resume against a file whose header spec differs
from the requested spec: silently mixing two sweeps' records would
poison both.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple

from ..analysis.experiments import ExperimentRecord, SweepRunner
from ..errors import AnalysisError
from .records import canonical_json
from .specs import SPEC_SCHEMA_VERSION, SweepSpec

__all__ = [
    "RecordStore",
    "StoredSweep",
    "run_sweep",
    "load_sweep",
]

_HEADER_KIND = "sweep-header"
_RECORD_KIND = "record"


class RecordStore:
    """Line-oriented JSONL file with canonical encoding and append."""

    def __init__(self, path: "str | Path") -> None:
        self.path = Path(path)

    def exists(self) -> bool:
        """``True`` when the file exists and is non-empty."""
        return self.path.exists() and self.path.stat().st_size > 0

    def append(self, payload: Dict[str, Any]) -> None:
        """Append one canonical JSON line and flush it to disk."""
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(canonical_json(payload) + "\n")
            handle.flush()

    def discard_partial_tail(self) -> None:
        """Drop a trailing partial line left behind by a crash mid-write.

        Truncating back to the last complete line restores the invariant
        that the file is a clean prefix of the sweep — which is what
        makes the resumed file byte-identical to a one-shot run.
        """
        if not self.path.exists():
            return
        data = self.path.read_bytes()
        if not data or data.endswith(b"\n"):
            return
        with self.path.open("r+b") as handle:
            handle.truncate(data.rfind(b"\n") + 1)

    def read_all(self) -> List[Dict[str, Any]]:
        """Return every parsed line (ignoring a trailing partial line).

        A crash can truncate the final line mid-write; a resumed sweep
        must not choke on it.  Anything before the last newline must
        parse, though — corruption there is an error, not noise.
        """
        if not self.path.exists():
            return []
        text = self.path.read_text(encoding="utf-8")
        complete, _, partial = text.rpartition("\n")
        if not complete:
            return []
        entries = []
        for number, line in enumerate(complete.split("\n"), start=1):
            if not line:
                continue
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise AnalysisError(
                    f"{self.path}: line {number} is not valid JSON: {exc}"
                ) from exc
        return entries


@dataclass(frozen=True)
class StoredSweep:
    """The parsed contents of a sweep's JSONL file."""

    spec: SweepSpec
    #: Completed cells as (cell index, algorithm label, record), in file order.
    entries: Tuple[Tuple[int, str, ExperimentRecord], ...]

    def completed_cells(self) -> Set[int]:
        """Return the set of cell indices with a stored record."""
        return {cell for cell, _, _ in self.entries}

    def records_by_label(self) -> Dict[str, List[ExperimentRecord]]:
        """Return records grouped by algorithm label, in cell order.

        Matches :meth:`repro.analysis.SweepRunner.run_grid` output for a
        complete sweep.
        """
        grouped: Dict[str, List[ExperimentRecord]] = {
            label: [] for label in self.spec.labels()
        }
        for _, label, record in sorted(self.entries, key=lambda entry: entry[0]):
            grouped.setdefault(label, []).append(record)
        return grouped

    def records(self) -> List[ExperimentRecord]:
        """Return all records in cell order."""
        return [
            record
            for _, _, record in sorted(self.entries, key=lambda entry: entry[0])
        ]


def _parse_store(store: RecordStore, num_cells: Optional[int] = None) -> StoredSweep:
    entries = store.read_all()
    if not entries:
        raise AnalysisError(f"{store.path}: empty or missing sweep store")
    header = entries[0]
    if header.get("kind") != _HEADER_KIND or "spec" not in header:
        raise AnalysisError(
            f"{store.path}: first line is not a sweep header; this file "
            "was not written by run_sweep"
        )
    spec = SweepSpec.from_dict(header["spec"])
    cells: List[Tuple[int, str, ExperimentRecord]] = []
    seen_cells: Set[int] = set()
    for entry in entries[1:]:
        if entry.get("kind") != _RECORD_KIND:
            raise AnalysisError(
                f"{store.path}: unexpected line kind {entry.get('kind')!r}"
            )
        missing = {"cell", "label", "record"} - set(entry)
        if missing:
            raise AnalysisError(
                f"{store.path}: record line is missing {sorted(missing)}"
            )
        cell = int(entry["cell"])
        if num_cells is not None and not 0 <= cell < num_cells:
            raise AnalysisError(
                f"{store.path}: record for cell {cell} is outside the "
                f"spec's {num_cells}-cell grid"
            )
        if cell in seen_cells:
            raise AnalysisError(
                f"{store.path}: duplicate record for cell {cell} (were two "
                "sweeps racing on this file?)"
            )
        seen_cells.add(cell)
        cells.append(
            (cell, str(entry["label"]), ExperimentRecord.from_dict(entry["record"]))
        )
    return StoredSweep(spec=spec, entries=tuple(cells))


def load_sweep(path: "str | Path") -> StoredSweep:
    """Load a sweep store written by :func:`run_sweep`."""
    return _parse_store(RecordStore(path))


def run_sweep(
    spec: SweepSpec,
    path: "str | Path",
    runner: Optional[SweepRunner] = None,
    resume: bool = False,
    max_cells: Optional[int] = None,
) -> StoredSweep:
    """Execute ``spec``, appending each record to the JSONL file at ``path``.

    Parameters
    ----------
    runner:
        Sweep scheduler to execute cells on (serial by default).  Records
        are consumed in cell order via the streaming
        :meth:`~repro.analysis.SweepRunner.iter_cells`, so each is
        appended — and flushed — as soon as it completes.
    resume:
        Allow ``path`` to already contain a prefix of this sweep; cells
        with stored records are skipped and only the remainder runs.
        Without ``resume``, an existing non-empty file is an error.
    max_cells:
        Stop after executing this many *new* cells (the store keeps its
        valid prefix).  This is the deterministic stand-in for an
        interrupted sweep, used by the resume tests and the CI smoke leg.

    Returns the complete (or, with ``max_cells``, partial) stored sweep.
    """
    spec.require_sweepable()
    store = RecordStore(path)
    cells = spec.cells()
    labels = spec.cell_labels()
    done: Set[int] = set()
    entries: List[Tuple[int, str, ExperimentRecord]] = []
    if store.exists():
        if not resume:
            raise AnalysisError(
                f"{store.path} already exists; pass resume=True (CLI: "
                "--resume) to continue an interrupted sweep, or choose a "
                "fresh output path"
            )
        store.discard_partial_tail()
    if store.exists():
        # (still) non-empty after healing: a real prefix to resume from.
        stored = _parse_store(store, num_cells=len(cells))
        if stored.spec.to_dict() != spec.to_dict():
            raise AnalysisError(
                f"{store.path} was written for a different sweep spec; "
                "refusing to mix records from two sweeps in one file"
            )
        done = stored.completed_cells()
        entries = list(stored.entries)
    else:
        # Fresh file — or a crash landed mid-header-write and healing
        # emptied it; either way the sweep starts from the beginning.
        store.append(
            {
                "kind": _HEADER_KIND,
                "schema": SPEC_SCHEMA_VERSION,
                "spec": spec.to_dict(),
            }
        )

    pending = [index for index in range(len(cells)) if index not in done]
    if max_cells is not None:
        if max_cells < 0:
            raise AnalysisError(f"max_cells must be non-negative, got {max_cells}")
        pending = pending[:max_cells]
    if pending:
        own_runner = runner is None
        runner = runner if runner is not None else SweepRunner()
        try:
            stream = runner.iter_cells([cells[index] for index in pending])
            for index, record in zip(pending, stream):
                store.append(
                    {
                        "kind": _RECORD_KIND,
                        "cell": index,
                        "label": labels[index],
                        "record": record.to_dict(),
                    }
                )
                entries.append((index, labels[index], record))
        finally:
            if own_runner:
                runner.close()
    # The parsed prefix plus the records just appended is exactly the
    # file's contents — no need to re-read and re-parse it from disk.
    return StoredSweep(spec=spec, entries=tuple(entries))
