"""Durable sweep results: an append-only JSONL store and a content cache.

A sweep's durable artifact is one JSONL file:

* line 1 — the sweep header: ``{"kind": "sweep-header", "schema": 1,
  "spec": <SweepSpec document>}``,
* every further line — one completed cell: ``{"kind": "record",
  "cell": <index>, "label": <algorithm label>, "record":
  <ExperimentRecord document>}`` — or, for a cell the experiment
  service quarantined after repeated failures, ``{"kind": "cell-error",
  "cell": <index>, "label": <label>, "error": <reason>}``, holding the
  cell's position so the rest of the sweep still completes in order.

Lines are written in deterministic cell order as records complete (the
sweep scheduler streams them in order — see
:meth:`repro.analysis.SweepRunner.iter_cells`) and each line is flushed
on write, so an interrupted sweep leaves a valid prefix behind.
:func:`run_sweep` with ``resume=True`` reads that prefix, skips every
cell whose record already exists, reruns only the remainder with the
cells' original explicit seeds, and therefore reproduces the one-shot
file byte for byte — the acceptance test compares the files with
``filecmp``.

The store refuses to resume against a file whose header spec differs
from the requested spec: silently mixing two sweeps' records would
poison both.

Orthogonal to per-sweep files, :class:`ResultCache` is a
content-addressed record cache shared across sweeps: every record is
filed under its run spec's :meth:`~repro.api.specs.RunSpec.content_hash`,
so any later run or sweep containing the same (algorithm, workload,
seed) cell — in any grid, under any output path — is served from disk
instead of executing.  The cache stores the record document verbatim,
which is why cache hits reproduce store files byte for byte.
"""

from __future__ import annotations

import json
import os
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional, Set, Tuple

from concurrent.futures import BrokenExecutor

from ..analysis.experiments import ExperimentRecord, SweepRunner
from ..errors import AnalysisError, StoreError
from ..faults import fault_point, injected_os_error
from .records import canonical_json
from .specs import SPEC_SCHEMA_VERSION, RunSpec, SweepSpec

__all__ = [
    "RecordStore",
    "ResultCache",
    "StoredSweep",
    "SweepStoreWriter",
    "run_sweep",
    "load_sweep",
]

_HEADER_KIND = "sweep-header"
_RECORD_KIND = "record"
_ERROR_KIND = "cell-error"
_CACHE_KIND = "cached-record"
_HASH_HEX_LENGTH = 64


class ResultCache:
    """Content-addressed experiment-record cache, shared across sweeps.

    Entries live under ``root`` as ``<hash[:2]>/<hash>.json`` (sharded so
    no directory grows unbounded), one canonical-JSON document per entry:
    the run spec's document, its content hash, and the record document —
    self-describing enough to audit with nothing but ``cat``.

    Writes are atomic (temp file + :func:`os.replace`) and idempotent:
    the first record filed under a hash wins and later puts are no-ops,
    so concurrent sweeps sharing a cache cannot corrupt an entry or flip
    a stored result.  ``hits`` / ``misses`` / ``writes`` count this
    instance's traffic; tests pin "zero executions on a warm cache" and
    "no double-write on resume" with them.
    """

    def __init__(self, root: "str | Path") -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.writes = 0

    def _entry_path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.json"

    def get(self, spec: RunSpec) -> Optional[ExperimentRecord]:
        """Return the cached record for ``spec``, or ``None`` on a miss.

        A stored entry whose run document does not match ``spec`` (hash
        collision or hand-edited file) is an error, not a silent miss:
        serving the wrong record would corrupt downstream stores.
        """
        digest = spec.content_hash()
        path = self._entry_path(digest)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            self.misses += 1
            return None
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise AnalysisError(
                f"{path}: cache entry is not valid JSON: {exc}"
            ) from exc
        if payload.get("kind") != _CACHE_KIND or "record" not in payload:
            raise AnalysisError(
                f"{path}: not a result-cache entry; was this directory "
                "written by something else?"
            )
        if payload.get("run") != spec.to_dict():
            raise AnalysisError(
                f"{path}: cached run spec does not match the requested "
                f"spec under hash {digest}; the entry is corrupt (or "
                "hand-edited) — evict it with 'repro cache --evict'"
            )
        self.hits += 1
        return ExperimentRecord.from_dict(payload["record"])

    def put(self, spec: RunSpec, record: ExperimentRecord) -> bool:
        """File ``record`` under ``spec``'s hash; ``False`` if already cached."""
        digest = spec.content_hash()
        path = self._entry_path(digest)
        if path.exists():
            return False
        payload = {
            "kind": _CACHE_KIND,
            "schema": SPEC_SCHEMA_VERSION,
            "hash": digest,
            "run": spec.to_dict(),
            "record": record.to_dict(),
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            tmp.write_text(canonical_json(payload) + "\n", encoding="utf-8")
            os.replace(tmp, path)
        except OSError as exc:
            # A full disk (or vanished directory) must leave the cache
            # clean: no .tmp litter, no truncated entry under the hash.
            try:
                tmp.unlink()
            except OSError:
                pass
            raise StoreError(
                f"cannot write cache entry {path}: {exc}"
            ) from exc
        self.writes += 1
        return True

    def _entry_files(self) -> Iterator[Path]:
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if not (shard.is_dir() and len(shard.name) == 2):
                continue
            for path in sorted(shard.glob("*.json")):
                digest = path.stem
                if len(digest) == _HASH_HEX_LENGTH and digest.startswith(shard.name):
                    yield path

    def entries(self) -> List[Dict[str, Any]]:
        """Return ``{"hash", "experiment", "algorithm", "workload", "seed",
        "bytes"}`` summaries of every entry, sorted by hash."""
        summaries = []
        for path in self._entry_files():
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except json.JSONDecodeError as exc:
                raise AnalysisError(
                    f"{path}: cache entry is not valid JSON: {exc}"
                ) from exc
            run = payload.get("run", {})
            summaries.append(
                {
                    "hash": path.stem,
                    "experiment": run.get("experiment"),
                    "algorithm": run.get("algorithm", {}).get("name"),
                    "workload": run.get("workload", {}).get("name"),
                    "seed": run.get("seed"),
                    "bytes": path.stat().st_size,
                }
            )
        return summaries

    def stats(self) -> Dict[str, Any]:
        """Return entry count, total bytes, and this instance's traffic."""
        count = 0
        total_bytes = 0
        for path in self._entry_files():
            count += 1
            total_bytes += path.stat().st_size
        return {
            "root": str(self.root),
            "entries": count,
            "bytes": total_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
        }

    def evict(self, digest: str) -> bool:
        """Remove the entry under ``digest``; ``False`` if absent."""
        if len(digest) != _HASH_HEX_LENGTH or not all(
            c in "0123456789abcdef" for c in digest
        ):
            raise AnalysisError(
                f"not a sha256 content hash: {digest!r} (expected 64 hex "
                "characters, as printed by 'repro cache')"
            )
        path = self._entry_path(digest)
        try:
            path.unlink()
        except FileNotFoundError:
            return False
        return True

    def clear(self) -> int:
        """Remove every entry, returning how many were removed."""
        removed = 0
        for path in list(self._entry_files()):
            path.unlink()
            removed += 1
        return removed


class RecordStore:
    """Line-oriented JSONL file with canonical encoding and append."""

    def __init__(self, path: "str | Path") -> None:
        self.path = Path(path)

    def exists(self) -> bool:
        """``True`` when the file exists and is non-empty."""
        return self.path.exists() and self.path.stat().st_size > 0

    def append(self, payload: Dict[str, Any]) -> None:
        """Append one canonical JSON line and flush it to disk."""
        line = canonical_json(payload) + "\n"
        fault = fault_point("store.append", kind=str(payload.get("kind")))
        try:
            with self.path.open("a", encoding="utf-8") as handle:
                if fault is not None:
                    if fault.action == "enospc":
                        raise injected_os_error(28, "disk full")  # ENOSPC
                    if fault.action == "torn":
                        # A crash mid-write: half a line, no newline —
                        # exactly what discard_partial_tail heals.
                        handle.write(line[: max(1, len(line) // 2)])
                        handle.flush()
                        raise injected_os_error(5, "torn tail write")  # EIO
                handle.write(line)
                handle.flush()
                fsync_fault = fault_point("store.fsync", kind=str(payload.get("kind")))
                if fsync_fault is not None:
                    raise injected_os_error(5, "fsync failed")  # EIO
        except OSError as exc:
            raise StoreError(f"cannot append to {self.path}: {exc}") from exc

    def discard_partial_tail(self) -> None:
        """Drop a trailing partial line left behind by a crash mid-write.

        Truncating back to the last complete line restores the invariant
        that the file is a clean prefix of the sweep — which is what
        makes the resumed file byte-identical to a one-shot run.
        """
        if not self.path.exists():
            return
        data = self.path.read_bytes()
        if not data or data.endswith(b"\n"):
            return
        with self.path.open("r+b") as handle:
            handle.truncate(data.rfind(b"\n") + 1)

    def read_all(self) -> List[Dict[str, Any]]:
        """Return every parsed line (ignoring a trailing partial line).

        A crash can truncate the final line mid-write; a resumed sweep
        must not choke on it.  Anything before the last newline must
        parse, though — corruption there is an error, not noise.
        """
        if not self.path.exists():
            return []
        text = self.path.read_text(encoding="utf-8")
        complete, _, partial = text.rpartition("\n")
        if not complete:
            return []
        entries = []
        for number, line in enumerate(complete.split("\n"), start=1):
            if not line:
                continue
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise AnalysisError(
                    f"{self.path}: line {number} is not valid JSON: {exc}"
                ) from exc
        return entries


@dataclass(frozen=True)
class StoredSweep:
    """The parsed contents of a sweep's JSONL file."""

    spec: SweepSpec
    #: Completed cells as (cell index, algorithm label, record), in file order.
    entries: Tuple[Tuple[int, str, ExperimentRecord], ...]
    #: Quarantined cells as (cell index, label, error reason), in file order.
    errors: Tuple[Tuple[int, str, str], ...] = ()

    def completed_cells(self) -> Set[int]:
        """Return the set of cell indices with a stored record."""
        return {cell for cell, _, _ in self.entries}

    def error_cells(self) -> Set[int]:
        """Return the set of cell indices holding a cell-error line."""
        return {cell for cell, _, _ in self.errors}

    def records_by_label(self) -> Dict[str, List[ExperimentRecord]]:
        """Return records grouped by algorithm label, in cell order.

        Matches :meth:`repro.analysis.SweepRunner.run_grid` output for a
        complete sweep.
        """
        grouped: Dict[str, List[ExperimentRecord]] = {
            label: [] for label in self.spec.labels()
        }
        for _, label, record in sorted(self.entries, key=lambda entry: entry[0]):
            grouped.setdefault(label, []).append(record)
        return grouped

    def records(self) -> List[ExperimentRecord]:
        """Return all records in cell order."""
        return [
            record
            for _, _, record in sorted(self.entries, key=lambda entry: entry[0])
        ]


def _parse_store(store: RecordStore, num_cells: Optional[int] = None) -> StoredSweep:
    entries = store.read_all()
    if not entries:
        raise AnalysisError(f"{store.path}: empty or missing sweep store")
    header = entries[0]
    if header.get("kind") != _HEADER_KIND or "spec" not in header:
        raise AnalysisError(
            f"{store.path}: first line is not a sweep header; this file "
            "was not written by run_sweep"
        )
    spec = SweepSpec.from_dict(header["spec"])
    cells: List[Tuple[int, str, ExperimentRecord]] = []
    errors: List[Tuple[int, str, str]] = []
    seen_cells: Set[int] = set()
    for entry in entries[1:]:
        kind = entry.get("kind")
        if kind not in (_RECORD_KIND, _ERROR_KIND):
            raise AnalysisError(
                f"{store.path}: unexpected line kind {entry.get('kind')!r}"
            )
        payload_key = "record" if kind == _RECORD_KIND else "error"
        missing = {"cell", "label", payload_key} - set(entry)
        if missing:
            raise AnalysisError(
                f"{store.path}: {kind} line is missing {sorted(missing)}"
            )
        cell = int(entry["cell"])
        if num_cells is not None and not 0 <= cell < num_cells:
            raise AnalysisError(
                f"{store.path}: record for cell {cell} is outside the "
                f"spec's {num_cells}-cell grid"
            )
        if cell in seen_cells:
            raise AnalysisError(
                f"{store.path}: duplicate record for cell {cell} (were two "
                "sweeps racing on this file?)"
            )
        seen_cells.add(cell)
        if kind == _RECORD_KIND:
            cells.append(
                (
                    cell,
                    str(entry["label"]),
                    ExperimentRecord.from_dict(entry["record"]),
                )
            )
        else:
            errors.append((cell, str(entry["label"]), str(entry["error"])))
    return StoredSweep(spec=spec, entries=tuple(cells), errors=tuple(errors))


def load_sweep(path: "str | Path") -> StoredSweep:
    """Load a sweep store written by :func:`run_sweep`."""
    return _parse_store(RecordStore(path))


class SweepStoreWriter:
    """In-order, resumable writer of one sweep's JSONL store.

    The single authority on the store's byte layout, shared by the
    serial :func:`run_sweep` path and the experiment service's
    dispatcher: construction replays ``run_sweep``'s header/resume
    protocol exactly (heal a partial tail, adopt a matching prefix or
    refuse a foreign one, write the header on a fresh file), and
    :meth:`write` appends record lines **in ascending cell order** no
    matter the order records arrive in — out-of-order completions (a
    worker fleet finishes cells in whatever order leases land) are
    buffered and flushed as soon as every smaller unwritten cell is in.

    Since a serial sweep writes its pending cells in ascending order
    anyway, both paths produce the same file, byte for byte.
    """

    def __init__(
        self, spec: SweepSpec, path: "str | Path", resume: bool = False
    ) -> None:
        spec.require_sweepable()
        self.spec = spec
        self.store = RecordStore(path)
        self.labels = spec.cell_labels()
        self.num_cells = len(self.labels)
        #: Cells whose line (record or cell-error) is on disk (the resumed
        #: prefix at construction; grows as buffered lines flush).
        self.done: Set[int] = set()
        self._entries: List[Tuple[int, str, ExperimentRecord]] = []
        self._errors: List[Tuple[int, str, str]] = []
        #: Buffered store lines (full line documents) awaiting in-order flush.
        self._buffer: Dict[int, Dict[str, Any]] = {}
        self.written = 0
        if self.store.exists():
            if not resume:
                raise AnalysisError(
                    f"{self.store.path} already exists; pass resume=True "
                    "(CLI: --resume) to continue an interrupted sweep, or "
                    "choose a fresh output path"
                )
            self.store.discard_partial_tail()
        if self.store.exists():
            # (still) non-empty after healing: a real prefix to resume from.
            stored = _parse_store(self.store, num_cells=self.num_cells)
            if stored.spec.to_dict() != spec.to_dict():
                raise AnalysisError(
                    f"{self.store.path} was written for a different sweep "
                    "spec; refusing to mix records from two sweeps in one "
                    "file"
                )
            self.done = stored.completed_cells() | stored.error_cells()
            self._entries = list(stored.entries)
            self._errors = list(stored.errors)
        else:
            # Fresh file — or a crash landed mid-header-write and healing
            # emptied it; either way the sweep starts from the beginning.
            self.store.append(
                {
                    "kind": _HEADER_KIND,
                    "schema": SPEC_SCHEMA_VERSION,
                    "spec": spec.to_dict(),
                }
            )
        self._order: Deque[int] = deque(
            index for index in range(self.num_cells) if index not in self.done
        )

    def pending(self) -> List[int]:
        """Cells without a record yet (written or buffered), ascending."""
        return [index for index in self._order if index not in self._buffer]

    def write(self, cell: int, record_doc: Dict[str, Any]) -> ExperimentRecord:
        """File ``cell``'s record document; returns the parsed record.

        The document is validated immediately (a malformed record must
        fail at the producer, not corrupt the file) but hits disk only
        once every smaller unwritten cell has arrived — preserving the
        serial path's byte layout under out-of-order completion.
        """
        if not 0 <= cell < self.num_cells:
            raise AnalysisError(
                f"cell {cell} is outside the spec's {self.num_cells}-cell grid"
            )
        if cell in self.done or cell in self._buffer:
            raise AnalysisError(
                f"{self.store.path}: cell {cell} already has a record"
            )
        record = ExperimentRecord.from_dict(record_doc)
        self._buffer[cell] = {
            "kind": _RECORD_KIND,
            "cell": cell,
            "label": self.labels[cell],
            "record": record_doc,
        }
        self._flush_ready()
        return record

    def write_error(self, cell: int, error: str) -> None:
        """File a cell-error line for a quarantined ``cell``.

        Holds the cell's position in the in-order layout (buffered and
        flushed exactly like a record), so quarantining one poison cell
        lets every later cell's record still reach the file.
        """
        if not 0 <= cell < self.num_cells:
            raise AnalysisError(
                f"cell {cell} is outside the spec's {self.num_cells}-cell grid"
            )
        if cell in self.done or cell in self._buffer:
            raise AnalysisError(
                f"{self.store.path}: cell {cell} already has a record"
            )
        self._buffer[cell] = {
            "kind": _ERROR_KIND,
            "cell": cell,
            "label": self.labels[cell],
            "error": str(error),
        }
        self._flush_ready()

    def _flush_ready(self) -> None:
        while self._order and self._order[0] in self._buffer:
            index = self._order.popleft()
            doc = self._buffer.pop(index)
            self.store.append(doc)
            if doc["kind"] == _RECORD_KIND:
                self._entries.append(
                    (
                        index,
                        self.labels[index],
                        ExperimentRecord.from_dict(doc["record"]),
                    )
                )
            else:
                self._errors.append((index, self.labels[index], doc["error"]))
            self.done.add(index)
            self.written += 1

    @property
    def buffered(self) -> int:
        """Records held back waiting for a smaller cell to complete."""
        return len(self._buffer)

    def stored(self) -> StoredSweep:
        """Return the written contents as a :class:`StoredSweep`.

        Matches the file exactly (buffered records are not included —
        they are not on disk).
        """
        return StoredSweep(
            spec=self.spec,
            entries=tuple(self._entries),
            errors=tuple(self._errors),
        )


def run_sweep(
    spec: SweepSpec,
    path: "str | Path",
    runner: Optional[SweepRunner] = None,
    resume: bool = False,
    max_cells: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    retries: int = 0,
    on_retry: Optional[Callable[[int, str], None]] = None,
) -> StoredSweep:
    """Execute ``spec``, appending each record to the JSONL file at ``path``.

    Parameters
    ----------
    runner:
        Sweep scheduler to execute cells on (serial by default).  Records
        are consumed in cell order via the streaming
        :meth:`~repro.analysis.SweepRunner.iter_cells`, so each is
        appended — and flushed — as soon as it completes.
    resume:
        Allow ``path`` to already contain a prefix of this sweep; cells
        with stored records are skipped and only the remainder runs.
        Without ``resume``, an existing non-empty file is an error.
    max_cells:
        Stop after executing this many *new* cells (the store keeps its
        valid prefix).  This is the deterministic stand-in for an
        interrupted sweep, used by the resume tests and the CI smoke leg.
    cache:
        Optional content-addressed :class:`ResultCache`.  Cells whose run
        spec already has a cached record are served from it (the stored
        record document is appended verbatim, keeping the JSONL file
        byte-identical to an executed sweep) and fresh records are filed
        back.  Resume and cache compose: resumed cells never touch the
        cache, so resuming over a warm cache does not double-write.

    progress:
        Optional ``(completed, total)`` callback, invoked once with the
        resumed state before any cell runs and again after every
        completed cell — what ``repro sweep --progress`` renders.
    retries:
        How many times to resume the remaining cells after the executor
        breaks (a worker process OOM-killed or segfaulted breaks the
        whole pool).  The store's flushed prefix survives each retry —
        only cells without a record rerun — so the final file is still
        byte-identical to an uninterrupted sweep.  Zero (the default)
        re-raises the first breakage, as before.
    on_retry:
        Optional ``(attempt, reason)`` callback, invoked before each
        retry — what ``repro sweep --progress`` reports retries with.

    Returns the complete (or, with ``max_cells``, partial) stored sweep.
    """
    writer = SweepStoreWriter(spec, path, resume=resume)
    cells = spec.cells()
    pending = writer.pending()
    if max_cells is not None:
        if max_cells < 0:
            raise AnalysisError(f"max_cells must be non-negative, got {max_cells}")
        pending = pending[:max_cells]
    if progress is not None:
        progress(len(writer.done), writer.num_cells)
    if pending:
        own_runner = runner is None
        runner = runner if runner is not None else SweepRunner()
        attempt = 0
        try:
            while pending:
                try:
                    stream = runner.iter_cells(
                        [cells[index] for index in pending], cache=cache
                    )
                    for index, record in zip(pending, stream):
                        writer.write(index, record.to_dict())
                        if progress is not None:
                            progress(len(writer.done), writer.num_cells)
                    break
                except BrokenExecutor as exc:
                    # iter_cells already dropped the broken pool; the
                    # next iteration gets a fresh one from the runner.
                    attempt += 1
                    if attempt > retries:
                        raise
                    pending = [
                        index for index in pending if index not in writer.done
                    ]
                    if on_retry is not None:
                        on_retry(attempt, str(exc) or type(exc).__name__)
        finally:
            if own_runner:
                runner.close()
    # The writer's adopted prefix plus the records just flushed is exactly
    # the file's contents — no need to re-read and re-parse it from disk.
    return writer.stored()
