"""The chaos session: byte-identity under faults, poison-cell quarantine.

These are the PR's acceptance pins.  One seeded chaos session runs a
real dispatcher/worker fleet with the standard recoverable-fault mix
armed and asserts the stores match a serial run byte for byte; the
poison phase asserts a permanently failing cell is quarantined after
exactly K attempts without stalling the rest of the job.
"""

from __future__ import annotations

import pytest

from repro.api.store import load_sweep
from repro.errors import ServiceError
from repro.faults import FaultSchedule, active_plane
from repro.service.chaos import (
    chaos_specs,
    poison_schedule,
    run_chaos_session,
)
from repro.service.events import read_events

#: The CI-pinned seed; bench_chaos.py and the chaos-smoke job use it too.
PINNED_SEED = 7


@pytest.fixture(scope="module")
def chaos_report(tmp_path_factory):
    """One full chaos session, shared by every assertion below."""
    root = tmp_path_factory.mktemp("chaos")
    return root, run_chaos_session(root, seed=PINNED_SEED)


class TestChaosSession:
    def test_session_is_clean(self, chaos_report):
        _, report = chaos_report
        assert report["failures"] == []
        assert report["ok"]

    def test_stores_are_byte_identical_to_serial(self, chaos_report):
        _, report = chaos_report
        assert report["identical"]
        assert all(sweep["identical"] for sweep in report["sweeps"])
        assert [sweep["state"] for sweep in report["sweeps"]] == ["done"] * 3

    def test_at_least_five_distinct_fault_points_fired(self, chaos_report):
        _, report = chaos_report
        assert len(report["fault_points_fired"]) >= 5, report
        assert report["fault_fires"] >= 5

    def test_no_recoverable_fault_quarantines_a_cell(self, chaos_report):
        _, report = chaos_report
        assert report["quarantined"] == 0

    def test_poison_cell_quarantined_after_exactly_k_attempts(
        self, chaos_report
    ):
        _, report = chaos_report
        poison = report["poison"]
        assert poison["state"] == "done"
        assert poison["quarantined"] == 1
        assert poison["observed_attempts"] == poison["attempts"] == 3
        # Every healthy cell completed; the job never stalled.
        assert poison["cells_done"] == 5

    def test_poison_store_completes_with_a_cell_error_line(
        self, chaos_report
    ):
        root, report = chaos_report
        stored = load_sweep(root / "poison.records.jsonl")
        assert stored.error_cells() == {report["poison"]["cell"]}
        assert len(stored.entries) == 5
        cell, _, reason = next(
            error
            for error in stored.errors
            if error[0] == report["poison"]["cell"]
        )
        assert "injected fault" in reason

    def test_incident_log_recorded_the_quarantine(self, chaos_report):
        root, report = chaos_report
        events = read_events(root / "poison-svc")
        kinds = [event["event"] for event in events]
        assert "cell-quarantined" in kinds
        quarantine = next(
            event for event in events if event["event"] == "cell-quarantined"
        )
        assert quarantine["cell"] == report["poison"]["cell"]
        assert quarantine["attempts"] == 3
        # Each of the three failures before it was logged as a retry or
        # the quarantine itself.
        assert kinds.count("cell-retry") >= 2

    def test_no_plane_leaks_out_of_the_session(self, chaos_report):
        assert active_plane() is None


class TestControlSession:
    def test_control_session_fires_nothing(self, tmp_path):
        report = run_chaos_session(tmp_path, control=True)
        assert report["ok"], report["failures"]
        assert report["mode"] == "control"
        assert report["fault_fires"] == 0
        assert report["quarantined"] == 0
        assert report["identical"]
        assert "poison" not in report


class TestSessionPieces:
    def test_chaos_specs_are_deterministic(self):
        first, second = chaos_specs(), chaos_specs()
        assert [spec.to_dict() for spec in first] == [
            spec.to_dict() for spec in second
        ]
        assert len(first) == 3
        assert len({spec.experiment for spec in first}) == 3

    def test_poison_schedule_targets_one_cell_forever(self):
        schedule = poison_schedule(4)
        assert isinstance(schedule, FaultSchedule)
        (rule,) = schedule.rules
        assert rule.point == "worker.execute" and rule.action == "fail"
        assert dict(rule.match) == {"cell": 4}
        assert rule.times is None

    def test_bad_parameters_are_refused(self, tmp_path):
        with pytest.raises(ServiceError, match="worker"):
            run_chaos_session(tmp_path, workers=0)
        with pytest.raises(ServiceError, match="poison_attempts"):
            run_chaos_session(tmp_path, poison_attempts=0)
