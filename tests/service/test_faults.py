"""The fault plane: schedules, rule matching, counters, env activation."""

from __future__ import annotations

import json

import pytest

from repro.api.records import canonical_json
from repro.errors import FaultError, ServiceError
from repro.faults import (
    FAULT_POINTS,
    FAULTS_ENV,
    FAULTS_EVENTS_ENV,
    FAULTS_SCOPE_ENV,
    FaultPlane,
    FaultRule,
    FaultSchedule,
    active_plane,
    fault_environment,
    fault_point,
    install_from_env,
    install_plane,
    injected_os_error,
    is_injected,
    uninstall_plane,
)
from repro.service.events import EventLog, read_events


@pytest.fixture(autouse=True)
def _no_leaked_plane():
    """Every test starts and ends with no plane installed."""
    uninstall_plane()
    yield
    uninstall_plane()


class TestRuleValidation:
    def test_unknown_point_is_refused(self):
        with pytest.raises(FaultError, match="unknown fault point"):
            FaultRule.build("worker.telepathy", "crash")

    def test_unsupported_action_is_refused(self):
        with pytest.raises(FaultError, match="cannot perform"):
            FaultRule.build("protocol.send", "crash")

    def test_every_registered_action_builds(self):
        for point, actions in FAULT_POINTS.items():
            for action in actions:
                FaultRule.build(point, action)

    def test_negative_after_n_is_refused(self):
        with pytest.raises(FaultError, match="after_n"):
            FaultRule.build("worker.execute", "crash", after_n=-1)

    def test_zero_times_is_refused(self):
        with pytest.raises(FaultError, match="times"):
            FaultRule.build("worker.execute", "crash", times=0)

    def test_non_scalar_match_value_is_refused(self):
        with pytest.raises(FaultError, match="JSON scalars"):
            FaultRule.build("worker.execute", "crash", match={"cell": [1]})

    def test_unknown_rule_field_is_refused(self):
        with pytest.raises(FaultError, match="unknown fault-rule fields"):
            FaultRule.from_dict(
                {"point": "worker.execute", "action": "crash", "when": "now"}
            )


class TestScheduleRoundTrip:
    def test_json_round_trip_is_stable(self):
        schedule = FaultSchedule.chaos(seed=42)
        text = schedule.to_json()
        again = FaultSchedule.from_json(text)
        assert again == schedule
        assert again.to_json() == text

    def test_canonical_encoding_matches_api_records(self):
        # faults.py keeps a local canonical encoder (importing
        # api.records would cycle through graphs.shm); pin the parity.
        document = FaultSchedule.chaos(seed=3).to_dict()
        assert FaultSchedule.chaos(seed=3).to_json() == canonical_json(document)

    def test_same_seed_same_schedule(self):
        assert FaultSchedule.chaos(seed=9) == FaultSchedule.chaos(seed=9)
        assert FaultSchedule.chaos(seed=9) != FaultSchedule.chaos(seed=10)

    def test_dump_and_load(self, tmp_path):
        path = tmp_path / "schedule.json"
        schedule = FaultSchedule.chaos(seed=5, workers=3)
        schedule.dump(path)
        assert FaultSchedule.load(path) == schedule

    def test_not_a_schedule_document(self):
        with pytest.raises(FaultError, match="not a fault-schedule"):
            FaultSchedule.from_json(json.dumps({"kind": "sweep-header"}))

    def test_invalid_json(self):
        with pytest.raises(FaultError, match="invalid fault-schedule JSON"):
            FaultSchedule.from_json("{nope")

    def test_boolean_seed_is_refused(self):
        with pytest.raises(FaultError, match="seed must be an integer"):
            FaultSchedule(seed=True)


def _plane(*rules, scope="", sink=None, seed=0):
    return FaultPlane(
        FaultSchedule(seed=seed, rules=tuple(rules)), scope=scope, sink=sink
    )


class TestPlaneMatching:
    def test_after_n_skips_clean_events_first(self):
        plane = _plane(FaultRule.build("worker.execute", "fail", after_n=2))
        hits = [plane.hit("worker.execute", {"cell": i}) for i in range(4)]
        assert [hit is not None for hit in hits] == [False, False, True, False]

    def test_times_none_fires_every_match(self):
        plane = _plane(
            FaultRule.build(
                "worker.execute", "fail", match={"cell": 3}, times=None
            )
        )
        for _ in range(5):
            assert plane.hit("worker.execute", {"cell": 3}) is not None
        assert plane.hit("worker.execute", {"cell": 4}) is None
        assert plane.counts() == {"worker.execute:fail": 5}

    def test_match_narrows_by_context(self):
        plane = _plane(
            FaultRule.build("protocol.send", "delay", match={"frame": "record"})
        )
        assert plane.hit("protocol.send", {"frame": "lease"}) is None
        assert plane.hit("protocol.send", {"frame": "record"}) is not None

    def test_scope_matches_the_process_not_the_event(self):
        rule = FaultRule.build("worker.execute", "fail", match={"scope": "2"})
        assert _plane(rule, scope="1").hit("worker.execute", {}) is None
        assert _plane(rule, scope="2").hit("worker.execute", {}) is not None

    def test_shadowed_rules_still_advance_their_counters(self):
        # Two rules on the same point: while the first keeps firing, the
        # second's after_n window still counts down, so both eventually
        # fire instead of the second starving forever.
        first = FaultRule.build("worker.execute", "fail", times=2)
        second = FaultRule.build("worker.execute", "stall", after_n=2)
        plane = _plane(first, second)
        actions = [
            plane.hit("worker.execute", {}).action for _ in range(3)
        ]
        assert actions == ["fail", "fail", "stall"]

    def test_fired_total_and_counts(self):
        plane = _plane(
            FaultRule.build("store.append", "enospc"),
            FaultRule.build("store.fsync", "fail"),
        )
        plane.hit("store.append", {"kind": "record"})
        plane.hit("store.fsync", {"kind": "record"})
        plane.hit("store.append", {"kind": "record"})  # times=1: spent
        assert plane.fired_total() == 2
        assert plane.counts() == {
            "store.append:enospc": 1,
            "store.fsync:fail": 1,
        }

    def test_fire_is_reported_to_the_sink(self):
        seen = []
        plane = _plane(
            FaultRule.build("dispatcher.lease", "expire"),
            scope="dispatcher",
            sink=seen.append,
        )
        plane.hit("dispatcher.lease", {"job": "job-1", "cell": 4})
        assert len(seen) == 1
        payload = seen[0]
        assert payload["event"] == "fault-fired"
        assert payload["point"] == "dispatcher.lease"
        assert payload["action"] == "expire"
        assert payload["scope"] == "dispatcher"
        assert payload["job"] == "job-1" and payload["cell"] == 4

    def test_a_broken_sink_never_breaks_injection(self):
        def explode(payload):
            raise RuntimeError("sink down")

        plane = _plane(
            FaultRule.build("dispatcher.lease", "expire"), sink=explode
        )
        assert plane.hit("dispatcher.lease", {}) is not None


class TestActions:
    def test_seconds_reads_params_with_default(self):
        plane = _plane(
            FaultRule.build(
                "protocol.send", "delay", params={"seconds": 0.25}
            ),
            FaultRule.build("worker.execute", "stall"),
        )
        assert plane.hit("protocol.send", {}).seconds() == 0.25
        assert plane.hit("worker.execute", {}).seconds(1.5) == 1.5

    def test_corrupt_bytes_is_seeded_and_length_preserving(self):
        first = _plane(
            FaultRule.build("protocol.send", "corrupt"), seed=11
        )
        second = _plane(
            FaultRule.build("protocol.send", "corrupt"), seed=11
        )
        data = bytes(range(64))
        mangled = first.hit("protocol.send", {}).corrupt_bytes(data)
        assert mangled != data
        assert len(mangled) == len(data)
        assert second.hit("protocol.send", {}).corrupt_bytes(data) == mangled
        assert first.hit("protocol.send", {}) is None  # times=1

    def test_injected_errors_are_recognisable(self):
        error = injected_os_error(28, "disk full")
        assert isinstance(error, OSError)
        assert error.errno == 28
        assert is_injected(error)
        assert not is_injected(OSError(28, "genuinely full"))


class TestGlobalInstallation:
    def test_fault_point_without_a_plane_is_a_no_op(self):
        assert active_plane() is None
        assert fault_point("worker.execute", cell=1) is None

    def test_install_and_uninstall(self):
        plane = _plane(FaultRule.build("worker.execute", "fail"))
        assert install_plane(plane) is None
        assert active_plane() is plane
        assert fault_point("worker.execute") is not None
        uninstall_plane()
        assert active_plane() is None

    def test_install_from_env_round_trip(self, tmp_path):
        schedule = FaultSchedule(
            seed=1, rules=(FaultRule.build("worker.execute", "fail"),)
        )
        schedule_path = schedule.dump(tmp_path / "schedule.json")
        events_path = tmp_path / "events.jsonl"
        env = fault_environment(schedule_path, scope="3", events_path=events_path)
        assert env == {
            FAULTS_ENV: str(schedule_path),
            FAULTS_SCOPE_ENV: "3",
            FAULTS_EVENTS_ENV: str(events_path),
        }
        plane = install_from_env(env)
        assert plane is not None and active_plane() is plane
        assert plane.scope == "3"
        assert plane.schedule == schedule
        plane.hit("worker.execute", {"cell": 7})
        fired = read_events(events_path)
        assert len(fired) == 1
        assert fired[0]["event"] == "fault-fired"
        assert fired[0]["scope"] == "3" and fired[0]["cell"] == 7

    def test_install_from_env_without_the_variable(self):
        assert install_from_env({}) is None
        assert active_plane() is None

    def test_install_from_env_missing_file(self, tmp_path):
        with pytest.raises(FaultError, match="cannot read fault schedule"):
            install_from_env({FAULTS_ENV: str(tmp_path / "nope.json")})


class TestEventLog:
    def test_emit_and_read_round_trip(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        log.emit("worker-lost", worker="w1", leases=2)
        log.emit("cell-retry", cell=3)
        events = read_events(tmp_path)  # directory form resolves the name
        assert [event["event"] for event in events] == [
            "worker-lost",
            "cell-retry",
        ]
        assert events[0]["worker"] == "w1" and events[0]["leases"] == 2
        assert all("ts" in event for event in events)

    def test_tail_keeps_the_last_n(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        for index in range(5):
            log.emit("tick", index=index)
        events = read_events(tmp_path, tail=2)
        assert [event["index"] for event in events] == [3, 4]

    def test_missing_log_is_empty(self, tmp_path):
        assert read_events(tmp_path) == []

    def test_torn_final_line_is_ignored(self, tmp_path):
        path = tmp_path / "events.jsonl"
        EventLog(path).emit("ok")
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"ts": 1, "event": "torn')  # no newline: mid-crash
        events = read_events(path)
        assert [event["event"] for event in events] == ["ok"]

    def test_corruption_before_the_tail_is_an_error(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('not json\n{"event": "ok"}\n', encoding="utf-8")
        with pytest.raises(ServiceError, match="line 1"):
            read_events(path)

    def test_emit_swallows_write_failures(self, tmp_path):
        log = EventLog(tmp_path / "no-such-dir" / "events.jsonl")
        log.emit("lost")  # must not raise

    def test_sink_adapts_fault_plane_payloads(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        log.sink({"event": "fault-fired", "point": "worker.execute"})
        events = read_events(tmp_path)
        assert events[0]["event"] == "fault-fired"
        assert events[0]["point"] == "worker.execute"
