"""Wire framing, address documents, and service discovery."""

from __future__ import annotations

import json
import socket
import struct
import threading

import pytest

from repro.api.records import canonical_json
from repro.errors import ServiceError
from repro.service.protocol import (
    FRAME_MAX_BYTES,
    SERVICE_INFO_NAME,
    ServiceAddress,
    bind_service_socket,
    read_service_info,
    recv_frame,
    remove_service_info,
    send_frame,
    write_service_info,
)


@pytest.fixture
def pair():
    left, right = socket.socketpair()
    yield left, right
    left.close()
    right.close()


class TestFraming:
    def test_round_trip(self, pair):
        left, right = pair
        payload = {"type": "lease", "cell": 3, "run": {"seed": 7}}
        send_frame(left, payload)
        assert recv_frame(right) == payload

    def test_wire_bytes_are_canonical_json(self, pair):
        left, right = pair
        payload = {"type": "record", "b": 1, "a": 2}
        send_frame(left, payload)
        header = right.recv(4)
        (length,) = struct.Struct(">I").unpack(header)
        body = right.recv(length)
        assert body == canonical_json(payload).encode("utf-8")

    def test_many_frames_in_sequence(self, pair):
        left, right = pair
        for index in range(20):
            send_frame(left, {"type": "heartbeat", "n": index})
        for index in range(20):
            assert recv_frame(right)["n"] == index

    def test_clean_eof_is_none(self, pair):
        left, right = pair
        left.close()
        assert recv_frame(right) is None

    def test_eof_mid_frame_raises(self, pair):
        left, right = pair
        left.sendall(struct.Struct(">I").pack(100) + b'{"type"')
        left.close()
        with pytest.raises(ServiceError, match="mid-frame"):
            recv_frame(right)

    def test_oversized_incoming_frame_is_refused(self, pair):
        left, right = pair
        left.sendall(struct.Struct(">I").pack(FRAME_MAX_BYTES + 1))
        with pytest.raises(ServiceError, match="limit"):
            recv_frame(right)

    def test_oversized_outgoing_frame_is_refused(self, pair):
        left, _ = pair
        with pytest.raises(ServiceError, match="refusing to send"):
            send_frame(left, {"type": "x", "blob": "y" * (FRAME_MAX_BYTES + 1)})

    def test_malformed_json_raises(self, pair):
        left, right = pair
        body = b"not json at all"
        left.sendall(struct.Struct(">I").pack(len(body)) + body)
        with pytest.raises(ServiceError, match="malformed"):
            recv_frame(right)

    def test_non_object_payload_raises(self, pair):
        left, right = pair
        body = json.dumps([1, 2, 3]).encode("utf-8")
        left.sendall(struct.Struct(">I").pack(len(body)) + body)
        with pytest.raises(ServiceError, match="JSON objects"):
            recv_frame(right)

    def test_payload_without_type_raises(self, pair):
        left, right = pair
        body = json.dumps({"cell": 1}).encode("utf-8")
        left.sendall(struct.Struct(">I").pack(len(body)) + body)
        with pytest.raises(ServiceError, match="'type'"):
            recv_frame(right)

    def test_concurrent_senders_never_interleave(self, pair):
        left, right = pair
        lock = threading.Lock()

        def blast(tag):
            for _ in range(50):
                with lock:
                    send_frame(left, {"type": tag, "pad": tag * 512})

        threads = [
            threading.Thread(target=blast, args=(tag,)) for tag in ("aa", "bb")
        ]
        for thread in threads:
            thread.start()
        for _ in range(100):
            frame = recv_frame(right)
            assert frame["pad"] == frame["type"] * 512
        for thread in threads:
            thread.join()


class TestServiceAddress:
    def test_unix_round_trip(self):
        address = ServiceAddress(family="unix", path="/tmp/x.sock")
        assert ServiceAddress.from_dict(address.to_dict()) == address
        assert address.describe() == "/tmp/x.sock"

    def test_tcp_round_trip(self):
        address = ServiceAddress(family="tcp", host="127.0.0.1", port=4567)
        assert ServiceAddress.from_dict(address.to_dict()) == address
        assert address.describe() == "127.0.0.1:4567"

    def test_unknown_family_is_refused(self):
        with pytest.raises(ServiceError, match="family"):
            ServiceAddress(family="carrier-pigeon")
        with pytest.raises(ServiceError, match="family"):
            ServiceAddress.from_dict({"family": "smoke-signal"})

    def test_bind_and_connect(self, tmp_path):
        listener, address = bind_service_socket(tmp_path)
        listener.listen(1)
        try:
            client = address.connect(timeout=5.0)
            server, _ = listener.accept()
            send_frame(client, {"type": "hello"})
            assert recv_frame(server)["type"] == "hello"
            client.close()
            server.close()
        finally:
            listener.close()

    def test_rebinding_replaces_stale_socket_file(self, tmp_path):
        listener, address = bind_service_socket(tmp_path)
        listener.close()  # dead dispatcher leaves the file behind
        if address.family == "unix":
            assert (tmp_path / "service.sock").exists()
        listener, _ = bind_service_socket(tmp_path)
        listener.close()


class TestServiceInfo:
    def test_write_read_remove(self, tmp_path):
        payload = {"address": {"family": "tcp", "host": "127.0.0.1", "port": 1}}
        path = write_service_info(tmp_path, payload)
        assert path.name == SERVICE_INFO_NAME
        assert read_service_info(tmp_path) == payload
        remove_service_info(tmp_path)
        with pytest.raises(ServiceError, match="no experiment service"):
            read_service_info(tmp_path)
        remove_service_info(tmp_path)  # idempotent

    def test_invalid_json_is_an_error(self, tmp_path):
        (tmp_path / SERVICE_INFO_NAME).write_text("{broken", encoding="utf-8")
        with pytest.raises(ServiceError, match="invalid service info"):
            read_service_info(tmp_path)

    def test_document_without_address_is_an_error(self, tmp_path):
        (tmp_path / SERVICE_INFO_NAME).write_text("{}", encoding="utf-8")
        with pytest.raises(ServiceError, match="not a service info"):
            read_service_info(tmp_path)
