"""Shared fixtures for the experiment-service tests.

Fleet tests spawn real worker processes, so every spec here uses the
near-zero-cost ``service-probe`` algorithm on tiny graphs; the slow
variants (``sleep_seconds``) exist only to hold leases open for the
fault-path tests.
"""

from __future__ import annotations

from pathlib import Path
from typing import Tuple

import pytest

from repro.api.registry import (
    get_algorithm,
    register_algorithm,
    unregister_algorithm,
)
from repro.api.specs import AlgorithmSpec, SweepSpec, WorkloadSpec
from repro.api.store import run_sweep
from repro.errors import AnalysisError
from repro.service import Dispatcher

#: Preload every fleet process needs for the probe name to resolve.
PROBE_PRELOAD = ("repro.service.probes",)

#: Kept as a literal (not imported from the probes module) so merely
#: collecting this package never touches the algorithm registry — the
#: registry-completeness test in tests/api counts registered names.
PROBE_ALGORITHM = "service-probe"


@pytest.fixture(scope="session", autouse=True)
def _service_probe_registry():
    """Register the probe algorithms for this package, then clean up.

    Importing :mod:`repro.service.probes` registers ``service-probe``;
    ``fleet-test-only-probe`` is the same class under a name the workers
    are never preloaded with, so leasing one of its cells makes a worker
    fail deterministically with "unknown algorithm".  Both registrations
    happen at fixture time (not import time — pytest imports test
    modules during collection, long before unrelated test packages run)
    and are removed at session end.
    """
    import repro.service.probes as probes

    try:
        get_algorithm("fleet-test-only-probe")
    except AnalysisError:
        register_algorithm(
            "fleet-test-only-probe",
            kind="listing",
            summary="Probe the fleet workers cannot resolve (failure paths).",
        )(probes.ServiceProbe)
    yield
    for name in (PROBE_ALGORITHM, "fleet-test-only-probe"):
        try:
            unregister_algorithm(name)
        except AnalysisError:
            pass


def _probe_spec(
    seeds: Tuple[int, ...] = (1, 2, 3),
    slow_seconds: float = 0.0,
    num_nodes: int = 30,
    experiment: str = "fleet-test",
) -> SweepSpec:
    """A (2 algorithms x seeds) grid; the second algorithm optionally slow."""
    return SweepSpec(
        experiment=experiment,
        algorithms=(
            AlgorithmSpec(PROBE_ALGORITHM, {"scale": 1}),
            AlgorithmSpec(
                PROBE_ALGORITHM,
                {"scale": 2, "sleep_seconds": slow_seconds},
                label="probe-slow" if slow_seconds else "probe-2",
            ),
        ),
        workload=WorkloadSpec(
            "gnp", {"num_nodes": num_nodes, "edge_probability": 0.3}
        ),
        seeds=seeds,
    )


def _serial_store(spec: SweepSpec, path: Path) -> Path:
    """Write the ground-truth store the fleet output must match, byte for byte."""
    run_sweep(spec, path)
    return path


@pytest.fixture
def probe_spec():
    """Factory for probe sweep specs (see :func:`_probe_spec`)."""
    return _probe_spec


@pytest.fixture
def serial_store():
    """Run a spec serially; returns the ground-truth store path."""
    return _serial_store


@pytest.fixture
def probe_preload():
    return PROBE_PRELOAD


@pytest.fixture
def service_root(tmp_path):
    return tmp_path / "svc"


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    """A running dispatcher with two managed workers, shared per module.

    Worker processes cost ~a second each to spawn; tests that only need
    default timing share this fleet (their jobs are independent — each
    writes its own store).  Tests that kill, stop or re-time workers
    build their own dispatcher from ``service_root`` instead.
    """
    dispatcher = Dispatcher(
        tmp_path_factory.mktemp("svc-fleet"),
        workers=2,
        preload=PROBE_PRELOAD,
        heartbeat_interval=0.3,
        lease_timeout=30.0,
    )
    dispatcher.start()
    yield dispatcher
    dispatcher.stop()
